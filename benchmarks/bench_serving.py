"""E19 — serving daemon latency/saturation: micro-batching vs batch-size 1.

The serving daemon's claim (docs/serving.md) is that coalescing
concurrent requests into one engine call buys real throughput without
breaking the deterministic answer contract.  Every leg here first
validates correctness — a seeded slab of served answers must be
**row-identical** to calling ``oracle.distances`` directly — and only
then times the closed-loop saturation race between ``max_batch=B`` and
the degenerate ``max_batch=1`` daemon (the cache is disabled in both so
the race measures the batch engine, not the LRU).

An open-loop leg reports p50/p99 under a fixed offered rate with the
latency measured from each request's *scheduled* send time (no
coordinated omission); it is informational, never gated.

Two modes:

* ``pytest benchmarks/bench_serving.py -s`` — CI-sized (n ≈ 2·10³):
  row identity asserted, finite percentiles, informational speedup, and
  a ``BENCH_serving.json`` artifact at the repo root;
* ``python benchmarks/bench_serving.py`` — the acceptance run: an
  n = 10⁵ ``gnp_fast`` oracle behind the daemon, 8 closed-loop
  connections × 16 pairs per request.  Gate: micro-batching sustains
  ≥ 2x the pair throughput of the ``max_batch=1`` daemon, and a
  4096-pair served batch is row-identical to the direct query engine.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import environment_block
from repro.graphs import gnp_fast
from repro.graphs._kernel import backend_name
from repro.oracle import build_oracle
from repro.serving import (
    ServeClient,
    ServerConfig,
    ServerThread,
    run_closed_loop,
    run_open_loop,
    sample_pairs,
)

from _common import emit, strip_private

SEED = 20160217
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _served_leg(
    oracle,
    label: str,
    max_batch: int,
    *,
    clients: int,
    requests_per_client: int,
    pairs_per_request: int,
    validate_pairs: int,
    open_rate: float | None = None,
) -> list[dict]:
    """One daemon instance: validation slab, closed-loop race, open probe."""
    n = oracle.graph.num_vertices
    workload = sample_pairs(n, max(4096, validate_pairs), SEED, label=label)
    config = ServerConfig(max_batch=max_batch, max_wait_us=500, cache_size=0)
    rows = []
    with ServerThread(oracle, config) as thread:
        host, port = thread.address
        with ServeClient(host, port, timeout=120.0) as client:
            served = client.distances(workload[:validate_pairs])
        direct = oracle.distances(workload[:validate_pairs])
        assert served == direct, (
            f"{label}: served answers diverged from direct oracle.query "
            f"on a {validate_pairs}-pair batch"
        )
        closed = run_closed_loop(
            host,
            port,
            workload,
            clients=clients,
            requests_per_client=requests_per_client,
            pairs_per_request=pairs_per_request,
            timeout=120.0,
        )
        open_report = None
        if open_rate is not None:
            open_report = run_open_loop(
                host,
                port,
                workload,
                rate=open_rate,
                duration=1.0,
                connections=clients,
                pairs_per_request=pairs_per_request,
                timeout=120.0,
            )
    for report in filter(None, (closed, open_report)):
        p50, p99 = report.quantile_us(0.50), report.quantile_us(0.99)
        assert report.errors == 0, f"{label}: {report.errors} failed requests"
        assert p50 is not None and p99 is not None, f"{label}: empty histogram"
        rows.append(
            {
                "workload": f"{label} {report.mode}",
                "n": n,
                "max_batch": max_batch,
                "connections": report.connections,
                "pairs/req": pairs_per_request,
                "requests": report.requests,
                "validated": validate_pairs,
                "p50_us": round(p50, 1),
                "p99_us": round(p99, 1),
                "throughput q/s": round(report.throughput_pairs, 1),
                "_report": report,
            }
        )
    return rows


def _race(oracle, label, *, clients, requests_per_client, pairs_per_request,
          validate_pairs, max_batch, open_rate):
    """The micro-batching race: max_batch=B vs the same daemon at 1."""
    rows = _served_leg(
        oracle,
        f"{label}:batched",
        max_batch,
        clients=clients,
        requests_per_client=requests_per_client,
        pairs_per_request=pairs_per_request,
        validate_pairs=validate_pairs,
        open_rate=open_rate,
    )
    rows += _served_leg(
        oracle,
        f"{label}:batch1",
        1,
        clients=clients,
        requests_per_client=requests_per_client,
        pairs_per_request=pairs_per_request,
        validate_pairs=validate_pairs,
    )
    batched = next(r for r in rows if r["workload"].endswith("batched closed"))
    single = next(r for r in rows if r["workload"].endswith("batch1 closed"))
    speedup = batched["throughput q/s"] / max(single["throughput q/s"], 1e-9)
    batched["speedup"] = round(speedup, 2)
    batched["_raw_speedup"] = speedup
    return rows


def _write_artifact(rows, scale: str) -> None:
    payload = {
        "benchmark": "serving",
        "scale": scale,
        "seed": SEED,
        "rows": strip_private(rows),
        "environment": environment_block(),
    }
    RESULT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf8",
    )
    print(f"wrote {RESULT_PATH}")


def test_serving_bench():
    """CI-sized race: row identity asserted, no wall-clock gate."""
    oracle = build_oracle(gnp_fast(2048, 0.004, seed=2), seed=SEED)
    rows = _race(
        oracle,
        "gnp:2048",
        clients=6,
        requests_per_client=40,
        pairs_per_request=8,
        validate_pairs=1024,
        max_batch=64,
        open_rate=200.0,
    )
    table = emit(
        f"E19: serving daemon micro-batching race "
        f"(CI scale, backend={backend_name()})",
        strip_private(rows),
        "e19_serving_small.txt",
    )
    assert table
    _write_artifact(rows, "ci")
    batched = next(r for r in rows if "_raw_speedup" in r)
    print(f"micro-batching speedup (informational): {batched['_raw_speedup']:.1f}x")


def main() -> int:
    n = 100_000
    oracle = build_oracle(gnp_fast(n, 6.0 / n, seed=2), seed=SEED)
    rows = _race(
        oracle,
        "gnp:1e5",
        clients=12,
        requests_per_client=100,
        pairs_per_request=24,
        validate_pairs=4096,
        max_batch=512,
        open_rate=500.0,
    )
    emit(
        f"E19: serving daemon micro-batching race "
        f"(full scale, backend={backend_name()})",
        strip_private(rows),
        "e19_serving_full.txt",
    )
    _write_artifact(rows, "full")
    speedup = next(r["_raw_speedup"] for r in rows if "_raw_speedup" in r)
    print(
        f"micro-batching speedup at n=1e5: {speedup:.1f}x  [acceptance: >= 2x]"
    )
    return 0 if speedup >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
