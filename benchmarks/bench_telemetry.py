"""E-TEL — disabled-mode overhead gate for the telemetry layer.

The telemetry contract (``docs/telemetry.md``): with ``REPRO_TELEMETRY``
off, the instrumented engine hot path must stay within 2% of an
untraced build.  There is no untraced build to race at runtime, so the
baseline arm replicates :func:`repro.core.distributed_en
.decompose_distributed`'s driver loop verbatim with **zero** telemetry
calls — no ``resolve``, no ``maybe_span``, ``rounds=None`` wired
statically — the exact pre-telemetry hot path.  Both arms first assert
bit-identical outputs (same stats, same phase/round counts), so the
ratio can only ever price the instrumentation.

Arms (interleaved reps, medians — machine noise hits them alike):

* ``baseline`` — the replicated loop above, the untraced reference;
* ``off``      — the public entry point in disabled mode (the gate);
* ``mem``      — explicit in-memory collector (informational);
* ``jsonl``    — collector mirrored to a JSONL sink (informational);
* ``profile``  — disabled telemetry under the sampling profiler at its
  default rate (the second gate: ≤ 1.10× the ``off`` arm, since the
  sampler reads stacks from outside the workload it must never perturb
  the measured code — and every arm's outputs stay bit-identical);
* ``causal``   — in-memory collector with the causal message log it
  implies, plus a :func:`~repro.telemetry.critical_path` extraction
  whose round count is asserted equal to the driver's (informational
  price of full provenance; the fault-free invariant rides along).

Two modes, following ``bench_engine.py``:

* ``pytest benchmarks/bench_telemetry.py -s`` — CI-sized workload,
  asserts arm equivalence and emits the table; no wall-clock gate
  (shared runners are too noisy at sub-second scale);
* ``python benchmarks/bench_telemetry.py`` — the acceptance gates:
  median ``off``/``baseline`` ratio ≤ 1.02 **and** median
  ``profile``/``off`` ratio ≤ 1.10 on an n ≈ 2·10⁴ workload, with up
  to ``GATE_ATTEMPTS`` re-measurements before declaring failure (noise
  only ever inflates the ratios, never hides real overhead).
"""

from __future__ import annotations

import math
import os
import pathlib
import statistics
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.decomposition import NetworkDecomposition
from repro.core.distributed_en import decompose_distributed
from repro.core.params import Theorem1Schedule
from repro.core.shifts import find_truncation_events, sample_phase_radii
from repro.engine.en import BatchENPhases
from repro.graphs import Graph, gnp_fast
from repro.graphs.activeset import ActiveSet
from repro.telemetry import (
    JsonlSink,
    SamplingProfiler,
    Telemetry,
    critical_path,
    reset,
)

from _common import emit, strip_private

SEED = 20160217
REPS = int(os.environ.get("BENCH_TELEMETRY_REPS", "5"))
GATE_RATIO = 1.02
PROFILE_GATE_RATIO = 1.10
GATE_ATTEMPTS = 3


def _baseline_decompose(graph: Graph, k: float, seed: int):
    """The untraced build: the driver loop with zero telemetry calls.

    Mirrors ``decompose_distributed(backend="batch", mode="toptwo",
    adaptive_phase_length=True)`` line for line — including the
    truncation bookkeeping and final decomposition assembly, so the
    baseline does all the same non-telemetry work.
    """
    schedule = Theorem1Schedule(n=max(graph.num_vertices, 1), k=k, c=4.0)
    runner = BatchENPhases(graph, "toptwo")
    active = ActiveSet.full(graph.num_vertices)
    blocks: list[list[int]] = []
    centers: dict[int, int] = {}
    rounds_per_phase: list[int] = []
    truncations = []
    phase = 0
    while active:
        phase += 1
        beta = schedule.beta(phase)
        radii = sample_phase_radii(seed, phase, active, beta)
        truncations.extend(
            find_truncation_events(radii, phase, getattr(schedule, "k", math.inf))
        )
        budget = max((math.floor(r) for r in radii.values()), default=0)
        joined = runner.run_phase(phase, beta, budget, radii)
        rounds_per_phase.append(budget + 2)
        blocks.append(sorted(joined))
        centers.update(joined)
        active -= joined.keys()
    decomposition = NetworkDecomposition.from_blocks(graph, blocks, centers)
    return decomposition, runner.stats, phase, rounds_per_phase


def _arms(graph: Graph, k: float, sink_path: str):
    """``{arm: zero-arg callable}`` — each returns comparable outputs."""

    def baseline():
        decomposition, stats, phases, rounds = _baseline_decompose(graph, k, SEED)
        return stats, phases, sum(rounds)

    def off():
        result = decompose_distributed(graph, k=k, seed=SEED, backend="batch")
        return result.stats, result.phases, result.total_rounds

    def mem():
        result = decompose_distributed(
            graph, k=k, seed=SEED, backend="batch", telemetry=Telemetry()
        )
        return result.stats, result.phases, result.total_rounds

    def jsonl():
        telemetry = Telemetry(sink=JsonlSink(sink_path))
        result = decompose_distributed(
            graph, k=k, seed=SEED, backend="batch", telemetry=telemetry
        )
        telemetry.close()
        os.unlink(sink_path)
        return result.stats, result.phases, result.total_rounds

    def profile():
        with SamplingProfiler():
            result = decompose_distributed(graph, k=k, seed=SEED, backend="batch")
        return result.stats, result.phases, result.total_rounds

    def causal():
        telemetry = Telemetry()
        result = decompose_distributed(
            graph, k=k, seed=SEED, backend="batch", telemetry=telemetry
        )
        path = critical_path(telemetry.causal)
        assert path["rounds"] == result.total_rounds, (
            f"critical path {path['rounds']} != rounds {result.total_rounds}"
        )
        assert path["drift"] == 0, f"fault-free drift {path['drift']}"
        return result.stats, result.phases, result.total_rounds

    return {
        "baseline": baseline,
        "off": off,
        "mem": mem,
        "jsonl": jsonl,
        "profile": profile,
        "causal": causal,
    }


def measure(graph: Graph, k: float, reps: int = REPS):
    """Interleaved timing of all arms; asserts bit-identical outputs."""
    reset()  # drop any ambient trace — "off" must mean off
    os.environ.pop("REPRO_TELEMETRY", None)
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        sink_path = handle.name
    os.unlink(sink_path)
    arms = _arms(graph, k, sink_path)
    times: dict[str, list[float]] = {arm: [] for arm in arms}
    outputs: dict[str, object] = {}
    for _ in range(reps):
        for arm, fn in arms.items():
            start = time.perf_counter()
            result = fn()
            times[arm].append(time.perf_counter() - start)
            outputs[arm] = result
    reference = outputs["baseline"]
    for arm, output in outputs.items():
        assert output == reference, f"arm {arm!r} diverged from the untraced baseline"
    return {arm: statistics.median(samples) for arm, samples in times.items()}


def _rows(workload: str, n: int, medians: dict[str, float]):
    base = medians["baseline"]
    return [
        {
            "workload": workload,
            "arm": arm,
            "n": n,
            "median s": round(seconds, 4),
            "vs baseline": round(seconds / max(base, 1e-9), 3),
            "_ratio": seconds / max(base, 1e-9),
        }
        for arm, seconds in medians.items()
    ]


def test_telemetry_overhead_bench():
    """CI-sized run: arm equivalence asserted, table emitted, no gate."""
    graph = gnp_fast(2048, 6.0 / 2048, seed=2)
    medians = measure(graph, k=6, reps=3)
    rows = _rows("gnp_fast:2048:6/n", graph.num_vertices, medians)
    table = emit(
        "E-TEL: telemetry overhead (CI scale, informational)",
        strip_private(rows),
        "etel_telemetry_small.txt",
    )
    assert table
    print(f"disabled-mode ratio (informational): {medians['off'] / medians['baseline']:.3f}")


def main() -> int:
    n = 20_000
    graph = gnp_fast(n, 6.0 / n, seed=2)
    k = max(2, math.ceil(math.log(n)))
    ratio = profile_ratio = math.inf
    medians: dict[str, float] = {}
    for attempt in range(1, GATE_ATTEMPTS + 1):
        medians = measure(graph, k=k)
        ratio = medians["off"] / medians["baseline"]
        profile_ratio = medians["profile"] / medians["off"]
        print(
            f"attempt {attempt}: off/baseline = {ratio:.4f}  "
            f"[gate: <= {GATE_RATIO}], profile/off = {profile_ratio:.4f}  "
            f"[gate: <= {PROFILE_GATE_RATIO}]"
        )
        if ratio <= GATE_RATIO and profile_ratio <= PROFILE_GATE_RATIO:
            break
    rows = _rows(f"gnp_fast:{n}:6/n", n, medians)
    emit(
        "E-TEL: telemetry overhead (acceptance gate)",
        strip_private(rows),
        "etel_telemetry_full.txt",
    )
    print(
        f"disabled-mode overhead: {100 * (ratio - 1):+.2f}%, "
        f"sampling-on overhead: {100 * (profile_ratio - 1):+.2f}% "
        f"(mem {medians['mem'] / medians['baseline']:.3f}x, "
        f"jsonl {medians['jsonl'] / medians['baseline']:.3f}x, "
        f"causal {medians['causal'] / medians['baseline']:.3f}x, informational)"
    )
    return 0 if ratio <= GATE_RATIO and profile_ratio <= PROFILE_GATE_RATIO else 1


if __name__ == "__main__":
    sys.exit(main())
