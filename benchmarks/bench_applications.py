"""E9 — the §1.1 application claim: MIS / colouring / matching in O(D·χ).

Per workload: the application runs on an Elkin–Neiman decomposition,
outputs verify, and the round count equals ``χ·(D + 2)`` exactly — the
naive per-cluster schedule the paper describes.
"""

from __future__ import annotations

import pytest

from repro.applications import run_coloring, run_matching, run_mis
from repro.applications.verify import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_vertex_coloring,
)
from repro.core import elkin_neiman
from repro.graphs import erdos_renyi, grid_graph, random_connected

from _common import BENCH_SEED, emit


def _workloads():
    yield "grid-64", grid_graph(8, 8)
    yield "er-100", erdos_renyi(100, 0.05, seed=BENCH_SEED)
    yield "conn-120", random_connected(120, 0.01, seed=BENCH_SEED)


def collect_rows() -> list[dict[str, object]]:
    rows = []
    for name, graph in _workloads():
        decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
        chi = decomposition.num_colors
        diameter = int(decomposition.max_strong_diameter())

        mis = run_mis(graph, decomposition, seed=BENCH_SEED)
        coloring = run_coloring(graph, decomposition, seed=BENCH_SEED)
        matching = run_matching(graph, k=3, seed=BENCH_SEED)

        assert is_maximal_independent_set(graph, mis.independent_set)
        assert is_proper_vertex_coloring(
            graph, coloring.colors, max_colors=graph.max_degree() + 1
        )
        assert is_maximal_matching(graph, matching.matching)

        rows.append(
            {
                "graph": name,
                "chi": chi,
                "D": diameter,
                "mis_rounds": mis.app.rounds,
                "chi*(D+2)": chi * (diameter + 2),
                "mis_size": len(mis.independent_set),
                "colors_used": coloring.num_colors_used,
                "Delta+1": graph.max_degree() + 1,
                "matching_size": len(matching.matching),
                "ok": mis.app.rounds == chi * (diameter + 2),
            }
        )
    return rows


def test_applications_table(benchmark):
    graph = grid_graph(8, 8)
    decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)

    def run():
        return run_mis(graph, decomposition, seed=BENCH_SEED)

    result = benchmark(run)
    assert is_maximal_independent_set(graph, result.independent_set)
    rows = collect_rows()
    table = emit("E9: applications — O(D·chi) rounds via colour classes", rows, "e9_applications.txt")
    assert all(row["ok"] for row in rows)
    assert table
