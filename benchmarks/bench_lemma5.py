"""E5 — Lemma 5: Pr[top two shifted exponentials within 1] ≤ 1 − e^{-β}.

Monte-Carlo estimates over adversarial distance profiles, against the
bound.  The ``q = 1, d = 0`` case meets the bound with equality — the
worst case is a lone competitor.
"""

from __future__ import annotations

import pytest

from repro.analysis import estimate_within_one_probability, lemma5_bound

from _common import BENCH_SEED, emit

PROFILES = [
    ("single", [0.0]),
    ("pair", [0.0, 0.0]),
    ("spread", [0.0, 1.0, 2.0, 3.0]),
    ("far-cluster", [5.0] * 8),
    ("mixed", [0.0, 0.0, 2.0, 7.0, 7.0]),
]


def collect_rows(trials: int = 20_000) -> list[dict[str, object]]:
    rows = []
    for beta in (0.25, 0.5, 1.0, 1.5):
        for name, distances in PROFILES:
            estimate = estimate_within_one_probability(
                distances, beta, trials=trials, seed=BENCH_SEED
            )
            bound = lemma5_bound(beta)
            rows.append(
                {
                    "beta": beta,
                    "profile": name,
                    "q": len(distances),
                    "Pr[gap<=1]": round(estimate.probability, 4),
                    "bound": round(bound, 4),
                    "within": estimate.probability - estimate.half_width <= bound,
                }
            )
    return rows


def test_lemma5_table(benchmark):
    result = benchmark(
        estimate_within_one_probability, [0.0, 1.0, 2.0], 0.5, 5_000, BENCH_SEED
    )
    assert 0.0 <= result.probability <= 1.0
    rows = collect_rows()
    table = emit("E5: Lemma 5 — order statistics of shifted exponentials", rows, "e5_lemma5.txt")
    assert all(row["within"] for row in rows)
    assert table
