"""E10 — what strong diameter buys in practice.

Two quantitative stories on identical graphs and parameters:

* **cluster structure** — Linial–Saks clusters are frequently disconnected
  (strong diameter ∞); Elkin–Neiman clusters never are;
* **relay overhead** — running the MIS application over an LS
  decomposition forces the weak relay mode, whose non-member relay load
  is pure overhead; the EN decomposition runs in strong mode with zero.

The paired EN-vs-LS trials run through the runtime's ``strong-vs-weak``
scenario (the ``strong-vs-weak`` adapter verifies both MIS outputs).
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import linial_saks
from repro.graphs import erdos_renyi

from _common import BENCH_SEED, emit, run_scenario

_INF = float("inf")


def collect_rows(runs: int = 5) -> list[dict[str, object]]:
    result = run_scenario("strong-vs-weak", trials=runs)
    rows = []
    for trial_result in result.results:
        record = trial_result.record
        assert record["en_mis_verified"] and record["ls_mis_verified"]
        rows.append(
            {
                "n": record["n"],
                "run": trial_result.trial.index,
                "en_disconn": record["en_disconnected"],
                "ls_disconn": record["ls_disconnected"],
                # None encodes a disconnected cluster's infinite diameter.
                "en_strongD": _INF if record["en_strong_diameter"] is None else record["en_strong_diameter"],
                "ls_strongD": _INF if record["ls_strong_diameter"] is None else record["ls_strong_diameter"],
                "weak_bound": record["weak_bound"],
                "en_relays": record["en_relays"],
                "ls_relays": record["ls_relays"],
            }
        )
    return rows


def test_strong_vs_weak_table(benchmark):
    graph = erdos_renyi(80, 0.05, seed=BENCH_SEED)

    def run():
        decomposition, _ = linial_saks.decompose(graph, k=4, seed=BENCH_SEED)
        return decomposition

    decomposition = benchmark(run)
    assert decomposition.is_partition()
    rows = collect_rows()
    table = emit("E10: strong vs weak — connectivity and relay overhead", rows, "e10_strong_vs_weak.txt")
    # EN never produces a disconnected cluster; LS does somewhere in the sweep.
    assert all(row["en_disconn"] == 0 for row in rows)
    assert any(row["ls_disconn"] > 0 for row in rows)
    assert all(row["en_relays"] == 0 for row in rows)
    assert table
