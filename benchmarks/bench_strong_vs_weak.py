"""E10 — what strong diameter buys in practice.

Two quantitative stories on identical graphs and parameters:

* **cluster structure** — Linial–Saks clusters are frequently disconnected
  (strong diameter ∞); Elkin–Neiman clusters never are;
* **relay overhead** — running the MIS application over an LS
  decomposition forces the weak relay mode, whose non-member relay load
  is pure overhead; the EN decomposition runs in strong mode with zero.
"""

from __future__ import annotations

import math

import pytest

from repro.applications import run_mis
from repro.applications.verify import is_maximal_independent_set
from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.graphs import erdos_renyi

from _common import BENCH_SEED, emit


def collect_rows(runs: int = 5) -> list[dict[str, object]]:
    rows = []
    k = 4
    for n in (80, 160):
        for run in range(runs):
            graph = erdos_renyi(n, 4.0 / n, seed=BENCH_SEED + 31 * run + n)
            seed = BENCH_SEED + run
            en, _ = elkin_neiman.decompose(graph, k=k, seed=seed)
            ls, _ = linial_saks.decompose(graph, k=k, seed=seed)

            en_mis = run_mis(graph, en, relay_mode="strong", seed=seed)
            ls_mis = run_mis(graph, ls, relay_mode="weak", seed=seed)
            assert is_maximal_independent_set(graph, en_mis.independent_set)
            assert is_maximal_independent_set(graph, ls_mis.independent_set)

            rows.append(
                {
                    "n": n,
                    "run": run,
                    "en_disconn": len(en.disconnected_clusters()),
                    "ls_disconn": len(ls.disconnected_clusters()),
                    "en_strongD": en.max_strong_diameter(),
                    "ls_strongD": ls.max_strong_diameter(),
                    "weak_bound": 2 * k - 2,
                    "en_relays": en_mis.app.relay_messages_nonmember,
                    "ls_relays": ls_mis.app.relay_messages_nonmember,
                }
            )
    return rows


def test_strong_vs_weak_table(benchmark):
    graph = erdos_renyi(80, 0.05, seed=BENCH_SEED)

    def run():
        decomposition, _ = linial_saks.decompose(graph, k=4, seed=BENCH_SEED)
        return decomposition

    decomposition = benchmark(run)
    assert decomposition.is_partition()
    rows = collect_rows()
    table = emit("E10: strong vs weak — connectivity and relay overhead", rows, "e10_strong_vs_weak.txt")
    # EN never produces a disconnected cluster; LS does somewhere in the sweep.
    assert all(row["en_disconn"] == 0 for row in rows)
    assert any(row["ls_disconn"] > 0 for row in rows)
    assert all(row["en_relays"] == 0 for row in rows)
    assert table
