"""E3 — Theorem 3: the high-radius regime (few colours, large diameter).

For target colour counts ``λ``: measured colours vs ``λ``, measured strong
diameter vs ``2(cn)^{1/λ}·ln(cn)``, and whether λ phases sufficed
(probability ``≥ 1 − 1/c``).
"""

from __future__ import annotations

import math

import pytest

from repro.core import high_radius, theorem3_bounds
from repro.graphs import erdos_renyi, grid_graph

from _common import BENCH_SEED, emit


def collect_rows() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    c = 4.0
    workloads = [
        ("er-256", erdos_renyi(256, 4.0 / 256, seed=BENCH_SEED)),
        ("grid-144", grid_graph(12, 12)),
    ]
    for name, graph in workloads:
        n = graph.num_vertices
        for lam in (1, 2, 3, 4):
            decomposition, trace = high_radius.decompose(
                graph, lam=lam, c=c, seed=BENCH_SEED + lam
            )
            decomposition.validate()
            bounds = theorem3_bounds(n, lam, c)
            rows.append(
                {
                    "graph": name,
                    "n": n,
                    "lambda": lam,
                    "colors": decomposition.num_colors,
                    "strongD": decomposition.max_strong_diameter(),
                    "D_bound": round(bounds.diameter, 1),
                    "in_budget": trace.exhausted_within_nominal,
                }
            )
    return rows


def test_theorem3_table(benchmark):
    graph = grid_graph(12, 12)

    def run():
        decomposition, _ = high_radius.decompose(graph, lam=2, seed=BENCH_SEED)
        return decomposition

    decomposition = benchmark(run)
    assert decomposition.is_partition()
    table = emit(
        "E3: Theorem 3 — strong (2(cn)^{1/lambda} ln(cn), lambda)",
        collect_rows(),
        "e3_theorem3.txt",
    )
    assert table
