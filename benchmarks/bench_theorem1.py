"""E1 — Theorem 1 validation sweep.

For each ``(topology, n, k)``: measured strong diameter vs the promised
``2k − 2``, measured colours vs ``(cn)^{1/k}·ln(cn)``, measured phases vs
the nominal ``λ``.  The benchmark times the full centralized decomposition
on a representative workload.
"""

from __future__ import annotations

import math

import pytest

from repro.core import elkin_neiman, theorem1_bounds
from repro.graphs import erdos_renyi, grid_graph, random_connected

from _common import BENCH_SEED, emit


def _workloads():
    for n in (256, 1024):
        yield f"er-{n}", erdos_renyi(n, 4.0 / n, seed=BENCH_SEED + n)
    yield "grid-256", grid_graph(16, 16)
    yield "conn-512", random_connected(512, 0.004, seed=BENCH_SEED)


def collect_rows() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    c = 4.0
    for name, graph in _workloads():
        n = graph.num_vertices
        ks = sorted({2, 3, 5, math.ceil(math.log(n))})
        for k in ks:
            decomposition, trace = elkin_neiman.decompose(
                graph, k=k, c=c, seed=BENCH_SEED + k
            )
            decomposition.validate()
            bounds = theorem1_bounds(n, k, c)
            rows.append(
                {
                    "graph": name,
                    "n": n,
                    "k": k,
                    "strongD": decomposition.max_strong_diameter(),
                    "D_bound": bounds.diameter,
                    "colors": decomposition.num_colors,
                    "chi_bound": round(bounds.colors, 1),
                    "phases": trace.total_phases,
                    "lambda": trace.nominal_phases,
                    "in_budget": trace.exhausted_within_nominal,
                    "trunc_events": len(trace.truncation_events),
                }
            )
    return rows


def test_theorem1_table(benchmark):
    graph = erdos_renyi(256, 4.0 / 256, seed=BENCH_SEED + 256)

    def run():
        decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
        return decomposition

    decomposition = benchmark(run)
    assert decomposition.is_partition()
    rows = emit("E1: Theorem 1 — strong (2k-2, (cn)^{1/k} ln(cn))", collect_rows(), "e1_theorem1.txt")
    assert rows
