"""E1 — Theorem 1 validation sweep.

For each ``(topology, n, k)``: measured strong diameter vs the promised
``2k − 2``, measured colours vs ``(cn)^{1/k}·ln(cn)``, measured phases vs
the nominal ``λ``.  The grid lives in the runtime's ``theorem1`` scenario;
the benchmark times the full centralized decomposition on a representative
workload.
"""

from __future__ import annotations

import pytest

from repro.core import elkin_neiman
from repro.graphs import erdos_renyi

from _common import BENCH_SEED, emit, run_scenario


def collect_rows() -> list[dict[str, object]]:
    result = run_scenario("theorem1")
    rows: list[dict[str, object]] = []
    for trial_result in result.results:
        record = trial_result.record
        rows.append(
            {
                "graph": trial_result.trial.graph,
                "n": record["n"],
                "k": record["k"],
                "strongD": record["strong_diameter"],
                "D_bound": record["diameter_bound"],
                "colors": record["colors"],
                "chi_bound": round(record["color_bound"], 1),
                "phases": record["phases"],
                "lambda": record["nominal_phases"],
                "in_budget": record["in_budget"],
                "trunc_events": record["truncation_events"],
            }
        )
    return rows


def test_theorem1_table(benchmark):
    graph = erdos_renyi(256, 4.0 / 256, seed=BENCH_SEED + 256)

    def run():
        decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
        return decomposition

    decomposition = benchmark(run)
    assert decomposition.is_partition()
    rows = emit("E1: Theorem 1 — strong (2k-2, (cn)^{1/k} ln(cn))", collect_rows(), "e1_theorem1.txt")
    assert rows
