"""E11 — the technique origin: MPX padded partitions.

β sweep on several topologies: measured cut fraction vs the ``O(β)``
padding guarantee, and max strong cluster diameter vs ``O(log n / β)``.
This validates the machinery the paper adapts (its Lemma 5 source).
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import mpx
from repro.graphs import erdos_renyi, grid_graph, path_graph

from _common import BENCH_SEED, emit


def collect_rows(runs: int = 5) -> list[dict[str, object]]:
    rows = []
    workloads = [
        ("grid-256", grid_graph(16, 16)),
        ("path-400", path_graph(400)),
        ("er-200", erdos_renyi(200, 3.0 / 200, seed=BENCH_SEED)),
    ]
    for name, graph in workloads:
        n = graph.num_vertices
        for beta in (0.1, 0.3, 0.6):
            cuts = []
            diams = []
            for run in range(runs):
                result = mpx.partition(graph, beta=beta, seed=BENCH_SEED + run)
                cuts.append(result.cut_fraction)
                diams.append(result.decomposition.max_strong_diameter())
            rows.append(
                {
                    "graph": name,
                    "beta": beta,
                    "mean_cut": round(sum(cuts) / len(cuts), 4),
                    "cut_bound~2b": round(2 * beta, 3),
                    "max_strongD": max(diams),
                    "D_scale~4ln(n)/b": round(4 * math.log(n) / beta, 1),
                }
            )
    return rows


def test_mpx_table(benchmark):
    graph = grid_graph(16, 16)

    def run():
        return mpx.partition(graph, beta=0.3, seed=BENCH_SEED)

    result = benchmark(run)
    assert result.decomposition.is_partition()
    rows = collect_rows()
    table = emit("E11: MPX padded partition — cut fraction O(beta), diameter O(log n / beta)", rows, "e11_mpx.txt")
    for row in rows:
        assert row["mean_cut"] <= row["cut_bound~2b"]
        assert row["max_strongD"] <= row["D_scale~4ln(n)/b"]
    assert table
