"""E12 — round-complexity scaling: O(log² n) at k = ⌈ln n⌉.

Doubling sweep: measured distributed rounds against ``a·ln²(cn)`` (the
headline ``O(log² n)``), plus a per-size sanity check that the
distributed protocol reproduces the centralized reference exactly.
Trials run through the experiment runtime's ``congest-rounds`` scenario.
"""

from __future__ import annotations

import math

import pytest

from repro.core.distributed_en import decompose_distributed
from repro.graphs import random_connected

from _common import BENCH_SEED, emit, run_scenario


def collect_rows() -> list[dict[str, object]]:
    result = run_scenario("congest-rounds")
    rows = []
    for record in result.records:
        rows.append(
            {
                "n": record["n"],
                "k": record["k"],
                "rounds": record["rounds"],
                "ln^2(cn)": record["ln2_cn"],
                "rounds/ln^2": record["rounds_per_ln2"],
                "phases": record["phases"],
                "colors": record["colors"],
                "dist==cent": record["matches_centralized"],
            }
        )
    return rows


def test_scaling_table(benchmark):
    graph = random_connected(128, 2.0 / 128, seed=BENCH_SEED + 128)
    k = math.ceil(math.log(128))

    def run():
        return decompose_distributed(graph, k=k, seed=BENCH_SEED)

    result = benchmark(run)
    assert result.decomposition.is_partition()
    rows = collect_rows()
    table = emit("E12: scaling — distributed rounds vs O(log^2 n) at k = ceil(ln n)", rows, "e12_scaling.txt")
    assert all(row["dist==cent"] for row in rows)
    # The normalised constant stays bounded across the doubling sweep
    # (the paper's O(log^2 n) shape): no growth trend beyond 2x.
    ratios = [row["rounds/ln^2"] for row in rows]
    assert max(ratios) <= 4 * min(ratios) + 1
    assert table
