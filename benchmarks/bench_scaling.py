"""E12 — round-complexity scaling: O(log² n) at k = ⌈ln n⌉.

Doubling sweep: measured distributed rounds against ``a·ln²(cn)`` (the
headline ``O(log² n)``), plus a per-size sanity check that the
distributed protocol reproduces the centralized reference exactly.
"""

from __future__ import annotations

import math

import pytest

from repro.core import elkin_neiman
from repro.core.distributed_en import decompose_distributed
from repro.graphs import random_connected

from _common import BENCH_SEED, emit


def collect_rows() -> list[dict[str, object]]:
    rows = []
    c = 4.0
    for n in (64, 128, 256, 512):
        graph = random_connected(n, 2.0 / n, seed=BENCH_SEED + n)
        k = math.ceil(math.log(n))
        result = decompose_distributed(graph, k=k, c=c, seed=BENCH_SEED)
        central, _ = elkin_neiman.decompose(graph, k=k, c=c, seed=BENCH_SEED)
        match = (
            central.cluster_index_map() == result.decomposition.cluster_index_map()
        )
        log2 = math.log(c * n) ** 2
        rows.append(
            {
                "n": n,
                "k": k,
                "rounds": result.total_rounds,
                "ln^2(cn)": round(log2, 1),
                "rounds/ln^2": round(result.total_rounds / log2, 2),
                "phases": result.phases,
                "colors": result.decomposition.num_colors,
                "dist==cent": match,
            }
        )
    return rows


def test_scaling_table(benchmark):
    graph = random_connected(128, 2.0 / 128, seed=BENCH_SEED + 128)
    k = math.ceil(math.log(128))

    def run():
        return decompose_distributed(graph, k=k, seed=BENCH_SEED)

    result = benchmark(run)
    assert result.decomposition.is_partition()
    rows = collect_rows()
    table = emit("E12: scaling — distributed rounds vs O(log^2 n) at k = ceil(ln n)", rows, "e12_scaling.txt")
    assert all(row["dist==cent"] for row in rows)
    # The normalised constant stays bounded across the doubling sweep
    # (the paper's O(log^2 n) shape): no growth trend beyond 2x.
    ratios = [row["rounds/ln^2"] for row in rows]
    assert max(ratios) <= 4 * min(ratios) + 1
    assert table
