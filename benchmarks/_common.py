"""Shared helpers for the benchmark harness.

Every benchmark prints its experiment table (the rows recorded in
``EXPERIMENTS.md``) and also writes it under ``benchmarks/results/`` so
runs leave a diffable artefact.  Run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables inline.

Multi-trial benchmarks run through the experiment orchestration runtime
(:mod:`repro.experiments`) instead of hand-rolled loops: scenarios come
from the registry, trials fan out over ``BENCH_WORKERS`` processes, and
setting ``BENCH_CACHE=1`` (or a directory path) reuses the
content-addressed result cache across invocations.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Mapping, Sequence

from repro.analysis import format_records
from repro.experiments import (
    DEFAULT_ROOT_SEED,
    ExperimentResult,
    ResultCache,
    build_experiment,
    default_cache,
    environment_block,
    run_experiment,
)
from repro.telemetry import maybe_span, resolve, usage_block

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Root seed for every benchmark (fully reproducible tables) — the same
#: constant the scenario registry defaults to (the paper's arXiv date).
BENCH_SEED = DEFAULT_ROOT_SEED

#: Process-pool size for trial fan-out (1 = serial).
BENCH_WORKERS = int(os.environ.get("BENCH_WORKERS", "1"))


def _bench_cache() -> ResultCache | None:
    """The trial cache selected by ``BENCH_CACHE`` (off by default)."""
    setting = os.environ.get("BENCH_CACHE", "")
    if setting.lower() in ("", "0", "false", "no", "off"):
        return None
    if setting.lower() in ("1", "true", "yes", "on"):
        return default_cache()
    return ResultCache(setting)


def run_scenario(
    name: str,
    trials: int | None = None,
    workers: int | None = None,
) -> ExperimentResult:
    """Run a registry scenario through the runtime with the bench seed.

    Any trial failure raises — a benchmark table built from a partial
    sweep would silently weaken the assertions layered on top of it.
    """
    spec = build_experiment(name, trials=trials, root_seed=BENCH_SEED)
    result = run_experiment(
        spec,
        workers=BENCH_WORKERS if workers is None else workers,
        cache=_bench_cache(),
    )
    return result.raise_on_failure()


def emit(title: str, records: Sequence[Mapping[str, object]], filename: str) -> str:
    """Format ``records`` as a table, print it and save it to results/.

    Next to the human-readable table, a compare-ready JSON artifact
    (``<stem>.json``: benchmark name, rows, environment block) is
    written so any two runs of the same benchmark can be diffed with
    ``repro campaign compare`` — rows are keyed by their first
    string-valued column (the workload label).
    """
    text = format_records(records, title=title)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf8")
    stem = pathlib.Path(filename).stem
    payload = {
        "benchmark": stem,
        "title": title,
        "rows": strip_private(records),
        # Peak RSS / CPU time ride in the environment block so `repro
        # campaign compare` band-checks memory alongside the metrics
        # (it ignores "resources" for the environments-match test).
        "environment": {**environment_block(), "resources": usage_block()},
    }
    telemetry = resolve(None)
    if telemetry is not None:
        # Traced runs stamp their span/round summary into the artifact
        # so a benchmark table links to its trace (untraced artifacts
        # stay byte-identical to pre-telemetry runs).
        payload["telemetry"] = telemetry.block()
    (RESULTS_DIR / f"{stem}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf8",
    )
    return text


def median_time(fn, reps: int, label: str | None = None):
    """``(median wall-clock seconds, last result)`` over ``reps`` calls.

    The shared race harness of the kernel/engine benchmarks: timing both
    contestants with the same helper in one process means machine noise
    hits them alike.  Under an active trace each measurement becomes one
    ``bench.measure`` span (annotated with the median once known), so
    timings appear in trace artifacts instead of ad-hoc stderr prints.
    """
    import statistics
    import time

    times = []
    result = None
    with maybe_span(
        resolve(None), "bench.measure", label=label or getattr(fn, "__name__", "fn"), reps=reps
    ) as span:
        for _ in range(reps):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        median = statistics.median(times)
        if span is not None:
            span.annotate(median_seconds=round(median, 9))
    return median, result


def strip_private(rows: Sequence[Mapping[str, object]]) -> list[dict]:
    """Drop ``_``-prefixed bookkeeping columns before display."""
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]
