"""Shared helpers for the benchmark harness.

Every benchmark prints its experiment table (the rows recorded in
``EXPERIMENTS.md``) and also writes it under ``benchmarks/results/`` so
runs leave a diffable artefact.  Run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables inline.
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Sequence

from repro.analysis import format_records

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Root seed for every benchmark (fully reproducible tables).
BENCH_SEED = 20160217  # the paper's arXiv date


def emit(title: str, records: Sequence[Mapping[str, object]], filename: str) -> str:
    """Format ``records`` as a table, print it and save it to results/."""
    text = format_records(records, title=title)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf8")
    return text
