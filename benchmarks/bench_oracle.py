"""E18 — batched cover-oracle queries vs the per-pair BFS baseline.

The oracle's reason to exist is query throughput: after a one-off
multi-scale build (:mod:`repro.oracle`), a batch of ``(s, t)`` distance
queries is answered from flat columnar tables instead of running one
BFS per pair.  Every race first validates correctness — a sample of
answers is checked against exact BFS for the two-sided guarantee
``d ≤ est ≤ stretch_bound · d`` — so the table can only ever show a
speedup on verified answers.

Two modes:

* ``pytest benchmarks/bench_oracle.py -s`` — CI-sized workloads
  (n ≈ 10³–10⁴), correctness asserted, informational speedup, and a
  ``BENCH_oracle.json`` artifact (with the environment block) at the
  repo root;
* ``python benchmarks/bench_oracle.py`` — the acceptance sweep: an
  n ≈ 10⁵ ``gnp_fast`` build serving a 10⁵-query batch (gate: ≥ 10x
  throughput over per-pair BFS, every checked answer within the
  advertised stretch bound), plus an ungated high-diameter torus leg.
  Set ``BENCH_ORACLE_SKIP_TORUS=1`` to skip the torus leg.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import environment_block
from repro.graphs import Graph, gnp_fast, torus_graph
from repro.graphs._kernel import backend_name
from repro.oracle import build_oracle
from repro.rng import stream

from _common import emit, strip_private

SEED = 20160217
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_oracle.json"


def _bfs_distance_early_exit(graph: Graph, source: int, target: int) -> int:
    """The baseline a caller without the oracle would run: one BFS per
    pair, stopping as soon as the target is reached."""
    if source == target:
        return 0
    indptr, indices = graph.csr()
    seen = bytearray(graph.num_vertices)
    seen[source] = 1
    level = [source]
    depth = 0
    while level:
        depth += 1
        frontier: list[int] = []
        for u in level:
            for position in range(indptr[u], indptr[u + 1]):
                w = indices[position]
                if not seen[w]:
                    if w == target:
                        return depth
                    seen[w] = 1
                    frontier.append(w)
        level = frontier
    return -1


def race(
    name: str,
    graph: Graph,
    num_queries: int,
    baseline_pairs: int,
):
    """Build, serve one batch, time both sides.

    The ``baseline_pairs`` prefix of the batch is answered by the
    baseline too, and every one of those answers doubles as an exact
    check of the oracle's two-sided guarantee.
    """
    start = time.perf_counter()
    oracle = build_oracle(graph, seed=SEED)
    build_s = time.perf_counter() - start
    n = graph.num_vertices
    rng = stream(SEED, "bench-oracle", name)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(num_queries)]

    start = time.perf_counter()
    estimates = oracle.distances(pairs)
    batch_s = time.perf_counter() - start
    oracle_qps = num_queries / max(batch_s, 1e-9)

    start = time.perf_counter()
    exact = [
        _bfs_distance_early_exit(graph, s, t) for s, t in pairs[:baseline_pairs]
    ]
    baseline_s = time.perf_counter() - start
    baseline_qps = baseline_pairs / max(baseline_s, 1e-9)

    bound = oracle.stretch_bound
    for (s, t), estimate, distance in zip(pairs, estimates, exact):
        if distance < 0:
            assert estimate == -1, f"{name}: ({s},{t}) reachable mismatch"
        elif distance == 0:
            assert estimate == 0, f"{name}: ({s},{t}) self pair"
        else:
            assert distance <= estimate <= bound * distance, (
                f"{name}: ({s},{t}) est {estimate} outside "
                f"[{distance}, {bound} * {distance}]"
            )
    return {
        "workload": name,
        "n": n,
        "m": graph.num_edges,
        "scales": oracle.num_scales,
        "stretch_bound": round(bound, 2),
        "build s": round(build_s, 2),
        "queries": num_queries,
        "batch s": round(batch_s, 3),
        "oracle q/s": round(oracle_qps),
        "bfs q/s": round(baseline_qps, 1),
        "speedup": round(oracle_qps / baseline_qps, 1),
        "checked": len(exact),
        "_raw_speedup": oracle_qps / baseline_qps,
    }


def _write_artifact(rows, scale: str) -> None:
    payload = {
        "benchmark": "oracle",
        "scale": scale,
        "seed": SEED,
        "rows": strip_private(rows),
        "environment": environment_block(),
    }
    RESULT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf8",
    )
    print(f"wrote {RESULT_PATH}")


def test_oracle_bench():
    """CI-sized race: stretch validated exactly, no wall-clock gate."""
    rows = [
        race("gnp_fast:4096:0.0015", gnp_fast(4096, 0.0015, seed=2),
             num_queries=20_000, baseline_pairs=200),
        race("torus:48:48", torus_graph(48, 48),
             num_queries=20_000, baseline_pairs=200),
    ]
    table = emit(
        f"E18: cover-oracle batched queries vs per-pair BFS "
        f"(CI scale, backend={backend_name()})",
        strip_private(rows),
        "e18_oracle_small.txt",
    )
    assert table
    _write_artifact(rows, "ci")
    print("speedups (informational): "
          + ", ".join(f"{r['_raw_speedup']:.0f}x" for r in rows))


def main() -> int:
    rows = [
        race("gnp_fast:1e5:6/n", gnp_fast(100_000, 6.0 / 100_000, seed=2),
             num_queries=120_000, baseline_pairs=400),
    ]
    if os.environ.get("BENCH_ORACLE_SKIP_TORUS", "") not in ("1", "true", "yes"):
        rows.append(
            race("torus:316:316", torus_graph(316, 316),
                 num_queries=120_000, baseline_pairs=300)
        )
    emit(
        f"E18: cover-oracle batched queries vs per-pair BFS "
        f"(full scale, backend={backend_name()})",
        strip_private(rows),
        "e18_oracle_full.txt",
    )
    _write_artifact(rows, "full")
    speedup = rows[0]["_raw_speedup"]
    print(f"batched-query speedup at n~1e5: {speedup:.0f}x  [acceptance: >= 10x]")
    return 0 if speedup >= 10.0 else 1


if __name__ == "__main__":
    sys.exit(main())
