"""E17 — batch round-engine vs the object-per-message SyncNetwork.

Races the columnar engine (:mod:`repro.engine`) against the reference
simulator on the workloads it was built for: the distributed
Elkin–Neiman protocol end-to-end (``backend="batch"`` vs
``backend="sync"``) and the standard protocols (flood, BFS tree, leader
election).  Every race first asserts bit-identical results — outputs
*and* :class:`~repro.distributed.metrics.NetworkStats` — so the table
can only ever show a speedup on equal work.

Two modes:

* ``pytest benchmarks/bench_engine.py -s`` — CI-sized workloads
  (n ≈ 10³), asserts equivalence and emits the table; no wall-clock
  gate (shared runners are too noisy);
* ``python benchmarks/bench_engine.py`` — the full sweep behind the
  PR-acceptance numbers: the n ≈ 10⁵ EN race (gate: ≥ 5x) plus a
  million-node batch-only EN run that must complete (exit code covers
  both).  Set ``BENCH_ENGINE_SKIP_MILLION=1`` to skip the n ≈ 10⁶ leg.
"""

from __future__ import annotations

import math
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.distributed_en import decompose_distributed
from repro.distributed import (
    FloodNode,
    BFSTreeNode,
    LeaderElectionNode,
    SyncNetwork,
)
from repro.engine import backend_name, bfs_tree, flood, leader_election
from repro.graphs import Graph, gnp_fast, torus_graph

from _common import emit, median_time, strip_private

SEED = 20160217
#: EN protocol timing reps (end-to-end runs are seconds-long; medians of
#: many reps would make the full sweep take an hour).
EN_REPS = 1
PROTOCOL_REPS = 3


def _row(workload, op, n, sync_t, batch_t):
    return {
        "workload": workload,
        "op": op,
        "n": n,
        "sync s": round(sync_t, 2),
        "batch s": round(batch_t, 2),
        "speedup": round(sync_t / max(batch_t, 1e-9), 2),
        "_raw_speedup": sync_t / max(batch_t, 1e-9),
    }


# ----------------------------------------------------------------------
# Races (each asserts bit-identical results before timing counts)
# ----------------------------------------------------------------------
def race_en(name: str, graph: Graph, k: float, reps: int = EN_REPS):
    sync_t, sync_r = median_time(
        lambda: decompose_distributed(graph, k=k, seed=SEED, backend="sync"), reps
    )
    batch_t, batch_r = median_time(
        lambda: decompose_distributed(graph, k=k, seed=SEED, backend="batch"), reps
    )
    assert sync_r.stats == batch_r.stats, f"{name}: stats diverge"
    assert (
        sync_r.decomposition.cluster_index_map()
        == batch_r.decomposition.cluster_index_map()
    ), f"{name}: decompositions diverge"
    assert sync_r.rounds_per_phase == batch_r.rounds_per_phase
    return _row(name, "distributed-en", graph.num_vertices, sync_t, batch_t)


def race_protocols(name: str, graph: Graph, reps: int = PROTOCOL_REPS):
    n = graph.num_vertices

    def sync_flood():
        net = SyncNetwork(graph, lambda v: FloodNode(v, 0))
        net.run_until_quiet(n + 1)
        return (
            {v: net.algorithm(v).heard_at for v in range(n) if net.algorithm(v).heard_at is not None},
            net.stats,
        )

    def sync_tree():
        net = SyncNetwork(graph, lambda v: BFSTreeNode(v, 0))
        net.run_until_quiet(n + 2)
        return (
            {v: net.algorithm(v).depth for v in range(n) if net.algorithm(v).depth is not None},
            net.stats,
        )

    def sync_leader():
        net = SyncNetwork(graph, lambda v: LeaderElectionNode(v))
        net.run_until_quiet(n + 2)
        return ({v: net.algorithm(v).leader for v in range(n)}, net.stats)

    rows = []
    races = [
        ("flood", sync_flood, lambda: flood(graph, 0), lambda b: (b.arrival, b.stats)),
        ("bfs-tree", sync_tree, lambda: bfs_tree(graph, 0), lambda b: (b.depths, b.stats)),
        ("leader", sync_leader, lambda: leader_election(graph), lambda b: (b.leader, b.stats)),
    ]
    for op, sync_fn, batch_fn, view in races:
        sync_t, sync_out = median_time(sync_fn, reps)
        batch_t, batch_out = median_time(batch_fn, reps)
        assert view(batch_out) == sync_out, f"{name}/{op}: engines disagree"
        rows.append(_row(name, op, n, sync_t, batch_t))
    return rows


def run_sweep(full_scale: bool):
    if full_scale:
        torus = torus_graph(316, 316)
        # gnp_fast builds the n=1e5 workload in O(n + m) — the point of
        # the skip-sampled family (low diameter, so protocol rounds stay
        # reduction-dominated rather than dispatch-dominated).
        sparse_gnp = gnp_fast(100_000, 6.0 / 100_000, seed=2)
        rows = [race_en("torus:316:316", torus, k=12)]
        rows += race_protocols("gnp_fast:1e5:6/n", sparse_gnp)
    else:
        rows = [race_en("torus:16:16", torus_graph(16, 16), k=6, reps=1)]
        rows += race_protocols("gnp_fast:2048:0.004", gnp_fast(2048, 0.004, seed=2), reps=1)
    return rows


def million_node_run():
    """The scale leg: distributed EN at n = 10⁶, batch engine only."""
    graph = torus_graph(1000, 1000)
    k = max(2, math.ceil(math.log(graph.num_vertices)))
    t0 = time.perf_counter()
    result = decompose_distributed(graph, k=k, seed=1, backend="batch")
    elapsed = time.perf_counter() - t0
    return {
        "workload": "torus:1000:1000",
        "op": "distributed-en (batch only)",
        "n": graph.num_vertices,
        "batch s": round(elapsed, 1),
        "phases": result.phases,
        "rounds": result.total_rounds,
        "messages": result.stats.messages_sent,
        "colors": result.decomposition.num_colors,
        "in_budget": result.exhausted_within_nominal,
    }


def test_engine_bench():
    """CI-sized race: equivalence asserted, table emitted, no timing gate."""
    rows = run_sweep(full_scale=False)
    table = emit(
        f"E17: batch engine vs SyncNetwork (CI scale, backend={backend_name()})",
        strip_private(rows),
        "e17_engine_small.txt",
    )
    assert table
    print(f"EN speedup (informational): {rows[0]['_raw_speedup']:.2f}x")


def main() -> int:
    rows = run_sweep(full_scale=True)
    en_speedup = rows[0]["_raw_speedup"]
    emit(
        f"E17: batch engine vs SyncNetwork (n~1e5, backend={backend_name()})",
        strip_private(rows),
        "e17_engine_full.txt",
    )
    print(f"distributed-EN speedup at n~1e5: {en_speedup:.2f}x  [acceptance: >= 5x]")
    ok = en_speedup >= 5.0
    if os.environ.get("BENCH_ENGINE_SKIP_MILLION", "") not in ("1", "true", "yes"):
        row = million_node_run()
        emit("E17b: million-node distributed EN (batch engine)", [row], "e17_engine_million.txt")
        print(f"n=1e6 completed in {row['batch s']}s: {row['messages']} messages, "
              f"{row['rounds']} rounds, {row['colors']} colors")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
