"""E2 — Theorem 2: staged rates improve the number of colours.

Head-to-head at identical ``(n, k, c, seed)``: Theorem 1's constant-β run
vs Theorem 2's staged run.  The paper's improvement is in the *budget*
(``4k(cn)^{1/k}`` vs ``(cn)^{1/k}·ln(cn)``); measured colours track the
budgets.  Strong diameter stays ``2k − 2`` for both.
"""

from __future__ import annotations

import pytest

from repro.core import elkin_neiman, staged, theorem1_bounds, theorem2_bounds
from repro.graphs import erdos_renyi, random_connected

from _common import BENCH_SEED, emit


def collect_rows() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    c = 6.0
    for n in (256, 1024):
        graph = erdos_renyi(n, 4.0 / n, seed=BENCH_SEED + n)
        for k in (2, 3):
            d1, t1 = elkin_neiman.decompose(graph, k=k, c=c, seed=BENCH_SEED)
            d2, t2 = staged.decompose(graph, k=k, c=c, seed=BENCH_SEED)
            d1.validate()
            d2.validate()
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "thm1_colors": d1.num_colors,
                    "thm1_budget": round(theorem1_bounds(n, k, c).colors, 1),
                    "thm2_colors": d2.num_colors,
                    "thm2_budget": round(theorem2_bounds(n, k, c).colors, 1),
                    "thm1_strongD": d1.max_strong_diameter(),
                    "thm2_strongD": d2.max_strong_diameter(),
                    "D_bound": 2 * k - 2,
                }
            )
    return rows


def test_theorem2_table(benchmark):
    graph = random_connected(256, 0.008, seed=BENCH_SEED)

    def run():
        decomposition, _ = staged.decompose(graph, k=3, c=6.0, seed=BENCH_SEED)
        return decomposition

    decomposition = benchmark(run)
    assert decomposition.is_partition()
    table = emit("E2: Theorem 2 — staged beta, colours 4k(cn)^{1/k}", collect_rows(), "e2_theorem2.txt")
    assert table
