"""E-ASY — overhead gate for the α-synchronized asynchronous engine.

The async-engine contract (``docs/async.md``): on a fault-free FIFO
schedule, :class:`~repro.distributed.async_net.AsyncNetwork` is
**bit-identical** to the reference
:class:`~repro.distributed.network.SyncNetwork` — same decomposition,
same :class:`~repro.distributed.metrics.NetworkStats`, same per-phase
round counts — while paying only a bounded constant factor for its
event-queue machinery.  Both claims are checked here: every arm pair is
first asserted output-identical where the contract says so, then raced.

Arms (interleaved reps, medians — machine noise hits them alike):

* ``sync``         — the reference simulator, the baseline;
* ``async-fifo``   — the async engine on the degenerate FIFO schedule
  (the gate: this prices the event queue and synchronizer bookkeeping);
* ``async-latest`` — adversarial latest-possible delivery at bound 3
  (informational: adds delay bookkeeping and reorder counting);
* ``async-faulty`` — random delays plus seeded message drops
  (informational; outputs legitimately diverge, only termination and
  replay-determinism are asserted).

Two modes, following ``bench_telemetry.py``:

* ``pytest benchmarks/bench_async.py -s`` — CI-sized workload, asserts
  the FIFO bit-identity contract and emits the table; no wall-clock
  gate (shared runners are too noisy at sub-second scale);
* ``python benchmarks/bench_async.py`` — the acceptance gate: median
  ``async-fifo``/``sync`` ratio ≤ 3.0 on an n ≈ 2·10³ workload, with up
  to ``GATE_ATTEMPTS`` re-measurements before declaring failure (noise
  only ever inflates the ratio, never hides real overhead).

Each arm's row also carries its causal critical-path and slack figures
(:mod:`repro.telemetry.critical`), collected in one untimed traced pass
per arm so the timing reps stay untraced: the ``cp rounds``/``cp
drift`` columns quantify how much timeline inflation each schedule
actually forced, and the slack columns how much delay headroom the
delivered messages had.  They land in the compare-ready JSON artifact
next to the timing columns (``campaign compare`` bands them like any
other metric); the fault-free arms re-assert the critical-path ==
rounds invariant on the way.
"""

from __future__ import annotations

import math
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.distributed_en import decompose_distributed
from repro.graphs import Graph, gnp_fast
from repro.telemetry import Telemetry, critical_path

from _common import BENCH_SEED, emit, strip_private

REPS = int(os.environ.get("BENCH_ASYNC_REPS", "5"))
GATE_RATIO = 3.0
GATE_ATTEMPTS = 3


def _signature(result):
    """The comparable output of one run (the bit-identity contract)."""
    return (
        result.decomposition.cluster_index_map(),
        result.stats,
        result.rounds_per_phase,
        result.phases,
    )


#: Arm name -> driver configuration, shared by the timed callables and
#: the untimed causal-stats pass.
_ARM_CONFIGS = {
    "sync": dict(backend="sync"),
    "async-fifo": dict(backend="async"),
    "async-latest": dict(backend="async", delivery="latest:3"),
    "async-faulty": dict(
        backend="async", delivery="random:2", faults="drop:0.02"
    ),
}


def _arms(graph: Graph, k: float):
    """``{arm: zero-arg callable}`` — each returns a run signature."""

    def run(config):
        return _signature(
            decompose_distributed(graph, k=k, seed=BENCH_SEED, **config)
        )

    return {
        arm: (lambda config=config: run(config))
        for arm, config in _ARM_CONFIGS.items()
    }


def causal_stats(graph: Graph, k: float) -> dict[str, dict]:
    """One untimed traced pass per arm: critical-path and slack columns.

    Fault-free arms (``sync``, ``async-fifo``) re-assert the invariant
    that the critical path's length equals the driver's round count
    with zero drift; the adversarial arms report what the schedule
    actually cost on the binding dependency chain.
    """
    stats: dict[str, dict] = {}
    for arm, config in _ARM_CONFIGS.items():
        telemetry = Telemetry()
        result = decompose_distributed(
            graph, k=k, seed=BENCH_SEED, telemetry=telemetry, **config
        )
        path = critical_path(telemetry.causal)
        if config.get("delivery", "fifo") == "fifo" and "faults" not in config:
            assert path["rounds"] == result.total_rounds, (
                f"{arm}: critical path {path['rounds']} != "
                f"rounds {result.total_rounds}"
            )
            assert path["drift"] == 0, f"{arm}: fault-free drift {path['drift']}"
        stats[arm] = {
            "cp rounds": path["rounds"],
            "cp drift": path["drift"],
            "slack mean": path["slack"]["mean"],
            "slack max": path["slack"]["max"],
        }
    return stats


def measure(graph: Graph, k: float, reps: int = REPS):
    """Interleaved timing of all arms; asserts the engine contracts.

    ``async-fifo`` must be bit-identical to ``sync``; ``async-latest``
    must reproduce the same decomposition (order-obliviousness under
    bounded delay); ``async-faulty`` must be identical across its own
    reps (replay determinism) — its output legitimately differs from
    the fault-free arms.
    """
    arms = _arms(graph, k)
    times: dict[str, list[float]] = {arm: [] for arm in arms}
    outputs: dict[str, list] = {arm: [] for arm in arms}
    for _ in range(reps):
        for arm, fn in arms.items():
            start = time.perf_counter()
            result = fn()
            times[arm].append(time.perf_counter() - start)
            outputs[arm].append(result)
    for arm, runs in outputs.items():
        assert all(run == runs[0] for run in runs), (
            f"arm {arm!r} is not replay-deterministic across reps"
        )
    reference = outputs["sync"][0]
    assert outputs["async-fifo"][0] == reference, (
        "async FIFO diverged from SyncNetwork — the bit-identity contract"
    )
    assert outputs["async-latest"][0][0] == reference[0], (
        "latest-possible delivery changed the decomposition — "
        "order-obliviousness under bounded delay is broken"
    )
    return {arm: statistics.median(samples) for arm, samples in times.items()}


def _rows(
    workload: str,
    n: int,
    medians: dict[str, float],
    causal: dict[str, dict] | None = None,
):
    base = medians["sync"]
    return [
        {
            "workload": workload,
            "arm": arm,
            "n": n,
            "median s": round(seconds, 4),
            "vs sync": round(seconds / max(base, 1e-9), 3),
            **(causal or {}).get(arm, {}),
            "_ratio": seconds / max(base, 1e-9),
        }
        for arm, seconds in medians.items()
    ]


def test_async_overhead_bench():
    """CI-sized run: contracts asserted, table emitted, no gate."""
    graph = gnp_fast(512, 6.0 / 512, seed=2)
    medians = measure(graph, k=5, reps=3)
    rows = _rows(
        "gnp_fast:512:6/n", graph.num_vertices, medians,
        causal=causal_stats(graph, k=5),
    )
    table = emit(
        "E-ASY: async engine overhead (CI scale, informational)",
        strip_private(rows),
        "easy_async_small.txt",
    )
    assert table
    print(
        "async-fifo/sync ratio (informational): "
        f"{medians['async-fifo'] / medians['sync']:.3f}"
    )


def main() -> int:
    n = 2048
    graph = gnp_fast(n, 6.0 / n, seed=2)
    k = max(2, math.ceil(math.log(n)))
    ratio = math.inf
    medians: dict[str, float] = {}
    for attempt in range(1, GATE_ATTEMPTS + 1):
        medians = measure(graph, k=k)
        ratio = medians["async-fifo"] / medians["sync"]
        print(
            f"attempt {attempt}: async-fifo/sync = {ratio:.4f}  "
            f"[gate: <= {GATE_RATIO}]"
        )
        if ratio <= GATE_RATIO:
            break
    rows = _rows(f"gnp_fast:{n}:6/n", n, medians, causal=causal_stats(graph, k=k))
    emit(
        "E-ASY: async engine overhead (acceptance gate)",
        strip_private(rows),
        "easy_async_full.txt",
    )
    print(
        f"async FIFO overhead: {ratio:.3f}x sync "
        f"(latest {medians['async-latest'] / medians['sync']:.3f}x, "
        f"faulty {medians['async-faulty'] / medians['sync']:.3f}x, "
        "informational)"
    )
    return 0 if ratio <= GATE_RATIO else 1


if __name__ == "__main__":
    sys.exit(main())
