"""E16 — ablation: why the join rule's gap constant is exactly 1.

The algorithm admits a vertex to the block iff ``m₁ − m₂ > θ`` with
``θ = 1`` — the per-hop decay of a shifted value.  Claim 3's argument
("every vertex on a shortest path to the center also chose it") consumes
exactly one unit of gap per hop, so:

* ``θ < 1`` — the closure argument fails; blocks fracture into
  disconnected center-classes and components stop being center-pure;
* ``θ = 1`` — the paper's algorithm: connected, center-pure, 2k−2;
* ``θ > 1`` — still sound (a larger gap only strengthens Claim 3's
  inequality) but joins become rarer: more phases, more colours.

The sweep measures, per θ: fraction of phases whose block has a
mixed-center component, total colours, and phases to exhaustion.
"""

from __future__ import annotations

import pytest

from repro.core.carving import carve_block
from repro.core.shifts import sample_phase_radii
from repro.graphs import connected_components, erdos_renyi, grid_graph

from _common import BENCH_SEED, emit


def run_threshold(graph, theta: float, beta: float, seed: int, max_phases: int = 500):
    """Carve to exhaustion with gap threshold ``theta``; return metrics."""
    active = set(graph.vertices())
    phases = 0
    mixed_components = 0
    total_components = 0
    while active and phases < max_phases:
        phases += 1
        radii = sample_phase_radii(seed, phases, active, beta)
        outcome = carve_block(graph, active, radii, gap_threshold=theta)
        for component in connected_components(
            graph, active=outcome.block, universe=sorted(outcome.block)
        ):
            total_components += 1
            if len({outcome.center_of[v] for v in component}) > 1:
                mixed_components += 1
        active -= outcome.block
    return {
        "phases": phases,
        "exhausted": not active,
        "mixed_components": mixed_components,
        "total_components": total_components,
    }


def collect_rows() -> list[dict[str, object]]:
    rows = []
    beta = 1.2
    for name, graph in (
        ("er-120", erdos_renyi(120, 0.05, seed=BENCH_SEED)),
        ("grid-100", grid_graph(10, 10)),
    ):
        for theta in (0.25, 0.5, 1.0, 1.5):
            metrics = run_threshold(graph, theta, beta, BENCH_SEED)
            rows.append(
                {
                    "graph": name,
                    "theta": theta,
                    "phases(=colors)": metrics["phases"],
                    "exhausted": metrics["exhausted"],
                    "mixed_center_comps": metrics["mixed_components"],
                    "components": metrics["total_components"],
                    "sound": theta >= 1.0,
                }
            )
    return rows


def test_ablation_table(benchmark):
    graph = erdos_renyi(120, 0.05, seed=BENCH_SEED)
    result = benchmark(run_threshold, graph, 1.0, 1.2, BENCH_SEED)
    assert result["exhausted"]
    rows = collect_rows()
    emit("E16: ablation — join-rule gap threshold theta (paper: 1.0)", rows, "e16_ablation.txt")
    # At theta >= 1 every component is center-pure (Claim 3); below 1 the
    # guarantee breaks visibly somewhere in the sweep.
    for row in rows:
        if row["theta"] >= 1.0:
            assert row["mixed_center_comps"] == 0
    assert any(row["mixed_center_comps"] > 0 for row in rows if row["theta"] < 1.0)
    # Larger theta joins more slowly: phases weakly increase in theta per graph.
    for name in ("er-120", "grid-100"):
        series = [r["phases(=colors)"] for r in rows if r["graph"] == name]
        assert series[-1] >= series[1]  # theta=1.5 needs >= theta=0.5 phases
