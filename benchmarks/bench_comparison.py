"""E4 — the §1.2 comparison: prior work vs this paper at k = ln n.

Two tables:

* closed-form bounds (unit constants) for AGLP89 / PS92 / LS93 / EN16 —
  the qualitative shape of §1.2's history;
* measured head-to-head of the two polylogarithmic algorithms, LS93
  (weak) and EN16 (strong), at identical ``k = ⌈ln n⌉``: diameters,
  colours, distributed rounds.  The paper's point: same parameters, but
  EN's diameter is *strong* (finite on the induced clusters) where LS's
  is only weak.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import comparison_rows, report
from repro.baselines import linial_saks
from repro.baselines.distributed_ls import decompose_distributed as ls_distributed
from repro.core import elkin_neiman
from repro.core.distributed_en import decompose_distributed as en_distributed
from repro.graphs import erdos_renyi, random_connected

from _common import BENCH_SEED, emit


def closed_form_rows() -> list[dict[str, object]]:
    rows = []
    for n in (256, 4096, 2**16):
        for row in comparison_rows(n):
            rows.append(
                {
                    "n": n,
                    "algorithm": row.algorithm,
                    "diam_kind": row.diameter_kind,
                    "diameter": round(row.diameter, 1),
                    "colors": round(row.colors, 1),
                    "rounds": round(row.rounds, 1),
                    "det": row.deterministic,
                }
            )
    return rows


def measured_rows() -> list[dict[str, object]]:
    rows = []
    for n in (128, 256, 512):
        graph = random_connected(n, 2.0 / n, seed=BENCH_SEED + n)
        k = math.ceil(math.log(n))
        en_result = en_distributed(graph, k=k, seed=BENCH_SEED)
        ls_result = ls_distributed(graph, k=k, seed=BENCH_SEED)
        for name, decomposition, rounds in (
            ("EN16", en_result.decomposition, en_result.total_rounds),
            ("LS93", ls_result.decomposition, ls_result.total_rounds),
        ):
            q = report(decomposition)
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "algorithm": name,
                    "strongD": q.max_strong_diameter,
                    "weakD": q.max_weak_diameter,
                    "D_bound": 2 * k - 2,
                    "colors": q.num_colors,
                    "disconn": q.num_disconnected_clusters,
                    "rounds": rounds,
                    "log2n_sq": round(math.log(n) ** 2, 1),
                }
            )
    return rows


def test_comparison_tables(benchmark):
    graph = random_connected(256, 2.0 / 256, seed=BENCH_SEED + 256)
    k = math.ceil(math.log(256))

    def run():
        decomposition, _ = elkin_neiman.decompose(graph, k=k, seed=BENCH_SEED)
        return decomposition

    decomposition = benchmark(run)
    assert decomposition.is_partition()
    emit("E4a: closed-form bounds (unit constants), the 1.2 history", closed_form_rows(), "e4a_closed_form.txt")
    table = emit("E4b: measured LS93 (weak) vs EN16 (strong) at k = ceil(ln n)", measured_rows(), "e4b_measured.txt")
    assert table
