"""E13–E15 — extension experiments beyond the paper's stated results.

* **E13 spanners** (§1.1, Dubhashi et al. direction): cluster spanner
  size and stretch over Theorem 1 decompositions; weak (LS) decompositions
  cannot build one at all.
* **E14 neighborhood covers** (§1.1, ABCP92 direction): covering,
  overlap ≤ χ and diameter, via decomposition of ``G^{2W+1}``.
* **E15 scheduling constants**: the paper's literal collect-at-leader
  recipe vs the symmetric flooding scheduler — identical outputs,
  measured round-constant ~3× apart, both O(D·χ).
"""

from __future__ import annotations

import pytest

from repro.applications import build_cover, build_spanner, run_mis
from repro.applications.leader_collect import run_leader_collect_app
from repro.applications.mis import MISTask
from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.errors import DecompositionError
from repro.graphs import erdos_renyi, grid_graph

from _common import BENCH_SEED, emit


def spanner_rows() -> list[dict[str, object]]:
    rows = []
    for name, graph in (
        ("er-dense-80", erdos_renyi(80, 0.25, seed=BENCH_SEED)),
        ("er-mid-120", erdos_renyi(120, 0.10, seed=BENCH_SEED)),
        ("grid-100", grid_graph(10, 10)),
    ):
        decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
        spanner = build_spanner(graph, decomposition)
        ls, _ = linial_saks.decompose(graph, k=4, seed=BENCH_SEED)
        try:
            build_spanner(graph, ls)
            ls_outcome = "built"
        except DecompositionError:
            ls_outcome = "IMPOSSIBLE"
        rows.append(
            {
                "graph": name,
                "m": graph.num_edges,
                "spanner_m": spanner.num_edges,
                "kept%": round(100 * spanner.num_edges / graph.num_edges, 1),
                "stretch": spanner.max_stretch,
                "bound_4D+1": spanner.stretch_bound,
                "LS_spanner": ls_outcome,
            }
        )
    return rows


def cover_rows() -> list[dict[str, object]]:
    rows = []
    graph = erdos_renyi(60, 0.08, seed=BENCH_SEED)
    for W in (1, 2):
        cover = build_cover(graph, radius=W, k=3, seed=BENCH_SEED)
        rows.append(
            {
                "W": W,
                "clusters": cover.num_clusters,
                "covers": cover.covers_all_balls(graph),
                "overlap": cover.max_overlap(graph),
                "chi_bound": cover.overlap_bound,
                "weakD": cover.max_weak_diameter(graph),
                "D_bound": round(cover.diameter_bound, 1),
            }
        )
    return rows


def scheduler_rows() -> list[dict[str, object]]:
    rows = []
    for name, graph in (
        ("grid-64", grid_graph(8, 8)),
        ("er-100", erdos_renyi(100, 0.05, seed=BENCH_SEED)),
    ):
        decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
        flood = run_mis(graph, decomposition, seed=BENCH_SEED)
        leader = run_leader_collect_app(graph, decomposition, MISTask, seed=BENCH_SEED)
        leader_set = {v for v, d in leader.decisions.items() if d is True}
        chi = decomposition.num_colors
        diameter = int(decomposition.max_strong_diameter())
        rows.append(
            {
                "graph": name,
                "identical": leader_set == flood.independent_set,
                "flood_rounds": flood.app.rounds,
                "flood=chi(D+2)": chi * (diameter + 2),
                "leader_rounds": leader.rounds,
                "leader=chi(3D+4)": chi * (3 * diameter + 4),
            }
        )
    return rows


def test_spanner_table(benchmark):
    graph = erdos_renyi(80, 0.25, seed=BENCH_SEED)
    decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
    result = benchmark(build_spanner, graph, decomposition)
    assert result.max_stretch <= result.stretch_bound
    rows = spanner_rows()
    emit("E13: cluster spanners need strong diameter", rows, "e13_spanner.txt")
    assert all(row["stretch"] <= row["bound_4D+1"] for row in rows)


def test_cover_table(benchmark):
    graph = erdos_renyi(60, 0.08, seed=BENCH_SEED)
    result = benchmark(build_cover, graph, 1, 3, 4.0, BENCH_SEED)
    assert result.covers_all_balls(graph)
    rows = cover_rows()
    emit("E14: W-neighborhood covers from decompositions of G^{2W+1}", rows, "e14_covers.txt")
    assert all(row["covers"] for row in rows)
    assert all(row["overlap"] <= row["chi_bound"] for row in rows)


def test_scheduler_table(benchmark):
    graph = grid_graph(8, 8)
    decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)

    def run():
        return run_leader_collect_app(graph, decomposition, MISTask, seed=BENCH_SEED)

    result = benchmark(run)
    assert result.rounds > 0
    rows = scheduler_rows()
    emit("E15: collect-at-leader vs flooding scheduler (both O(D*chi))", rows, "e15_schedulers.txt")
    assert all(row["identical"] for row in rows)
    assert all(row["flood_rounds"] == row["flood=chi(D+2)"] for row in rows)
    assert all(row["leader_rounds"] == row["leader=chi(3D+4)"] for row in rows)
