"""K1 — CSR traversal kernel vs the legacy adjacency-tuple kernel.

The pre-CSR kernel stored adjacency as a tuple of sorted tuples and
filtered active sets with per-edge Python ``set`` probes; this benchmark
vendors that implementation verbatim (``_legacy_*`` below) and races it
against the shipped CSR + byte-mask kernel on BFS-dominated workloads.

Two modes:

* ``pytest benchmarks/bench_kernel.py -s`` — CI-sized workloads
  (n ≈ 4·10³), asserts result equivalence and emits the table;
* ``python benchmarks/bench_kernel.py`` — the full n ≈ 10⁵ sweep behind
  the PR-acceptance number (≥3× on BFS-dominated workloads), plus a
  backend column (numpy-accelerated vs pure-Python fallback; set
  ``REPRO_KERNEL=py`` to benchmark the fallback).

Timing compares medians of ``REPS`` runs in one process, so machine noise
hits both kernels alike.
"""

from __future__ import annotations

import math
import sys
from collections import deque
from typing import Callable, Container, Iterable

import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.graphs import (
    ActiveSet,
    Graph,
    bfs_distances,
    connected_components,
    multi_source_bfs,
    random_regular,
    torus_graph,
    watts_strogatz,
)
from repro.graphs._kernel import backend_name

from _common import emit, median_time, strip_private

REPS = 5


# ----------------------------------------------------------------------
# The legacy kernel, vendored: tuple-of-tuples adjacency, deque BFS,
# per-edge Python `in active` probes.  Byte-for-byte the pre-CSR hot loop.
# ----------------------------------------------------------------------
def _legacy_adjacency(graph: Graph) -> tuple[tuple[int, ...], ...]:
    return tuple(graph.neighbors(v) for v in graph.vertices())


def _legacy_is_active(active: Container[int] | None, v: int) -> bool:
    return active is None or v in active


def _legacy_bfs(
    adjacency: tuple[tuple[int, ...], ...],
    source: int,
    active: Container[int] | None = None,
) -> dict[int, int]:
    distances: dict[int, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = distances[u]
        for w in adjacency[u]:
            if w not in distances and _legacy_is_active(active, w):
                distances[w] = du + 1
                frontier.append(w)
    return distances


def _legacy_multi_source(
    adjacency: tuple[tuple[int, ...], ...],
    sources: Iterable[int],
    active: Container[int] | None = None,
) -> dict[int, int]:
    distances: dict[int, int] = {}
    frontier: deque[int] = deque()
    for s in sorted(set(sources)):
        distances[s] = 0
        frontier.append(s)
    while frontier:
        u = frontier.popleft()
        du = distances[u]
        for w in adjacency[u]:
            if w not in distances and _legacy_is_active(active, w):
                distances[w] = du + 1
                frontier.append(w)
    return distances


def _legacy_components(
    adjacency: tuple[tuple[int, ...], ...],
    n: int,
    active: Container[int] | None = None,
) -> list[list[int]]:
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in range(n):
        if start in seen or not _legacy_is_active(active, start):
            continue
        component = sorted(_legacy_bfs(adjacency, start, active=active))
        seen.update(component)
        components.append(component)
    components.sort(key=lambda comp: comp[0])
    return components


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _spread_sources(n: int, count: int = 16) -> list[int]:
    return list(range(0, n, max(1, n // count)))


def race(name: str, graph: Graph) -> list[dict[str, object]]:
    """Race legacy vs CSR on one workload; returns table rows."""
    n = graph.num_vertices
    adjacency = _legacy_adjacency(graph)
    legacy_active = set(range(n))
    csr_active = ActiveSet.full(n)
    sources = _spread_sources(n)
    ops: list[tuple[str, Callable[[], object], Callable[[], object]]] = [
        (
            "bfs",
            lambda: _legacy_bfs(adjacency, 0),
            lambda: bfs_distances(graph, 0),
        ),
        (
            "bfs+active",
            lambda: _legacy_bfs(adjacency, 0, active=legacy_active),
            lambda: bfs_distances(graph, 0, active=csr_active),
        ),
        (
            "multi16",
            lambda: _legacy_multi_source(adjacency, sources, active=legacy_active),
            lambda: multi_source_bfs(graph, sources, active=csr_active),
        ),
        (
            "components",
            lambda: _legacy_components(adjacency, n),
            lambda: connected_components(graph),
        ),
    ]
    rows = []
    for op, legacy_fn, csr_fn in ops:
        legacy_t, legacy_out = median_time(legacy_fn, REPS)
        csr_t, csr_out = median_time(csr_fn, REPS)
        assert legacy_out == csr_out, f"{name}/{op}: kernels disagree"
        rows.append(
            {
                "workload": name,
                "n": n,
                "op": op,
                "legacy ms": round(legacy_t * 1000, 1),
                "csr ms": round(csr_t * 1000, 1),
                "speedup": round(legacy_t / csr_t, 2),
                # raw ratio kept for geomean: the rounded display value
                # can be 0.0 for sub-5µs ops, which would blow up log().
                "_raw_speedup": legacy_t / max(csr_t, 1e-9),
            }
        )
    return rows


def geomean_speedup(rows: list[dict[str, object]]) -> float:
    speedups = [max(float(row["_raw_speedup"]), 1e-9) for row in rows]
    return math.exp(sum(math.log(s) for s in speedups) / len(speedups))


def run_sweep(full_scale: bool) -> list[dict[str, object]]:
    if full_scale:
        workloads = [
            ("torus:316:316", torus_graph(316, 316)),
            ("regular:1e5:6", random_regular(100_000, 6, seed=2)),
            ("ws:1e5:6:0.05", watts_strogatz(100_000, 6, 0.05, seed=2)),
        ]
    else:
        workloads = [
            ("torus:64:64", torus_graph(64, 64)),
            ("regular:4096:8", random_regular(4096, 8, seed=2)),
        ]
    rows = []
    for name, graph in workloads:
        rows.extend(race(name, graph))
    return rows


def test_kernel_bench():
    """CI-sized race: equivalence asserted (inside ``race``), table emitted.

    No wall-clock assertion here — shared CI runners are too noisy for
    timing thresholds at sub-millisecond op sizes; the ≥3x acceptance
    number comes from the full-scale ``main()`` sweep run on quiet
    hardware.
    """
    rows = run_sweep(full_scale=False)
    table = emit(
        f"K1: CSR kernel vs legacy kernel (CI scale, backend={backend_name()})",
        strip_private(rows),
        "k1_kernel_small.txt",
    )
    assert table
    print(f"geomean speedup (informational): {geomean_speedup(rows):.2f}x")


def main() -> int:
    rows = run_sweep(full_scale=True)
    gm = geomean_speedup(rows)
    bfs_rows = [row for row in rows if row["op"] != "components"]
    gm_bfs = geomean_speedup(bfs_rows)
    emit(
        f"K1: CSR kernel vs legacy kernel (n~1e5, backend={backend_name()})",
        strip_private(rows),
        "k1_kernel_full.txt",
    )
    print(f"geomean speedup (all ops): {gm:.2f}x")
    print(f"geomean speedup (BFS ops): {gm_bfs:.2f}x  [acceptance: >= 3x]")
    return 0 if gm_bfs >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
