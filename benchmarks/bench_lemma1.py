"""E7 — Lemma 1: Pr[any truncation event E_v] ≤ 2/c.

Across seeded full runs, the fraction of runs with at least one draw
``r ≥ k + 1`` must sit below ``2/c`` (the union-bounded probability the
paper conditions on).  Sweeping ``c`` shows the 1/c decay.
"""

from __future__ import annotations

import pytest

from repro.core import elkin_neiman
from repro.graphs import erdos_renyi

from _common import BENCH_SEED, emit


def collect_rows(n: int = 150, k: int = 3, runs: int = 20):
    graph = erdos_renyi(n, 4.0 / n, seed=BENCH_SEED)
    rows = []
    for c in (4.0, 8.0, 16.0):
        bad_runs = 0
        total_events = 0
        for run in range(runs):
            _, trace = elkin_neiman.decompose(
                graph, k=k, c=c, seed=BENCH_SEED + 1000 * run
            )
            if trace.had_truncation_event:
                bad_runs += 1
            total_events += len(trace.truncation_events)
        rows.append(
            {
                "c": c,
                "runs": runs,
                "runs_with_event": bad_runs,
                "event_frac": round(bad_runs / runs, 3),
                "lemma1_bound": round(2.0 / c, 3),
                "total_events": total_events,
            }
        )
    return rows


def test_lemma1_table(benchmark):
    graph = erdos_renyi(150, 4.0 / 150, seed=BENCH_SEED)

    def run():
        _, trace = elkin_neiman.decompose(graph, k=3, c=8.0, seed=BENCH_SEED)
        return trace

    trace = benchmark(run)
    rows = collect_rows()
    table = emit("E7: Lemma 1 — truncation events occur w.p. <= 2/c", rows, "e7_lemma1.txt")
    # The empirical frequency may not exceed the bound by more than
    # Monte-Carlo noise (20 runs -> generous slack).
    for row in rows:
        assert row["event_frac"] <= row["lemma1_bound"] + 0.25
    assert table
