"""E6 — Claim 6 and Corollary 7: survival decay and graph exhaustion.

The mean fraction of vertices alive after phase ``t`` must track under
``(1 − (cn)^{-1/k})^t``, and the graph must empty within
``λ = (cn)^{1/k}·ln(cn)`` phases in a ``≥ 1 − 1/c`` fraction of runs.
"""

from __future__ import annotations

import pytest

from repro.analysis import aggregate_survival, claim6_envelope
from repro.core import elkin_neiman
from repro.graphs import erdos_renyi

from _common import BENCH_SEED, emit


def collect_rows(n: int = 200, k: int = 3, c: float = 4.0, runs: int = 12):
    graph = erdos_renyi(n, 4.0 / n, seed=BENCH_SEED)
    traces = []
    for run in range(runs):
        _, trace = elkin_neiman.decompose(graph, k=k, c=c, seed=BENCH_SEED + run)
        traces.append(trace)
    summary = aggregate_survival(traces, n)
    envelope = claim6_envelope(n, k, c, summary.max_phases_observed)
    rows = []
    checkpoints = sorted(
        {0, 1, 3, 7, 15, summary.max_phases_observed - 1}
        & set(range(summary.max_phases_observed))
    )
    for t in checkpoints:
        rows.append(
            {
                "phase": t + 1,
                "mean_alive_frac": round(summary.mean_curve[t], 4),
                "claim6_bound": round(envelope[t], 4),
                "under_bound": summary.mean_curve[t] <= envelope[t] + 0.1,
            }
        )
    meta = {
        "phase": "—",
        "mean_alive_frac": f"exhausted_in_budget={summary.exhausted_within_nominal_fraction:.2f}",
        "claim6_bound": f">= {1 - 1/c:.2f} expected",
        "under_bound": summary.exhausted_within_nominal_fraction >= 1 - 1 / c - 0.25,
    }
    rows.append(meta)
    return rows, summary


def test_survival_table(benchmark):
    graph = erdos_renyi(200, 0.02, seed=BENCH_SEED)

    def run():
        _, trace = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
        return trace

    trace = benchmark(run)
    assert trace.survivors[-1] == 0
    rows, summary = collect_rows()
    table = emit("E6: Claim 6 / Corollary 7 — survival decay and exhaustion", rows, "e6_survival.txt")
    assert summary.exhausted_within_nominal_fraction > 0.5
    assert table
