"""E6 — Claim 6 and Corollary 7: survival decay and graph exhaustion.

The mean fraction of vertices alive after phase ``t`` must track under
``(1 − (cn)^{-1/k})^t``, and the graph must empty within
``λ = (cn)^{1/k}·ln(cn)`` phases in a ``≥ 1 − 1/c`` fraction of runs.
The multi-seed sweep runs through the runtime's ``survival`` scenario
(one fixed ER graph, twelve algorithm seeds).
"""

from __future__ import annotations

import pytest

from repro.analysis import claim6_envelope
from repro.core import elkin_neiman
from repro.experiments import mean_curve
from repro.graphs import erdos_renyi

from _common import BENCH_SEED, emit, run_scenario


def collect_rows(runs: int = 12):
    result = run_scenario("survival", trials=runs)
    records = result.records
    n = records[0]["n"]
    k = int(records[0]["k"])
    c = records[0]["c"]
    curves = [record["survivors"] for record in records]
    mean_alive = [value / n for value in mean_curve(curves)]
    max_phases = len(mean_alive)
    exhausted_fraction = sum(record["in_budget"] for record in records) / len(records)
    envelope = claim6_envelope(n, k, c, max_phases)
    rows = []
    checkpoints = sorted({0, 1, 3, 7, 15, max_phases - 1} & set(range(max_phases)))
    for t in checkpoints:
        rows.append(
            {
                "phase": t + 1,
                "mean_alive_frac": round(mean_alive[t], 4),
                "claim6_bound": round(envelope[t], 4),
                "under_bound": mean_alive[t] <= envelope[t] + 0.1,
            }
        )
    meta = {
        "phase": "—",
        "mean_alive_frac": f"exhausted_in_budget={exhausted_fraction:.2f}",
        "claim6_bound": f">= {1 - 1/c:.2f} expected",
        "under_bound": exhausted_fraction >= 1 - 1 / c - 0.25,
    }
    rows.append(meta)
    return rows, exhausted_fraction


def test_survival_table(benchmark):
    graph = erdos_renyi(200, 0.02, seed=BENCH_SEED)

    def run():
        _, trace = elkin_neiman.decompose(graph, k=3, seed=BENCH_SEED)
        return trace

    trace = benchmark(run)
    assert trace.survivors[-1] == 0
    rows, exhausted_fraction = collect_rows()
    table = emit("E6: Claim 6 / Corollary 7 — survival decay and exhaustion", rows, "e6_survival.txt")
    assert exhausted_fraction > 0.5
    assert table
