"""E8 — the CONGEST claim: top-two forwarding suffices with O(1) words.

Three measurements per topology:

* the decompositions produced by ``full`` and ``toptwo`` forwarding are
  identical (the paper's unproved-in-the-abstract assertion);
* peak words per edge per round: constant for top-two, growing with
  density for full forwarding;
* total message volume saved by the optimisation.
"""

from __future__ import annotations

import pytest

from repro.core.distributed_en import decompose_distributed
from repro.graphs import complete_graph, erdos_renyi, grid_graph, random_regular

from _common import BENCH_SEED, emit


def _workloads():
    yield "grid-100", grid_graph(10, 10)
    yield "er-sparse-128", erdos_renyi(128, 3.0 / 128, seed=BENCH_SEED)
    yield "er-dense-64", erdos_renyi(64, 0.3, seed=BENCH_SEED)
    yield "regular6-100", random_regular(100, 6, seed=BENCH_SEED)
    yield "complete-32", complete_graph(32)


def collect_rows() -> list[dict[str, object]]:
    rows = []
    for name, graph in _workloads():
        full = decompose_distributed(graph, k=3, seed=BENCH_SEED, mode="full")
        toptwo = decompose_distributed(graph, k=3, seed=BENCH_SEED, mode="toptwo")
        identical = (
            full.decomposition.cluster_index_map()
            == toptwo.decomposition.cluster_index_map()
        )
        rows.append(
            {
                "graph": name,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "identical": identical,
                "full_peak_words": full.stats.max_words_per_edge_round,
                "toptwo_peak_words": toptwo.stats.max_words_per_edge_round,
                "full_msgs": full.stats.messages_sent,
                "toptwo_msgs": toptwo.stats.messages_sent,
                "rounds": toptwo.total_rounds,
            }
        )
    return rows


def test_congest_table(benchmark):
    graph = grid_graph(10, 10)

    def run():
        return decompose_distributed(graph, k=3, seed=BENCH_SEED, mode="toptwo")

    result = benchmark(run)
    assert result.decomposition.is_partition()
    rows = collect_rows()
    table = emit("E8: CONGEST — top-two forwarding vs full forwarding", rows, "e8_congest.txt")
    assert all(row["identical"] for row in rows)
    # Top-two always fits two 4-word entries per edge per round.
    assert all(row["toptwo_peak_words"] <= 8 for row in rows)
    assert table
