"""Packaging for the Elkin–Neiman reproduction.

Metadata lives here (not in a ``pyproject.toml``) on purpose: a bare
``setup.py`` keeps ``pip install -e .`` on the legacy code path, which
needs no build isolation and therefore no network access — matching the
stdlib-only runtime story.  Package discovery is rooted under ``src/``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-strong-diameter-decomposition",
    version="0.2.0",
    description=(
        "Reproduction of Elkin & Neiman, 'Distributed Strong Diameter "
        "Network Decomposition' (PODC 2016): CSR graph kernel, CONGEST "
        "simulator, Theorems 1-3, baselines, applications, experiments."
    ),
    long_description=open("README.md", encoding="utf8").read(),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[],  # stdlib-only runtime; numpy is optional
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
        "docs": ["mkdocs"],
        "accel": ["numpy"],
    },
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    },
)
