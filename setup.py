"""Setuptools shim.

Kept so the package installs on environments without the ``wheel``
package (``python setup.py develop`` / legacy editable installs); all
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
