#!/usr/bin/env python3
"""Routing infrastructure from one decomposition: spanners and covers.

§1.1 of the paper lists the downstream uses of network decomposition
beyond symmetry breaking: sparse spanners (Dubhashi et al.) and
neighborhood covers for routing and synchronizers (Awerbuch–Peleg).
Both constructions need exactly what this paper provides — *strong*
diameter — and both are built here from a single Theorem 1 run:

* a cluster spanner: intra-cluster BFS trees + one edge per adjacent
  cluster pair, stretch ≤ 4D+1;
* a W-neighborhood cover: decompose G^{2W+1}, grow each cluster by W;
  every W-ball is inside some cluster and no vertex is in more than χ
  clusters.

Usage:
    python examples/routing_infrastructure.py [n] [p] [seed]
"""

from __future__ import annotations

import sys

import _bootstrap  # noqa: F401  (installed `repro` or the checkout's src/)

from repro.analysis import format_records
from repro.applications import build_cover, build_spanner
from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.errors import DecompositionError
from repro.graphs import erdos_renyi


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    p = float(sys.argv[2]) if len(sys.argv) > 2 else 0.12
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 5

    graph = erdos_renyi(n, p, seed=seed)
    print(f"graph: {graph}")

    decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=seed)
    print(f"decomposition: χ = {decomposition.num_colors}, "
          f"D = {decomposition.max_strong_diameter()}\n")

    # --- spanner ---------------------------------------------------------
    spanner = build_spanner(graph, decomposition)
    print(format_records(
        [
            {
                "edges kept": f"{spanner.num_edges}/{graph.num_edges}",
                "compression": f"{100 * spanner.num_edges / max(graph.num_edges, 1):.0f}%",
                "tree edges": spanner.tree_edges,
                "connectors": spanner.connector_edges,
                "stretch (measured)": spanner.max_stretch,
                "stretch bound 4D+1": spanner.stretch_bound,
            }
        ],
        title="cluster spanner",
    ))

    # A weak decomposition cannot build this at all:
    ls, _ = linial_saks.decompose(graph, k=4, seed=seed)
    if ls.disconnected_clusters():
        try:
            build_spanner(graph, ls)
        except DecompositionError as exc:
            print(f"\nLinial–Saks (weak) decomposition: spanner FAILS — {exc}")

    # --- neighborhood covers ----------------------------------------------
    rows = []
    for W in (1, 2):
        cover = build_cover(graph, radius=W, k=3, seed=seed)
        rows.append(
            {
                "W": W,
                "clusters": cover.num_clusters,
                "covers all W-balls": cover.covers_all_balls(graph),
                "max overlap": cover.max_overlap(graph),
                "overlap bound χ": cover.overlap_bound,
                "weakD": cover.max_weak_diameter(graph),
                "D bound": round(cover.diameter_bound, 1),
            }
        )
    print()
    print(format_records(rows, title="W-neighborhood covers (via G^{2W+1})"))


if __name__ == "__main__":
    main()
