#!/usr/bin/env python3
"""Explore the paper's diameter/colour trade-offs (Theorems 1, 2 and 3).

Sweeps k for Theorem 1 (diameter 2k-2, colours (cn)^{1/k}·ln(cn)) and
Theorem 2 (colours 4k(cn)^{1/k}), then inverts the trade-off with
Theorem 3 (λ colours, diameter 2(cn)^{1/λ}·ln(cn)).  Measured values are
printed next to the theoretical budgets.

Usage:
    python examples/tradeoff_explorer.py [n] [seed]
"""

from __future__ import annotations

import math
import sys

import _bootstrap  # noqa: F401  (installed `repro` or the checkout's src/)

from repro.analysis import format_records
from repro.core import (
    elkin_neiman,
    high_radius,
    staged,
    theorem1_bounds,
    theorem2_bounds,
    theorem3_bounds,
)
from repro.graphs import random_connected


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    graph = random_connected(n, 2.0 / n, seed=seed)
    print(f"graph: {graph}\n")

    # --- Theorem 1 and 2: sweep k ---------------------------------------
    rows = []
    k_max = math.ceil(math.log(n))
    for k in sorted({2, 3, 4, k_max}):
        d1, _ = elkin_neiman.decompose(graph, k=k, c=6.0, seed=seed)
        d2, _ = staged.decompose(graph, k=k, c=6.0, seed=seed)
        b1 = theorem1_bounds(n, k, 6.0)
        b2 = theorem2_bounds(n, k, 6.0)
        rows.append(
            {
                "k": k,
                "D bound": 2 * k - 2,
                "thm1 D": d1.max_strong_diameter(),
                "thm2 D": d2.max_strong_diameter(),
                "thm1 colors": f"{d1.num_colors} (≤{b1.colors:.0f})",
                "thm2 colors": f"{d2.num_colors} (≤{b2.colors:.0f})",
            }
        )
    print(format_records(rows, title="Theorems 1 & 2: radius k vs colours"))

    # --- Theorem 3: sweep lambda ----------------------------------------
    rows = []
    for lam in (1, 2, 3, 4):
        d3, trace = high_radius.decompose(graph, lam=lam, seed=seed)
        b3 = theorem3_bounds(n, lam, 4.0)
        rows.append(
            {
                "λ": lam,
                "colors": f"{d3.num_colors} (target {lam})",
                "strongD": d3.max_strong_diameter(),
                "D budget": round(b3.diameter, 1),
                "in budget": trace.exhausted_within_nominal,
            }
        )
    print()
    print(format_records(rows, title="Theorem 3: few colours, large diameter"))
    print(
        "\nreading: k (radius) buys fewer colours as it grows; Theorem 3 "
        "flips the axes — fix the colour count λ and pay diameter "
        "2(cn)^{1/λ}·ln(cn)."
    )


if __name__ == "__main__":
    main()
