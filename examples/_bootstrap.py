"""Shared ``sys.path`` bootstrap for the examples.

Every example starts with ``import _bootstrap  # noqa: F401`` (the
script's own directory is always on ``sys.path``, so this works from any
working directory).  Importing this module prefers an installed
``repro`` (``pip install -e .``) and falls back to the checkout's
``src/`` layout, so the examples run with zero setup either way.
"""

from __future__ import annotations

import pathlib
import sys

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
