#!/usr/bin/env python3
"""The paper's headline, demonstrated: strong vs weak diameter.

Linial–Saks (1993) computes a weak (O(log n), O(log n)) decomposition;
for 23 years it was open whether *strong* diameter could match it.  This
example runs both algorithms at the same parameters and shows:

1. LS clusters are frequently disconnected — their strong diameter is
   infinite even though their weak diameter obeys the 2k-2 bound;
2. Elkin–Neiman clusters are always connected with strong diameter 2k-2;
3. downstream cost: running MIS over the LS decomposition forces cluster
   records to be relayed by non-members (weak relay mode), while the EN
   decomposition pays zero relay overhead.

Usage:
    python examples/strong_vs_weak.py [n] [k] [seed]
"""

from __future__ import annotations

import sys

import _bootstrap  # noqa: F401  (installed `repro` or the checkout's src/)

from repro.analysis import format_records, report
from repro.applications import run_mis
from repro.applications.verify import is_maximal_independent_set
from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.graphs import erdos_renyi


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    graph = erdos_renyi(n, 4.0 / n, seed=seed)
    print(f"graph: {graph}, k = {k} (diameter bound 2k-2 = {2 * k - 2})\n")

    en, _ = elkin_neiman.decompose(graph, k=k, seed=seed)
    ls, _ = linial_saks.decompose(graph, k=k, seed=seed)

    rows = []
    for name, decomposition in (("Elkin-Neiman (strong)", en), ("Linial-Saks (weak)", ls)):
        q = report(decomposition)
        rows.append(
            {
                "algorithm": name,
                "colors": q.num_colors,
                "clusters": q.num_clusters,
                "strongD": q.max_strong_diameter,
                "weakD": q.max_weak_diameter,
                "disconnected": q.num_disconnected_clusters,
            }
        )
    print(format_records(rows, title="decomposition quality"))

    disconnected = ls.disconnected_clusters()
    if disconnected:
        cluster = disconnected[0]
        print(
            f"\nexample: LS cluster {cluster.index} (centre {cluster.center}) = "
            f"{sorted(cluster.vertices)} is NOT connected in the induced subgraph"
        )
    else:
        print("\n(no disconnected LS cluster at this seed — try another)")

    # Downstream cost: MIS over each decomposition.
    en_mis = run_mis(graph, en, relay_mode="strong", seed=seed)
    ls_mis = run_mis(graph, ls, relay_mode="weak", seed=seed)
    assert is_maximal_independent_set(graph, en_mis.independent_set)
    assert is_maximal_independent_set(graph, ls_mis.independent_set)

    print(format_records(
        [
            {
                "algorithm": "EN + strong relay",
                "MIS size": len(en_mis.independent_set),
                "rounds": en_mis.app.rounds,
                "nonmember relays": en_mis.app.relay_messages_nonmember,
            },
            {
                "algorithm": "LS + weak relay",
                "MIS size": len(ls_mis.independent_set),
                "rounds": ls_mis.app.rounds,
                "nonmember relays": ls_mis.app.relay_messages_nonmember,
            },
        ],
        title="\nMIS via colour-class scheduling",
    ))
    print(
        "\nstrong diameter means cluster traffic never leaves the cluster: "
        f"{en_mis.app.relay_messages_nonmember} vs "
        f"{ls_mis.app.relay_messages_nonmember} relayed records."
    )


if __name__ == "__main__":
    main()
