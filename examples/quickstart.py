#!/usr/bin/env python3
"""Quickstart: compute and inspect a strong-diameter network decomposition.

Runs the paper's Theorem 1 algorithm on a random graph, validates every
part of the (D, χ) guarantee, then re-runs it as a real message-passing
protocol and confirms the two agree bit-for-bit.

Usage:
    python examples/quickstart.py [n] [k] [seed]
"""

from __future__ import annotations

import sys

import _bootstrap  # noqa: F401  (installed `repro` or the checkout's src/)

from repro import decompose, decompose_distributed
from repro.analysis import format_records, report
from repro.graphs import random_connected


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 42

    graph = random_connected(n, 2.0 / n, seed=seed)
    print(f"graph: {graph}")

    # --- centralized reference -----------------------------------------
    decomposition, trace = decompose(graph, k=k, seed=seed)
    decomposition.validate()  # partition + proper supergraph colouring
    quality = report(decomposition)
    print(format_records([quality.row()], title=f"\nTheorem 1 decomposition (k={k})"))
    print(f"\nstrong diameter bound 2k-2 = {2 * k - 2}, "
          f"measured = {quality.max_strong_diameter}")
    print(f"colour budget λ = {trace.nominal_phases}, "
          f"measured colours = {quality.num_colors}")
    print(f"phases used = {trace.total_phases} "
          f"(within budget: {trace.exhausted_within_nominal})")
    print(f"Lemma-1 truncation events = {len(trace.truncation_events)}")

    # --- the actual distributed protocol --------------------------------
    result = decompose_distributed(graph, k=k, seed=seed, mode="toptwo")
    same = (
        result.decomposition.cluster_index_map() == decomposition.cluster_index_map()
    )
    print(f"\ndistributed run: {result.total_rounds} rounds, "
          f"{result.stats.messages_sent} messages, "
          f"peak {result.stats.max_words_per_edge_round} words/edge/round")
    print(f"distributed == centralized: {same}")

    # --- what the colours mean ------------------------------------------
    print("\nper-colour cluster counts:")
    for color in decomposition.colors[:10]:
        members = [c for c in decomposition.clusters if c.color == color]
        sizes = sorted((len(c) for c in members), reverse=True)
        print(f"  colour {color:3d}: {len(members):3d} clusters, sizes {sizes[:8]}")
    if len(decomposition.colors) > 10:
        print(f"  ... and {len(decomposition.colors) - 10} more colours")


if __name__ == "__main__":
    main()
