#!/usr/bin/env python3
"""Symmetry breaking via network decomposition (the paper's §1.1).

Given a (D, χ) decomposition, MIS, (Δ+1)-colouring and maximal matching
all run in O(D·χ) distributed rounds by processing colour classes in
sequence.  This example computes one decomposition of a grid and solves
all three problems on top of it, verifying every output independently.

Usage:
    python examples/symmetry_breaking.py [rows] [cols] [seed]
"""

from __future__ import annotations

import sys

import _bootstrap  # noqa: F401  (installed `repro` or the checkout's src/)

from repro.analysis import format_records
from repro.applications import run_coloring, run_matching, run_mis
from repro.applications.verify import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_vertex_coloring,
)
from repro.core import elkin_neiman
from repro.graphs import grid_graph


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 9
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 11

    graph = grid_graph(rows, cols)
    print(f"graph: {rows}x{cols} grid, {graph}")

    decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=seed)
    chi = decomposition.num_colors
    diameter = int(decomposition.max_strong_diameter())
    print(f"decomposition: χ = {chi}, D = {diameter} "
          f"→ round budget χ·(D+2) = {chi * (diameter + 2)}\n")

    mis = run_mis(graph, decomposition, seed=seed)
    ok_mis = is_maximal_independent_set(graph, mis.independent_set)

    coloring = run_coloring(graph, decomposition, seed=seed)
    ok_col = is_proper_vertex_coloring(
        graph, coloring.colors, max_colors=graph.max_degree() + 1
    )

    matching = run_matching(graph, k=3, seed=seed)
    ok_mat = is_maximal_matching(graph, matching.matching)

    print(format_records(
        [
            {
                "problem": "maximal independent set",
                "result": f"{len(mis.independent_set)} vertices",
                "rounds": mis.app.rounds,
                "verified": ok_mis,
            },
            {
                "problem": "(Δ+1)-colouring",
                "result": f"{coloring.num_colors_used} colours (Δ+1 = {graph.max_degree() + 1})",
                "rounds": coloring.app.rounds,
                "verified": ok_col,
            },
            {
                "problem": "maximal matching (MIS on L(G))",
                "result": f"{len(matching.matching)} edges",
                "rounds": matching.line_mis.app.rounds,
                "verified": ok_mat,
            },
        ],
        title="symmetry breaking via one decomposition",
    ))

    # Draw the MIS on the grid.
    print("\nMIS on the grid ('#' = selected):")
    for r in range(rows):
        line = "".join(
            "#" if r * cols + c in mis.independent_set else "." for c in range(cols)
        )
        print("  " + line)


if __name__ == "__main__":
    main()
