"""Unit tests for seed derivation and named random streams."""

from __future__ import annotations

import pytest

from repro.rng import DEFAULT_SEED, derive_seed, seed_prefix, spawn_seeds, stream


class TestSeedPrefix:
    def test_matches_derive_seed(self):
        derive = seed_prefix(7, "radius", 3)
        for v in (0, 1, 17, -4, "x", (1, 2)):
            assert derive(v) == derive_seed(7, "radius", 3, v)

    def test_multi_suffix_and_empty_prefix(self):
        assert seed_prefix(9)("a", 2) == derive_seed(9, "a", 2)
        assert seed_prefix(9, "a")(2, "b") == derive_seed(9, "a", 2, "b")
        assert seed_prefix(9)() == derive_seed(9)

    def test_prefix_reusable(self):
        derive = seed_prefix(1, "phase", 5)
        assert derive(10) == derive(10)
        assert derive(10) != derive(11)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)
        assert derive_seed(1) != derive_seed(2)

    def test_label_path_not_concatenation(self):
        # ("ab",) and ("a", "b") must differ (separator byte).
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_range(self):
        for root in (0, 1, -5, 2**80):
            assert 0 <= derive_seed(root, "x") < 2**63

    def test_known_stability(self):
        # Pin one value: changing the hash scheme must fail loudly, since
        # every recorded experiment depends on stream stability.
        assert derive_seed(0x5EED, "radius", 1, 0) == derive_seed(
            DEFAULT_SEED, "radius", 1, 0
        )


class TestStream:
    def test_same_stream_same_sequence(self):
        a = stream(7, "phase", 1)
        b = stream(7, "phase", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_differ(self):
        assert stream(7, "x").random() != stream(7, "y").random()


class TestSpawnSeeds:
    def test_count_and_uniqueness(self):
        seeds = spawn_seeds(3, 100, "node")
        assert len(seeds) == 100
        assert len(set(seeds)) == 100

    def test_prefix_stability(self):
        assert spawn_seeds(3, 5, "node") == spawn_seeds(3, 10, "node")[:5]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_zero_count(self):
        assert spawn_seeds(1, 0) == []
