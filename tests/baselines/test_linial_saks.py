"""Tests for the Linial–Saks baseline (centralized and distributed)."""

from __future__ import annotations

import math

import pytest

from repro.baselines import linial_saks
from repro.baselines.distributed_ls import decompose_distributed
from repro.baselines.linial_saks import ls_phase, sample_ls_radius
from repro.errors import ParameterError
from repro.graphs import (
    Graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected,
)


class TestRadiusSampling:
    def test_deterministic(self):
        assert sample_ls_radius(1, 2, 3, 0.5, 4) == sample_ls_radius(1, 2, 3, 0.5, 4)

    def test_within_cap(self):
        assert all(
            0 <= sample_ls_radius(7, 1, v, 0.6, 3) <= 3 for v in range(500)
        )

    def test_distribution_shape(self):
        # Pr[r >= 1] = p.
        p, k = 0.3, 5
        draws = [sample_ls_radius(11, 1, v, p, k) for v in range(8000)]
        frac = sum(1 for r in draws if r >= 1) / len(draws)
        assert frac == pytest.approx(p, abs=0.02)

    def test_cap_mass(self):
        # Pr[r = k] = p^k.
        p, k = 0.5, 2
        draws = [sample_ls_radius(13, 1, v, p, k) for v in range(8000)]
        frac = sum(1 for r in draws if r == k) / len(draws)
        assert frac == pytest.approx(p**k, abs=0.02)

    def test_validation(self):
        with pytest.raises(ParameterError):
            sample_ls_radius(1, 1, 1, 0.0, 3)
        with pytest.raises(ParameterError):
            sample_ls_radius(1, 1, 1, 1.0, 3)
        with pytest.raises(ParameterError):
            sample_ls_radius(1, 1, 1, 0.5, 0)


class TestLSPhase:
    def test_min_id_wins(self):
        g = path_graph(3)
        block, centers = ls_phase(g, set(g.vertices()), {0: 2, 1: 2, 2: 2})
        # Vertex 0 reaches everyone and is the minimum ID.  Vertex 2 sits
        # at distance exactly r_0 = 2: reached, so it selects 0, but not
        # *strictly* inside — it stays out of the block.
        assert block == {0, 1}
        assert centers == {0: 0, 1: 0}

    def test_strict_inequality_boundary(self):
        g = path_graph(3)
        block, centers = ls_phase(g, set(g.vertices()), {0: 1, 1: 0, 2: 0})
        # Vertex 1 is at distance 1 = r_0: reached but NOT strictly inside.
        assert 0 in block
        assert 1 not in block
        assert 2 not in block  # own radius 0: d(2,2)=0 not < 0

    def test_zero_radius_vertex_joins_nothing(self):
        g = Graph(1)
        block, _ = ls_phase(g, {0}, {0: 0})
        assert block == set()

    def test_inactive_vertex_rejected(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            ls_phase(g, {0, 1}, {0: 1, 2: 1})


class TestLSDecompose:
    def test_valid_weak_decomposition(self):
        g = erdos_renyi(100, 0.05, seed=2)
        k = 4
        decomposition, trace = linial_saks.decompose(g, k=k, seed=12)
        decomposition.validate(max_diameter=2 * k - 2, strong=False)
        assert trace.phases == len(trace.survivors)

    def test_weak_diameter_bound_always(self):
        for seed in range(4):
            g = erdos_renyi(60, 0.07, seed=seed)
            decomposition, _ = linial_saks.decompose(g, k=3, seed=seed)
            assert decomposition.max_weak_diameter() <= 2 * 3 - 2

    def test_produces_disconnected_clusters_somewhere(self):
        """The paper's motivation: LS clusters need not be connected."""
        found = 0
        for seed in range(6):
            g = erdos_renyi(80, 0.06, seed=seed)
            decomposition, _ = linial_saks.decompose(g, k=4, seed=seed)
            found += len(decomposition.disconnected_clusters())
        assert found > 0

    def test_deterministic(self):
        g = grid_graph(6, 6)
        a, _ = linial_saks.decompose(g, k=3, seed=5)
        b, _ = linial_saks.decompose(g, k=3, seed=5)
        assert a.cluster_index_map() == b.cluster_index_map()

    def test_clusters_are_center_balls(self):
        # LS clusters are center classes.  The center itself may belong to
        # a *different* cluster (a smaller ID may have claimed it), but
        # every member sits strictly inside the center's radius-<=k ball,
        # so it is within k-1 of the center in G.
        from repro.graphs import bfs_distances

        g = random_connected(50, 0.04, seed=3)
        k = 3
        decomposition, _ = linial_saks.decompose(g, k=k, seed=7)
        for cluster in decomposition.clusters:
            assert cluster.center is not None
            distances = bfs_distances(g, cluster.center)
            assert all(distances[v] <= k - 1 for v in cluster.vertices)

    def test_empty_graph(self):
        decomposition, trace = linial_saks.decompose(Graph(0), k=3)
        assert decomposition.num_clusters == 0
        assert trace.phases == 0

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            linial_saks.decompose(path_graph(3), k=0)
        with pytest.raises(ParameterError):
            linial_saks.decompose(path_graph(3), k=2, p=1.5)


class TestDistributedLS:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_centralized(self, seed):
        g = erdos_renyi(50, 0.08, seed=seed)
        central, _ = linial_saks.decompose(g, k=3, seed=seed)
        distributed = decompose_distributed(g, k=3, seed=seed)
        assert central.cluster_index_map() == distributed.decomposition.cluster_index_map()
        assert [c.center for c in central.clusters] == [
            c.center for c in distributed.decomposition.clusters
        ]

    def test_fixed_phase_length(self):
        g = cycle_graph(20)
        result = decompose_distributed(g, k=3, seed=9, adaptive_phase_length=False)
        assert all(r == 3 + 2 for r in result.rounds_per_phase)
        result.decomposition.validate(max_diameter=4, strong=False)

    def test_round_accounting(self):
        g = grid_graph(5, 5)
        result = decompose_distributed(g, k=3, seed=10)
        assert result.total_rounds == result.stats.rounds
        assert result.phases == len(result.rounds_per_phase)

    def test_validation(self):
        with pytest.raises(ParameterError):
            decompose_distributed(path_graph(3), k=0)
