"""Tests for the Miller–Peng–Xu partition (centralized and distributed)."""

from __future__ import annotations

import math

import pytest

from repro.baselines import mpx
from repro.baselines.distributed_mpx import partition_distributed
from repro.errors import ParameterError
from repro.graphs import (
    Graph,
    bfs_distances,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected,
    shortest_path,
    strong_diameter,
)


class TestSampleShifts:
    def test_deterministic(self):
        g = path_graph(5)
        assert mpx.sample_shifts(g, 0.5, seed=1) == mpx.sample_shifts(g, 0.5, seed=1)

    def test_bad_beta(self):
        with pytest.raises(ParameterError):
            mpx.sample_shifts(path_graph(3), 0.0)


class TestPartition:
    def test_is_partition(self):
        g = erdos_renyi(60, 0.08, seed=1)
        result = mpx.partition(g, beta=0.5, seed=2)
        result.decomposition.validate()
        assert set(result.center_of) == set(g.vertices())

    def test_clusters_connected(self):
        """MPX's strong-diameter property: every cluster is connected."""
        for seed in range(5):
            g = erdos_renyi(50, 0.07, seed=seed)
            result = mpx.partition(g, beta=0.6, seed=seed)
            for cluster in result.decomposition.clusters:
                assert not math.isinf(strong_diameter(g, cluster.vertices))

    def test_shortest_path_closure(self):
        """If y is assigned to u, every shortest u->y path vertex is too.

        For x on a shortest u->y path, δ_u − d(x,u) ≥ δ_w − d(x,w) for all
        w (triangle inequality through y), strictly outside measure-zero
        ties — so x's argmax is also u.
        """
        g = grid_graph(6, 6)
        result = mpx.partition(g, beta=0.7, seed=4)
        for y, u in result.center_of.items():
            path = shortest_path(g, u, y)
            assert path is not None
            for x in path:
                assert result.center_of[x] == u

    def test_assignment_is_argmax(self):
        g = random_connected(30, 0.05, seed=5)
        result = mpx.partition(g, beta=0.5, seed=5)
        for y in g.vertices():
            distances = bfs_distances(g, y)
            best = max(
                (result.shifts[u] - d for u, d in distances.items()),
                default=0.0,
            )
            chosen = result.center_of[y]
            got = result.shifts[chosen] - distances[chosen]
            assert got == pytest.approx(best)

    def test_cut_fraction_decreases_with_beta(self):
        g = erdos_renyi(80, 0.06, seed=6)
        fractions = [
            mpx.partition(g, beta=beta, seed=7).cut_fraction
            for beta in (2.0, 0.5, 0.1)
        ]
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_cut_fraction_bound_statistical(self):
        # E[cut fraction] <= O(beta); with constant 2 this is comfortable.
        g = erdos_renyi(100, 0.05, seed=8)
        beta = 0.3
        mean = sum(
            mpx.partition(g, beta=beta, seed=s).cut_fraction for s in range(10)
        ) / 10
        assert mean <= 2 * beta

    def test_diameter_scales_inverse_beta(self):
        g = path_graph(200)
        small = mpx.partition(g, beta=1.0, seed=9)
        large = mpx.partition(g, beta=0.05, seed=9)
        assert (
            large.decomposition.max_strong_diameter()
            > small.decomposition.max_strong_diameter()
        )

    def test_empty_graph(self):
        result = mpx.partition(Graph(0), beta=0.5)
        assert result.decomposition.num_clusters == 0
        assert result.cut_fraction == 0.0

    def test_explicit_shifts(self):
        g = path_graph(4)
        shifts = {0: 5.0, 1: 0.1, 2: 0.2, 3: 0.3}
        result = mpx.partition(g, beta=1.0, shifts=shifts)
        assert all(center == 0 for center in result.center_of.values())
        assert result.cut_edges == 0


class TestDistributedMPX:
    @pytest.mark.parametrize("mode", ["full", "topone"])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_centralized(self, mode, seed):
        g = erdos_renyi(50, 0.08, seed=seed)
        central = mpx.partition(g, beta=0.5, seed=seed)
        distributed = partition_distributed(g, beta=0.5, seed=seed, mode=mode)
        assert distributed.center_of == central.center_of
        assert distributed.cut_edges == central.cut_edges

    def test_topone_is_congest(self):
        g = erdos_renyi(60, 0.1, seed=3)
        result = partition_distributed(g, beta=0.4, seed=3, mode="topone", word_budget=4)
        assert result.stats.max_words_per_edge_round <= 4

    def test_single_shot_round_count(self):
        g = cycle_graph(30)
        result = partition_distributed(g, beta=0.5, seed=5)
        assert result.rounds == result.stats.rounds

    def test_invalid_mode(self):
        with pytest.raises(ParameterError):
            partition_distributed(path_graph(3), beta=0.5, mode="nope")  # type: ignore[arg-type]

    def test_invalid_beta(self):
        with pytest.raises(ParameterError):
            partition_distributed(path_graph(3), beta=-1.0)
