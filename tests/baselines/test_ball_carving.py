"""Tests for the deterministic ball-carving baseline."""

from __future__ import annotations

import math

import pytest

from repro.baselines import ball_carving
from repro.baselines.ball_carving import greedy_color
from repro.errors import ParameterError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
)


class TestGreedyColor:
    def test_path_two_colors(self):
        assert max(greedy_color(path_graph(6))) <= 1

    def test_complete_needs_n(self):
        colors = greedy_color(complete_graph(5))
        assert sorted(colors) == [0, 1, 2, 3, 4]

    def test_proper(self, zoo_graph):
        colors = greedy_color(zoo_graph)
        for u, v in zoo_graph.edges():
            assert colors[u] != colors[v]

    def test_at_most_delta_plus_one(self, zoo_graph):
        colors = greedy_color(zoo_graph)
        if colors:
            assert max(colors) + 1 <= zoo_graph.max_degree() + 1


class TestBallCarving:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_strong_diameter_bound(self, k):
        g = erdos_renyi(80, 0.06, seed=3)
        decomposition, trace = ball_carving.decompose(g, k=k)
        decomposition.validate(max_diameter=2 * k - 2, strong=True)
        assert trace.max_radius <= k - 1

    def test_deterministic(self):
        g = grid_graph(7, 7)
        a, _ = ball_carving.decompose(g, k=3)
        b, _ = ball_carving.decompose(g, k=3)
        assert a.cluster_index_map() == b.cluster_index_map()

    def test_k1_gives_singletons(self):
        g = cycle_graph(10)
        decomposition, _ = ball_carving.decompose(g, k=1)
        assert decomposition.num_clusters == 10
        assert decomposition.max_strong_diameter() == 0

    def test_large_k_engulfs_components(self):
        g = path_graph(20)
        decomposition, _ = ball_carving.decompose(g, k=30)
        # threshold ~ 1: balls grow until expansion stalls; a path's ball
        # grows by <= 2 per step so carving stops early — but k is a cap,
        # and the decomposition stays valid.
        decomposition.validate()

    def test_complete_graph_one_cluster(self):
        g = complete_graph(12)
        decomposition, _ = ball_carving.decompose(g, k=2)
        # B(v, 1) = everything; growth check: 12 > sqrt(12)*1 so it grows
        # once, then B(2) = B(1) stops it.
        assert decomposition.num_clusters == 1

    def test_star_graph(self):
        decomposition, _ = ball_carving.decompose(star_graph(20), k=2)
        decomposition.validate(max_diameter=2, strong=True)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ball_carving.decompose(path_graph(3), k=0)

    def test_empty_graph(self):
        decomposition, trace = ball_carving.decompose(Graph(0), k=2)
        assert decomposition.num_clusters == 0
        assert trace.radii == []

    def test_trace_radii_one_per_cluster(self):
        g = erdos_renyi(40, 0.1, seed=4)
        decomposition, trace = ball_carving.decompose(g, k=3)
        assert len(trace.radii) == decomposition.num_clusters
