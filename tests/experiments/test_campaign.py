"""Campaign model: registry, grids, sharding, planning, keyed rows."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments import (
    CAMPAIGNS,
    ALGORITHMS,
    Campaign,
    CampaignJournal,
    CampaignMember,
    ResultCache,
    SCENARIOS,
    campaign_names,
    campaign_rows,
    get_campaign,
    grid_points,
    plan_campaign,
    run_campaign,
    run_experiment,
)


class TestGridPoints:
    def test_cartesian_product(self):
        points = grid_points(("a:1", "b:2"), algo=("en", "ls"), k=3)
        assert len(points) == 4
        assert points[0].graph == "a:1"
        assert dict(points[0].params) == {"algo": "en", "k": 3}
        assert dict(points[1].params) == {"algo": "ls", "k": 3}
        assert points[2].graph == "b:2"

    def test_scalars_are_singletons(self):
        points = grid_points(("g:1",), k=4, c=2.0)
        assert len(points) == 1
        assert dict(points[0].params) == {"k": 4, "c": 2.0}

    def test_empty_rejected(self):
        with pytest.raises(ParameterError, match="graph spec"):
            grid_points(())
        with pytest.raises(ParameterError, match="no values"):
            grid_points(("g:1",), k=())


class TestRegistry:
    def test_names_sorted(self):
        assert campaign_names() == sorted(CAMPAIGNS)

    def test_unknown_campaign(self):
        with pytest.raises(ParameterError, match="unknown campaign"):
            get_campaign("nope")

    def test_members_reference_real_scenarios_and_adapters(self):
        for name, campaign in CAMPAIGNS.items():
            for member in campaign.members:
                if member.scenario is not None:
                    assert member.scenario in SCENARIOS, (name, member.name)
                else:
                    assert member.algorithm in ALGORITHMS, (name, member.name)

    def test_member_validation(self):
        with pytest.raises(ParameterError, match="exactly one"):
            CampaignMember(name="x")
        with pytest.raises(ParameterError, match="exactly one"):
            CampaignMember(name="x", scenario="smoke", algorithm="en")
        with pytest.raises(ParameterError, match="no points"):
            CampaignMember(name="x", algorithm="en")
        with pytest.raises(ParameterError, match="grid points"):
            CampaignMember(
                name="x", scenario="smoke", points=grid_points(("g:1",))
            )

    def test_campaign_validation(self):
        member = CampaignMember(name="a", scenario="smoke")
        with pytest.raises(ParameterError, match="no members"):
            Campaign(description="d", members=())
        with pytest.raises(ParameterError, match="duplicate"):
            Campaign(description="d", members=(member, member))

    def test_scenario_member_inherits_registry_definition(self):
        member = CampaignMember(name="runtime", scenario="smoke")
        spec = member.spec(root_seed=7)
        scenario = SCENARIOS["smoke"]
        assert spec.points == scenario.points
        assert spec.algorithm == scenario.algorithm
        assert spec.trials == scenario.trials
        assert spec.root_seed == 7

    def test_trials_override_precedence(self):
        member = CampaignMember(name="runtime", scenario="smoke", trials=5)
        assert member.spec(root_seed=1).trials == 5
        assert member.spec(root_seed=1, trials=9).trials == 9


class TestPlanning:
    def test_plan_expands_all_members(self):
        plan = plan_campaign("campaign-smoke")
        assert [p.member.name for p in plan.members] == ["runtime", "race"]
        assert plan.num_trials == 8

    def test_config_hash_is_stable_and_sensitive(self):
        a = plan_campaign("campaign-smoke")
        b = plan_campaign("campaign-smoke")
        assert a.config_hash == b.config_hash
        assert plan_campaign("campaign-smoke", trials=2).config_hash != a.config_hash

    def test_bad_shard_and_trials(self):
        with pytest.raises(ParameterError, match="shard"):
            plan_campaign("campaign-smoke", shard=(2, 2))
        with pytest.raises(ParameterError, match="shard"):
            plan_campaign("campaign-smoke", shard=(0, 0))
        with pytest.raises(ParameterError, match="trials"):
            plan_campaign("campaign-smoke", trials=0)

    def test_shards_partition_trials(self):
        full = plan_campaign("campaign-smoke")
        all_keys = {
            t.key() for member in full.members for t in member.trials
        }
        shard_keys: list[set] = []
        for index in range(3):
            shard = plan_campaign("campaign-smoke", shard=(index, 3))
            keys = {t.key() for member in shard.members for t in member.trials}
            shard_keys.append(keys)
        union = set().union(*shard_keys)
        assert union == all_keys
        assert sum(len(k) for k in shard_keys) == len(all_keys)  # disjoint

    def test_shard_assignment_is_stable(self):
        first = plan_campaign("campaign-smoke", shard=(1, 3))
        second = plan_campaign("campaign-smoke", shard=(1, 3))
        assert [t.key() for m in first.members for t in m.trials] == [
            t.key() for m in second.members for t in m.trials
        ]


class TestRowsAndEquivalence:
    def _outcome(self, tmp_path, name="campaign-smoke", **kwargs):
        plan = plan_campaign(name, **kwargs)
        cache = ResultCache(tmp_path / "cache")
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        return run_campaign(plan, cache=cache, journal=journal)

    def test_rows_are_keyed_and_point_aligned(self, tmp_path):
        outcome = self._outcome(tmp_path)
        rows = campaign_rows(outcome)
        assert len(rows) == 7  # 1 runtime point + 6 race points
        keys = [row["key"] for row in rows]
        assert len(set(keys)) == len(keys)
        race = [row for row in rows if row["member"] == "race"]
        assert all(row["graph"] == "gnp_fast:64:0.08" for row in race)
        assert {(row["params"]["algo"], row["params"]["backend"]) for row in race} == {
            (algo, backend)
            for algo in ("en", "ls", "mpx")
            for backend in ("sync", "batch")
        }
        for row in race:
            assert "rounds" in row["metrics"]
            assert "messages" in row["metrics"]
            # identity never leaks into the metrics block
            assert "algo" not in row["metrics"]
            assert "graph" not in row["metrics"]

    def test_campaign_matches_direct_runner(self, tmp_path):
        """The campaign layer adds bookkeeping, not semantics: a member's
        assembled records equal a plain run_experiment of its spec."""
        outcome = self._outcome(tmp_path)
        for member_plan, result in outcome.members:
            direct = run_experiment(member_plan.spec)
            assert result.records == direct.records

    def test_sharded_rows_are_subset_of_full_rows(self, tmp_path):
        full = self._outcome(tmp_path / "full")
        by_key = {}
        for index in range(2):
            shard = self._outcome(
                tmp_path / f"shard{index}", shard=(index, 2)
            )
            for row in campaign_rows(shard):
                by_key.setdefault(row["key"], []).append(row)
        full_rows = {row["key"]: row for row in campaign_rows(full)}
        # Row keys are shard-independent, and the shards' trial counts
        # add back up to the full run's per-point counts.
        assert set(by_key) <= set(full_rows)
        for key, rows in by_key.items():
            assert sum(row["trials"] for row in rows) == full_rows[key]["trials"]


class TestFailureCapture:
    def test_failed_trials_are_journaled_and_reported(self, tmp_path):
        campaign = Campaign(
            description="failing",
            members=(
                CampaignMember(
                    name="bad",
                    algorithm="shootout",
                    # beta <= 0 raises ParameterError inside the adapter
                    points=grid_points(("gnp_fast:16:0.2",), algo="mpx", beta=-1.0),
                    trials=1,
                ),
            ),
        )
        plan = plan_campaign("failing", campaign=campaign)
        cache = ResultCache(tmp_path / "cache")
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        outcome = run_campaign(plan, cache=cache, journal=journal)
        assert len(outcome.failures) == 1
        assert "beta" in (outcome.failures[0].error or "")
        _, entries = journal.read()
        [entry] = entries.values()
        assert not entry.ok
        # Resume does not re-run journaled failures.
        again = run_campaign(plan, cache=cache, journal=journal, resume=True)
        assert again.executed == 0
        assert len(again.failures) == 1

    def test_parallel_equals_serial(self, tmp_path):
        serial = plan_campaign("campaign-smoke")
        cache_a = ResultCache(tmp_path / "a" / "cache")
        journal_a = CampaignJournal(tmp_path / "a" / "journal.jsonl")
        one = run_campaign(serial, cache=cache_a, journal=journal_a, workers=1)
        cache_b = ResultCache(tmp_path / "b" / "cache")
        journal_b = CampaignJournal(tmp_path / "b" / "journal.jsonl")
        two = run_campaign(serial, cache=cache_b, journal=journal_b, workers=2)
        assert campaign_rows(one) == campaign_rows(two)
