"""Scenario registry, adapters and aggregation over a real tiny run."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.experiments import (
    ALGORITHMS,
    SCENARIOS,
    aggregate_experiment,
    aggregate_trials,
    build_experiment,
    confidence_interval,
    get_scenario,
    mean_curve,
    per_trial_rows,
    quantile,
    run_experiment,
    scenario_names,
)


class TestRegistry:
    def test_expected_scenarios_present(self):
        names = scenario_names()
        for required in (
            "er-sweep",
            "grid-vs-tree",
            "strong-vs-weak",
            "high-radius",
            "congest-rounds",
            "kernel-scaling",
            "engine-scaling",
            "oracle-scaling",
            "smoke",
        ):
            assert required in names

    def test_every_scenario_uses_a_registered_algorithm(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.algorithm in ALGORITHMS, name
            assert scenario.points, name
            assert scenario.description, name

    def test_engine_adapter_cross_validates_against_sync(self):
        from repro.experiments.spec import TrialSpec
        from repro.experiments.adapters import run_trial

        trial = TrialSpec(
            algorithm="engine",
            graph="conn:48:0.04",
            params=(("k", 3), ("compare", "sync")),
            seed=11,
            graph_seed=11,
            index=0,
        )
        record = run_trial(trial)
        assert record["matches_sync"] is True
        assert record["checksum"] == run_trial(trial)["checksum"]  # deterministic
        assert record["rounds"] > 0 and record["messages"] > 0

    def test_oracle_adapter_validates_stretch_and_is_deterministic(self):
        from repro.experiments.spec import TrialSpec
        from repro.experiments.adapters import run_trial

        trial = TrialSpec(
            algorithm="oracle",
            graph="gnp_fast:160:0.03",
            params=(("queries", 256), ("check", 48)),
            seed=19,
            graph_seed=19,
            index=0,
        )
        record = run_trial(trial)
        assert record["stretch_ok"] is True
        assert record["scales"] >= 1
        assert record["queries"] == 256
        assert record["checksum"] == run_trial(trial)["checksum"]

    def test_oracle_adapter_checksum_is_backend_independent(self, monkeypatch):
        from repro.experiments.spec import TrialSpec
        from repro.experiments.adapters import run_trial
        from repro.graphs import _kernel

        trial = TrialSpec(
            algorithm="oracle",
            graph="torus:12:12",
            params=(("queries", 200), ("check", 24)),
            seed=7,
            graph_seed=7,
            index=0,
        )
        with_numpy = run_trial(trial)
        monkeypatch.setattr(_kernel, "USE_NUMPY", False)
        assert run_trial(trial) == with_numpy

    def test_unknown_scenario_raises(self):
        with pytest.raises(ParameterError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_build_experiment_overrides(self):
        spec = build_experiment("smoke", trials=7, root_seed=123)
        assert spec.trials == 7
        assert spec.root_seed == 123
        assert spec.name == "smoke"

    def test_build_experiment_defaults(self):
        scenario = get_scenario("er-sweep")
        spec = build_experiment("er-sweep")
        assert spec.trials == scenario.trials
        assert spec.root_seed == scenario.root_seed


class TestSmokeScenarioEndToEnd:
    def test_smoke_runs_and_aggregates(self):
        result = run_experiment(build_experiment("smoke", trials=3))
        assert not result.failures
        rows = aggregate_experiment(result)
        assert len(rows) == 1
        row = rows[0]
        assert row["graph"] == "er:24:0.2"
        assert row["trials"] == 3
        assert row["n"] == 24
        # EN clusters are always connected (finite strong diameter);
        # the 2k-2 bound itself is probabilistic, so don't pin it here.
        assert row["disconnected"] == 0
        strong = row.get("strong_diameter", row.get("strong_diameter_max"))
        assert strong is not None and strong >= 0

    def test_per_trial_rows(self):
        result = run_experiment(build_experiment("smoke", trials=2))
        rows = per_trial_rows(result)
        assert len(rows) == 2
        assert [row["trial"] for row in rows] == [0, 1]
        assert all(row["cached"] is False for row in rows)


class TestAggregation:
    def test_quantile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        assert quantile(values, 0.5) == 2.5

    def test_quantile_validation(self):
        with pytest.raises(ParameterError):
            quantile([], 0.5)
        with pytest.raises(ParameterError):
            quantile([1.0], 1.5)

    def test_confidence_interval(self):
        assert confidence_interval([3.0]) == 0.0
        values = [1.0, 2.0, 3.0, 4.0]
        expected = 1.96 * math.sqrt(5.0 / 3.0) / 2.0
        assert confidence_interval(values) == pytest.approx(expected)

    def test_mean_curve_pads_short_runs_with_zero(self):
        assert mean_curve([[4.0, 2.0], [2.0]]) == [3.0, 1.0]
        assert mean_curve([]) == []

    def test_aggregate_trials_generic(self):
        records = [
            {"n": 10, "rounds": 4, "ok": True},
            {"n": 10, "rounds": 6, "ok": False},
            {"n": 20, "rounds": 8, "ok": True},
        ]
        rows = aggregate_trials(records, group_by=["n"])
        assert rows[0]["n"] == 10 and rows[0]["trials"] == 2
        assert rows[0]["rounds_mean"] == 5.0
        assert rows[0]["ok_frac"] == 0.5
        assert rows[1]["ok_frac"] == 1.0

    def test_aggregate_trials_constant_metric_collapses(self):
        records = [{"n": 10, "bound": 4}, {"n": 10, "bound": 4}]
        rows = aggregate_trials(records, group_by=["n"])
        assert rows[0]["bound"] == 4
        assert "bound_mean" not in rows[0]

    def test_aggregate_trials_validation(self):
        with pytest.raises(ParameterError, match="group_by"):
            aggregate_trials([{"a": 1}], group_by=[])
        with pytest.raises(ParameterError, match="missing group column"):
            aggregate_trials([{"a": 1}], group_by=["b"])
        assert aggregate_trials([], group_by=["a"]) == []
