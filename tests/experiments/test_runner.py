"""Runner semantics: determinism, parallel equivalence, failure capture."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments import (
    ExperimentPoint,
    ExperimentSpec,
    ResultCache,
    aggregate_experiment,
    run_experiment,
    run_trial,
)
from repro.experiments.spec import TrialSpec


def er_spec(trials: int = 4, **overrides) -> ExperimentSpec:
    defaults = dict(
        name="unit-er",
        algorithm="en",
        points=(ExperimentPoint.of("er:24:0.2", k=3),),
        trials=trials,
        root_seed=11,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSerialExecution:
    def test_all_trials_produce_records(self):
        result = run_experiment(er_spec())
        assert len(result.records) == 4
        assert not result.failures
        assert result.cache_hits == 0 and result.executed == 4

    def test_rerun_is_identical(self):
        first = run_experiment(er_spec())
        second = run_experiment(er_spec())
        assert first.records == second.records

    def test_run_trial_matches_runner(self):
        spec = er_spec(trials=1)
        [trial] = spec.trial_specs()
        assert run_trial(trial) == run_experiment(spec).records[0]

    def test_negative_workers_rejected(self):
        with pytest.raises(ParameterError, match="workers"):
            run_experiment(er_spec(), workers=-1)


class TestParallelEquivalence:
    def test_parallel_equals_serial_records_and_aggregates(self):
        spec = er_spec(trials=6)
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=2)
        assert serial.records == parallel.records
        assert aggregate_experiment(serial) == aggregate_experiment(parallel)

    def test_parallel_equals_serial_with_explicit_chunksize(self):
        spec = er_spec(trials=5)
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=3, chunksize=1)
        assert serial.records == parallel.records


class TestCacheIntegration:
    def test_second_run_all_hits_no_reruns(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = er_spec()
        cold = run_experiment(spec, cache=cache)
        assert cold.cache_hits == 0 and cold.executed == 4
        warm = run_experiment(spec, cache=cache)
        assert warm.cache_hits == 4 and warm.executed == 0
        assert warm.records == cold.records

    def test_growing_trials_only_computes_new_ones(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(er_spec(trials=3), cache=cache)
        grown = run_experiment(er_spec(trials=5), cache=cache)
        assert grown.cache_hits == 3 and grown.executed == 2

    def test_parallel_run_fills_cache_serial_reads_it(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = er_spec(trials=4)
        parallel = run_experiment(spec, workers=2, cache=cache)
        warm = run_experiment(spec, workers=1, cache=cache)
        assert warm.cache_hits == 4
        assert warm.records == parallel.records


class TestFailureCapture:
    def test_bad_trial_does_not_kill_sweep(self):
        spec = er_spec(trials=1, algorithm="no-such-algorithm")
        result = run_experiment(spec)
        assert len(result.failures) == 1
        assert "no-such-algorithm" in result.failures[0].error
        assert result.records == []
        with pytest.raises(RuntimeError, match="1/1 trials"):
            result.raise_on_failure()

    def test_failed_trials_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = er_spec(trials=2, algorithm="no-such-algorithm")
        run_experiment(spec, cache=cache)
        assert len(cache) == 0

    def test_mixed_failure_positions_preserved(self, monkeypatch, tmp_path):
        # Seed the cache with one good record, then fail the rest: the
        # result list must keep spec order with holes only where trials
        # actually failed.
        cache = ResultCache(tmp_path)
        spec = er_spec(trials=3)
        trials = spec.trial_specs()
        cache.put(trials[1], {"colors": 99})
        import repro.experiments.runner as runner_module

        def boom(trial: TrialSpec):
            raise ValueError(f"boom on {trial.index}")

        monkeypatch.setattr(runner_module, "run_trial", boom)
        result = run_experiment(spec, cache=cache)
        assert [r.from_cache for r in result.results] == [False, True, False]
        assert [r.ok for r in result.results] == [False, True, False]
        assert "boom" in result.failures[0].error
