"""The perf-baseline comparison gate: tolerances, drift, environments."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.experiments import (
    CampaignJournal,
    ResultCache,
    campaign_payload,
    compare_paths,
    load_artifact,
    parse_tolerances,
    plan_campaign,
    run_campaign,
)
from repro.experiments.compare import metric_policy

ENV = {
    "python": "3.11.8",
    "implementation": "CPython",
    "platform": "Linux-x",
    "numpy": "2.4.6",
    "kernel_backend": "numpy",
    "git_sha": "abc1234",
}


def bench_artifact(tmp_path, name, **overrides):
    """A minimal benchmark-table artifact with one timed workload."""
    payload = {
        "benchmark": "oracle",
        "rows": [
            {
                "workload": "gnp_fast:4096",
                "build s": 10.0,
                "batch s": 0.5,
                "oracle q/s": 100_000,
                "checksum": 424_242,
            }
        ],
        "environment": dict(ENV),
    }
    for dotted, value in overrides.items():
        target = payload
        *parents, leaf = dotted.split(".")
        for part in parents:
            key = int(part) if part.isdigit() else part
            target = target[key]
        target[leaf] = value
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf8")
    return path


class TestMetricPolicy:
    def test_timing_metrics_are_lower_better(self):
        assert metric_policy("build s")[0] == "lower"
        assert metric_policy("batch_seconds")[0] == "lower"
        assert metric_policy("query_time_ms")[0] == "lower"

    def test_throughput_metrics_are_higher_better(self):
        assert metric_policy("oracle q/s")[0] == "higher"
        assert metric_policy("speedup")[0] == "higher"

    def test_millisecond_columns_are_timing(self):
        # bench_kernel emits "legacy ms" / "csr ms" columns
        assert metric_policy("legacy ms")[0] == "lower"
        assert metric_policy("csr ms")[0] == "lower"
        assert metric_policy("batch_ms")[0] == "lower"

    def test_everything_else_is_exact(self):
        for name in ("rounds", "messages", "words", "checksum", "colors"):
            assert metric_policy(name)[0] == "exact"

    def test_exact_name_override_beats_glob(self):
        tolerances = {"rounds*": 0.5, "rounds": 0.05}
        assert metric_policy("rounds", tolerances)[1] == 0.05
        assert metric_policy("rounds_mean", tolerances)[1] == 0.5

    def test_override_opts_into_banded_comparison(self):
        direction, tolerance = metric_policy("rounds", {"rounds": 0.25})
        assert direction == "lower" and tolerance == 0.25
        direction, tolerance = metric_policy("build s", {"build*": 0.5})
        assert direction == "lower" and tolerance == 0.5

    def test_parse_tolerances(self):
        assert parse_tolerances(["a=0.1", "b*=0.5"]) == {"a": 0.1, "b*": 0.5}
        for bad in ("a", "a=x", "=0.1", "a=-1"):
            with pytest.raises(ParameterError, match="tolerance"):
                parse_tolerances([bad])


class TestCompareBenchArtifacts:
    def test_self_compare_is_clean(self, tmp_path):
        path = bench_artifact(tmp_path, "a.json")
        report = compare_paths(path, path)
        assert report.exit_code == 0
        assert report.findings == []
        assert report.compared_rows == 1

    def test_twenty_percent_slowdown_fails(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        slow = bench_artifact(tmp_path, "slow.json", **{"rows.0.build s": 12.0})
        report = compare_paths(base, slow)
        assert report.exit_code == 1
        [finding] = report.failures
        assert finding.status == "regressed" and finding.metric == "build s"

    def test_small_change_within_tolerance_passes(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        near = bench_artifact(tmp_path, "near.json", **{"rows.0.build s": 10.5})
        assert compare_paths(base, near).exit_code == 0

    def test_throughput_drop_fails_gain_is_improvement(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        slow = bench_artifact(tmp_path, "slow.json", **{"rows.0.oracle q/s": 80_000})
        report = compare_paths(base, slow)
        assert report.exit_code == 1
        fast = bench_artifact(tmp_path, "fast.json", **{"rows.0.oracle q/s": 150_000})
        report = compare_paths(base, fast)
        assert report.exit_code == 0
        assert [f.status for f in report.findings] == ["improved"]

    def test_deterministic_drift_fails(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        drift = bench_artifact(tmp_path, "drift.json", **{"rows.0.checksum": 1})
        report = compare_paths(base, drift)
        assert report.exit_code == 1
        [finding] = report.failures
        assert finding.status == "drift"

    def test_tolerance_override_loosens_gate(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        slow = bench_artifact(tmp_path, "slow.json", **{"rows.0.build s": 12.0})
        report = compare_paths(base, slow, tolerances={"build s": 0.25})
        assert report.exit_code == 0

    def test_environment_mismatch_downgrades_to_warning(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        other_env = bench_artifact(
            tmp_path, "other.json",
            **{"rows.0.build s": 12.0, "environment.python": "3.12.1"},
        )
        report = compare_paths(base, other_env)
        assert report.exit_code == 0
        assert not report.environment_matches
        statuses = {finding.status for finding in report.findings}
        assert statuses == {"warning"}

    def test_environment_mismatch_still_enforces_determinism(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        other = bench_artifact(
            tmp_path, "other.json",
            **{"rows.0.checksum": 1, "environment.python": "3.12.1"},
        )
        assert compare_paths(base, other).exit_code == 1

    def test_git_sha_alone_is_not_a_mismatch(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        next_pr = bench_artifact(
            tmp_path, "next.json", **{"environment.git_sha": "def5678"}
        )
        report = compare_paths(base, next_pr)
        assert report.environment_matches

    def test_strict_env_fails_on_mismatch(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        other = bench_artifact(
            tmp_path, "other.json", **{"environment.python": "3.12.1"}
        )
        assert compare_paths(base, other, strict_env=True).exit_code == 1

    def test_rows_on_one_side_only_warn(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        extra = json.loads((tmp_path / "base.json").read_text())
        extra["rows"].append({"workload": "torus:48:48", "build s": 3.0})
        (tmp_path / "extra.json").write_text(json.dumps(extra), encoding="utf8")
        report = compare_paths(base, tmp_path / "extra.json")
        assert report.exit_code == 0
        assert [f.status for f in report.findings] == ["warning"]

    def test_disjoint_artifacts_are_an_error(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        other = bench_artifact(tmp_path, "other.json", **{"rows.0.workload": "x"})
        with pytest.raises(ParameterError, match="no comparable rows"):
            compare_paths(base, other)

    def test_multiple_rows_per_workload_do_not_collapse(self, tmp_path):
        """Benchmark tables carry several rows per workload (op column);
        all string columns are identity, so none shadow each other."""
        payload = {
            "benchmark": "kernel",
            "rows": [
                {"workload": "er", "op": "bfs", "new s": 1.0},
                {"workload": "er", "op": "levels", "new s": 2.0},
            ],
            "environment": dict(ENV),
        }
        path = tmp_path / "k.json"
        path.write_text(json.dumps(payload), encoding="utf8")
        assert len(load_artifact(path).rows) == 2
        slow = json.loads(json.dumps(payload))
        slow["rows"][0]["new s"] = 1.3  # first op regresses, second doesn't
        slow_path = tmp_path / "k-slow.json"
        slow_path.write_text(json.dumps(slow), encoding="utf8")
        report = compare_paths(path, slow_path)
        assert report.exit_code == 1
        [finding] = report.failures
        assert "bfs" in finding.label

    def test_dropped_metric_warns_instead_of_passing_silently(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        payload = json.loads((tmp_path / "base.json").read_text())
        del payload["rows"][0]["checksum"]
        (tmp_path / "nochk.json").write_text(json.dumps(payload), encoding="utf8")
        report = compare_paths(base, tmp_path / "nochk.json")
        assert report.exit_code == 0
        [finding] = report.findings
        assert finding.status == "warning" and finding.metric == "checksum"
        assert "missing from current" in finding.detail
        # ...and symmetrically: a metric only in current warns too.
        report = compare_paths(tmp_path / "nochk.json", base)
        [finding] = report.findings
        assert finding.status == "warning" and finding.metric == "checksum"
        assert "missing from baseline" in finding.detail

    def test_per_trial_bench_artifacts_ignore_cache_accounting(
        self, tmp_path, capsys
    ):
        """Warm and cold --per-trial runs differ only in the 'cached'
        bookkeeping column, which must not trip the gate."""
        cache_dir = str(tmp_path / "cache")
        cold, warm = tmp_path / "cold.json", tmp_path / "warm.json"
        argv = ["bench", "smoke", "--per-trial", "--cache-dir", cache_dir]
        assert main(argv + ["--json", str(cold)]) == 0
        assert main(argv + ["--json", str(warm)]) == 0
        capsys.readouterr()
        report = compare_paths(cold, warm)
        assert report.exit_code == 0
        assert report.findings == []
        assert report.compared_rows == 2

    def test_unrecognised_artifact_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"stuff": 1}), encoding="utf8")
        with pytest.raises(ParameterError, match="unrecognised"):
            load_artifact(path)
        path.write_text("not json", encoding="utf8")
        with pytest.raises(ParameterError, match="not valid JSON"):
            load_artifact(path)


class TestCompareCampaignArtifacts:
    def _artifact(self, tmp_path, name):
        plan = plan_campaign("campaign-smoke")
        cache = ResultCache(tmp_path / name / "cache")
        journal = CampaignJournal(tmp_path / name / "journal.jsonl")
        outcome = run_campaign(plan, cache=cache, journal=journal)
        path = tmp_path / f"{name}.json"
        path.write_text(
            json.dumps(campaign_payload(outcome), default=str), encoding="utf8"
        )
        return path

    def test_campaign_self_compare_clean(self, tmp_path):
        a = self._artifact(tmp_path, "a")
        b = self._artifact(tmp_path, "b")
        report = compare_paths(a, b)
        assert report.exit_code == 0
        assert report.compared_rows == 7
        assert report.findings == []

    def test_campaign_drift_detected(self, tmp_path):
        a = self._artifact(tmp_path, "a")
        payload = json.loads(a.read_text())
        payload["rows"][2]["metrics"]["rounds"] += 1
        b = tmp_path / "b.json"
        b.write_text(json.dumps(payload), encoding="utf8")
        report = compare_paths(a, b)
        assert report.exit_code == 1
        [finding] = report.failures
        assert finding.metric == "rounds" and finding.status == "drift"

    def test_cli_compare_exit_codes(self, tmp_path, capsys):
        a = self._artifact(tmp_path, "a")
        assert main([
            "campaign", "compare", str(a), "--baseline", str(a)
        ]) == 0
        assert "OK" in capsys.readouterr().out
        payload = json.loads(a.read_text())
        payload["rows"][0]["metrics"]["colors_mean"] += 1.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload), encoding="utf8")
        assert main([
            "campaign", "compare", str(bad), "--baseline", str(a)
        ]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "colors_mean" in out

    def test_bench_json_artifact_is_comparable(self, tmp_path, capsys):
        """`bench --json` output feeds straight into the gate."""
        path = tmp_path / "bench.json"
        assert main(["bench", "smoke", "--no-cache", "--json", str(path)]) == 0
        capsys.readouterr()
        assert main([
            "campaign", "compare", str(path), "--baseline", str(path)
        ]) == 0
        report = compare_paths(path, path)
        assert report.compared_rows >= 1


class TestResourceBands:
    """The environment `resources` block: advisory memory/CPU bands."""

    RESOURCES = {"peak_rss_kb": 100_000, "cpu_seconds": 10.0}

    def _pair(self, tmp_path, current_resources):
        base = bench_artifact(
            tmp_path, "base.json",
            **{"environment.resources": dict(self.RESOURCES)},
        )
        cur = bench_artifact(
            tmp_path, "cur.json",
            **{"environment.resources": current_resources},
        )
        return base, cur

    def test_resources_do_not_break_environment_identity(self, tmp_path):
        base, cur = self._pair(
            tmp_path, {"peak_rss_kb": 101_000, "cpu_seconds": 10.2}
        )
        report = compare_paths(base, cur)
        assert report.environment_matches
        assert report.exit_code == 0

    def test_memory_regression_beyond_band_warns(self, tmp_path):
        base, cur = self._pair(
            tmp_path, {"peak_rss_kb": 120_000, "cpu_seconds": 10.0}
        )
        report = compare_paths(base, cur)
        findings = {
            (f.metric, f.status) for f in report.findings
            if f.label == "<resources>"
        }
        assert ("peak_rss_kb", "warning") in findings
        assert report.exit_code == 0  # advisory, never a failure

    def test_memory_improvement_is_reported(self, tmp_path):
        base, cur = self._pair(
            tmp_path, {"peak_rss_kb": 50_000, "cpu_seconds": 10.0}
        )
        report = compare_paths(base, cur)
        statuses = {
            f.metric: f.status for f in report.findings
            if f.label == "<resources>"
        }
        assert statuses.get("peak_rss_kb") == "improved"

    def test_within_band_is_silent(self, tmp_path):
        base, cur = self._pair(
            tmp_path, {"peak_rss_kb": 105_000, "cpu_seconds": 10.4}
        )
        report = compare_paths(base, cur)
        assert not [f for f in report.findings if f.label == "<resources>"]

    def test_tolerance_override_tightens_the_band(self, tmp_path):
        base, cur = self._pair(
            tmp_path, {"peak_rss_kb": 105_000, "cpu_seconds": 10.0}
        )
        report = compare_paths(
            base, cur, tolerances={"resources.peak_rss_kb": 0.01}
        )
        findings = [
            f for f in report.findings
            if f.label == "<resources>" and f.metric == "peak_rss_kb"
        ]
        assert findings and findings[0].status == "warning"

    def test_missing_resources_block_is_tolerated(self, tmp_path):
        base = bench_artifact(tmp_path, "base.json")
        cur = bench_artifact(
            tmp_path, "cur.json",
            **{"environment.resources": dict(self.RESOURCES)},
        )
        report = compare_paths(base, cur)
        assert report.environment_matches
        assert not [f for f in report.findings if f.label == "<resources>"]
