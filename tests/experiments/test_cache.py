"""Content-addressed cache: round-trips, invalidation, robustness."""

from __future__ import annotations

import json

from repro.experiments import ResultCache, TrialSpec
from repro.experiments.spec import CODE_VERSION


def trial(seed: int = 2) -> TrialSpec:
    return TrialSpec("en", "er:24:0.2", 1, (("k", 3),), seed)


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(trial()) is None
        record = {"colors": 4, "strong_diameter": 2.0, "in_budget": True}
        cache.put(trial(), record)
        assert cache.get(trial()) == record
        assert cache.contains(trial())
        assert len(cache) == 1

    def test_record_key_order_preserved(self, tmp_path):
        # Table column order comes from record insertion order; the cache
        # must not alphabetise it (cached and fresh runs render identically).
        cache = ResultCache(tmp_path)
        record = {"zebra": 1, "alpha": 2, "mid": 3}
        cache.put(trial(), record)
        assert list(cache.get(trial())) == ["zebra", "alpha", "mid"]

    def test_distinct_trials_distinct_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(trial(seed=1), {"colors": 1})
        cache.put(trial(seed=2), {"colors": 2})
        assert cache.get(trial(seed=1)) == {"colors": 1}
        assert cache.get(trial(seed=2)) == {"colors": 2}
        assert len(cache) == 2

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(trial(), {"colors": 4})
        cache.path_for(trial().key()).write_text("{not json", encoding="utf8")
        assert cache.get(trial()) is None

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(trial(), {"colors": 4})
        payload = json.loads(path.read_text(encoding="utf8"))
        assert payload["version"] == CODE_VERSION
        payload["version"] = "stale"
        path.write_text(json.dumps(payload), encoding="utf8")
        assert cache.get(trial()) is None

    def test_overwrite_is_atomic_replace(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(trial(), {"colors": 4})
        cache.put(trial(), {"colors": 5})
        assert cache.get(trial()) == {"colors": 5}
        assert len(cache) == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(trial(seed=1), {"a": 1})
        cache.put(trial(seed=2), {"a": 2})
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(trial(seed=1)) is None

    def test_empty_cache_len(self, tmp_path):
        assert len(ResultCache(tmp_path / "nonexistent")) == 0
