"""Spec hashing and seed derivation: the cache-correctness foundations."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments import (
    CODE_VERSION,
    ExperimentPoint,
    ExperimentSpec,
    TrialSpec,
    freeze_params,
    spec_hash,
)


def make_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="unit",
        algorithm="en",
        points=(ExperimentPoint.of("er:24:0.2", k=3),),
        trials=3,
        root_seed=7,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestFreezeParams:
    def test_sorted_and_hashable(self):
        frozen = freeze_params({"k": 3, "c": 4.0})
        assert frozen == (("c", 4.0), ("k", 3))
        hash(frozen)

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ParameterError, match="JSON scalar"):
            freeze_params({"grid": [1, 2]})

    def test_rejects_non_string_names(self):
        with pytest.raises(ParameterError, match="names must be str"):
            freeze_params({3: "k"})


class TestSpecHash:
    def test_stable_across_processes(self):
        # A pinned digest: changing trial identity semantics (or forgetting
        # to bump CODE_VERSION with them) must fail loudly.
        trial = TrialSpec(
            algorithm="en",
            graph="er:24:0.2",
            graph_seed=1,
            params=(("k", 3),),
            seed=2,
        )
        assert trial.key() == spec_hash(trial.content())
        if CODE_VERSION == "en16.experiments.v1":
            assert trial.key() == "613dbec384b29d6160b3671d77394ebb"

    def test_index_excluded_from_identity(self):
        a = TrialSpec("en", "er:24:0.2", 1, (("k", 3),), 2, index=0)
        b = TrialSpec("en", "er:24:0.2", 1, (("k", 3),), 2, index=5)
        assert a.key() == b.key()

    def test_every_content_field_changes_key(self):
        base = TrialSpec("en", "er:24:0.2", 1, (("k", 3),), 2)
        variants = [
            TrialSpec("staged", "er:24:0.2", 1, (("k", 3),), 2),
            TrialSpec("en", "er:25:0.2", 1, (("k", 3),), 2),
            TrialSpec("en", "er:24:0.2", 9, (("k", 3),), 2),
            TrialSpec("en", "er:24:0.2", 1, (("k", 4),), 2),
            TrialSpec("en", "er:24:0.2", 1, (("k", 3),), 9),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_version_tag_changes_key(self):
        payload = {"x": 1}
        assert spec_hash(payload) != spec_hash(payload, version="other-version")


class TestSeedDerivation:
    def test_deterministic_expansion(self):
        spec = make_spec()
        assert spec.trial_specs() == spec.trial_specs()

    def test_trials_have_distinct_seeds(self):
        spec = make_spec(trials=16)
        seeds = [trial.seed for trial in spec.trial_specs()]
        assert len(set(seeds)) == len(seeds)

    def test_prefix_stability_under_trial_growth(self):
        # Growing --trials must keep already-computed trials cache-valid.
        small = make_spec(trials=4).trial_specs()
        large = make_spec(trials=9).trial_specs()
        assert large[: len(small)] == small

    def test_root_seed_changes_trial_seeds(self):
        a = make_spec(root_seed=1).trial_specs()
        b = make_spec(root_seed=2).trial_specs()
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_scenario_name_does_not_affect_trials(self):
        # Renaming a scenario must not invalidate its cache entries.
        a = make_spec(name="alpha").trial_specs()
        b = make_spec(name="beta").trial_specs()
        assert a == b

    def test_vary_graph_seed_toggle(self):
        varied = make_spec(vary_graph_seed=True, trials=3).trial_specs()
        fixed = make_spec(vary_graph_seed=False, trials=3).trial_specs()
        assert len({trial.graph_seed for trial in varied}) == 3
        assert len({trial.graph_seed for trial in fixed}) == 1
        # Algorithm seeds still differ when the graph is pinned.
        assert len({trial.seed for trial in fixed}) == 3

    def test_validation(self):
        with pytest.raises(ParameterError, match="trials"):
            make_spec(trials=0)
        with pytest.raises(ParameterError, match="no points"):
            make_spec(points=())

    def test_with_overrides(self):
        spec = make_spec().with_overrides(trials=10)
        assert spec.trials == 10 and spec.root_seed == 7
        spec = make_spec().with_overrides(root_seed=99)
        assert spec.trials == 3 and spec.root_seed == 99

    def test_num_trials(self):
        spec = make_spec(
            points=(
                ExperimentPoint.of("er:24:0.2", k=3),
                ExperimentPoint.of("path:10", k=2),
            ),
            trials=5,
        )
        assert spec.num_trials == 10 == len(spec.trial_specs())
