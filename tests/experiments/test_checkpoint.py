"""Journal durability and the kill-mid-campaign / resume contract."""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.experiments import (
    CampaignJournal,
    JournalEntry,
    ResultCache,
    campaign_payload,
    plan_campaign,
    render_campaign,
    run_campaign,
)
from repro.experiments.checkpoint import require_compatible_header
from repro.cli import main


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        assert not journal.exists()
        journal.create({"campaign": "x", "config_hash": "abc"})
        journal.append(JournalEntry(key="k1", member="m1"))
        journal.append(JournalEntry(key="k2", member="m2", error="Boom: died"))
        header, entries = journal.read()
        assert header == {"campaign": "x", "config_hash": "abc"}
        assert entries["k1"].ok
        assert not entries["k2"].ok
        assert entries["k2"].error == "Boom: died"

    def test_missing_reads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "nope.jsonl").read() == (None, {})

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.create({"campaign": "x"})
        journal.append(JournalEntry(key="k1", member="m"))
        # Simulate a crash mid-append: a truncated JSON line at the tail.
        with journal.path.open("a", encoding="utf8") as handle:
            handle.write('{"key": "k2", "mem')
        header, entries = journal.read()
        assert header is not None
        assert set(entries) == {"k1"}

    def test_later_entry_wins(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.create({})
        journal.append(JournalEntry(key="k", member="m", error="first try"))
        journal.append(JournalEntry(key="k", member="m"))
        _, entries = journal.read()
        assert entries["k"].ok

    def test_create_overwrites(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.create({"config_hash": "old"})
        journal.append(JournalEntry(key="k", member="m"))
        journal.create({"config_hash": "new"})
        header, entries = journal.read()
        assert header == {"config_hash": "new"}
        assert entries == {}

    def test_header_compatibility(self):
        require_compatible_header({"a": 1}, {"a": 1})
        with pytest.raises(ParameterError, match="incompatible"):
            require_compatible_header({"a": 1}, {"a": 2})
        with pytest.raises(ParameterError, match="config_hash"):
            require_compatible_header({}, {"config_hash": "x"})


def _run(plan, tmp_path, label, **kwargs):
    cache = ResultCache(tmp_path / label / "cache")
    journal = CampaignJournal(tmp_path / label / "journal.jsonl")
    return (
        run_campaign(plan, cache=cache, journal=journal, **kwargs),
        cache,
        journal,
    )


class TestInterruptResume:
    def test_stop_after_interrupts_without_assembly(self, tmp_path):
        plan = plan_campaign("campaign-smoke")
        outcome, _, journal = _run(plan, tmp_path, "a", stop_after=3)
        assert outcome.interrupted
        assert outcome.executed == 3
        assert outcome.members == []
        _, entries = journal.read()
        assert len(entries) == 3

    def test_resume_completes_byte_identically(self, tmp_path):
        plan = plan_campaign("campaign-smoke")
        # Interrupted run, then resume in the same directory.
        _run(plan, tmp_path, "a", stop_after=3)
        cache = ResultCache(tmp_path / "a" / "cache")
        journal = CampaignJournal(tmp_path / "a" / "journal.jsonl")
        resumed = run_campaign(plan, cache=cache, journal=journal, resume=True)
        # Uninterrupted control run in a separate directory.
        control, _, _ = _run(plan, tmp_path, "b")
        assert not resumed.interrupted and not control.interrupted
        assert resumed.executed + 3 == control.executed
        assert render_campaign(resumed) == render_campaign(control)
        left = json.dumps(campaign_payload(resumed), sort_keys=True)
        right = json.dumps(campaign_payload(control), sort_keys=True)
        assert left == right

    def test_run_refuses_existing_journal(self, tmp_path):
        plan = plan_campaign("campaign-smoke")
        _run(plan, tmp_path, "a", stop_after=1)
        cache = ResultCache(tmp_path / "a" / "cache")
        journal = CampaignJournal(tmp_path / "a" / "journal.jsonl")
        with pytest.raises(ParameterError, match="resume"):
            run_campaign(plan, cache=cache, journal=journal)

    def test_resume_requires_journal(self, tmp_path):
        plan = plan_campaign("campaign-smoke")
        cache = ResultCache(tmp_path / "cache")
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        with pytest.raises(ParameterError, match="nothing to resume"):
            run_campaign(plan, cache=cache, journal=journal, resume=True)

    def test_resume_refuses_other_configuration(self, tmp_path):
        plan = plan_campaign("campaign-smoke")
        _run(plan, tmp_path, "a", stop_after=1)
        cache = ResultCache(tmp_path / "a" / "cache")
        journal = CampaignJournal(tmp_path / "a" / "journal.jsonl")
        other = plan_campaign("campaign-smoke", trials=3)
        with pytest.raises(ParameterError, match="incompatible"):
            run_campaign(other, cache=cache, journal=journal, resume=True)

    def test_vanished_cache_record_is_reexecuted(self, tmp_path):
        plan = plan_campaign("campaign-smoke")
        outcome, cache, journal = _run(plan, tmp_path, "a")
        assert not outcome.interrupted
        # Wipe the cache: the journal alone cannot satisfy assembly, so
        # every trial re-runs and reproduces the identical output.
        assert cache.clear() == plan.num_trials
        again = run_campaign(plan, cache=cache, journal=journal, resume=True)
        assert again.executed == plan.num_trials
        assert render_campaign(again) == render_campaign(outcome)


class TestCliInterruptResume:
    def test_cli_round_trip_byte_identical(self, tmp_path, capsys):
        args = ["campaign", "run", "campaign-smoke", "--dir", str(tmp_path / "a")]
        assert main(args + ["--stop-after", "3"]) == 3
        assert capsys.readouterr().out == ""  # no stdout while interrupted
        json_a = tmp_path / "a.json"
        assert main([
            "campaign", "resume", "campaign-smoke",
            "--dir", str(tmp_path / "a"), "--json", str(json_a),
        ]) == 0
        resumed_out = capsys.readouterr().out
        json_b = tmp_path / "b.json"
        assert main([
            "campaign", "run", "campaign-smoke",
            "--dir", str(tmp_path / "b"), "--json", str(json_b),
        ]) == 0
        control_out = capsys.readouterr().out
        assert resumed_out == control_out
        assert json_a.read_bytes() == json_b.read_bytes()

    def test_cli_status_exit_codes(self, tmp_path, capsys):
        directory = str(tmp_path / "a")
        assert main(["campaign", "status", "campaign-smoke", "--dir", directory]) == 3
        assert "no journal" in capsys.readouterr().out
        main(["campaign", "run", "campaign-smoke", "--dir", directory,
              "--stop-after", "2"])
        assert main(["campaign", "status", "campaign-smoke", "--dir", directory]) == 3
        assert "in progress" in capsys.readouterr().out
        main(["campaign", "resume", "campaign-smoke", "--dir", directory])
        capsys.readouterr()
        assert main(["campaign", "status", "campaign-smoke", "--dir", directory]) == 0
        assert "complete" in capsys.readouterr().out

    def test_cli_fresh_restarts(self, tmp_path, capsys):
        directory = str(tmp_path / "a")
        main(["campaign", "run", "campaign-smoke", "--dir", directory,
              "--stop-after", "2"])
        # A plain re-run refuses the half-done journal...
        assert main(["campaign", "run", "campaign-smoke", "--dir", directory]) == 2
        assert "resume" in capsys.readouterr().err
        # ...but --fresh discards it and completes (reusing cached records).
        assert main(["campaign", "run", "campaign-smoke", "--dir", directory,
                     "--fresh"]) == 0
