"""Unit tests for the single-phase carving kernel."""

from __future__ import annotations

import math

import pytest

from repro.core.carving import TopTwo, broadcast_reach, carve_block
from repro.errors import ParameterError
from repro.graphs import Graph, cycle_graph, path_graph, star_graph


class TestTopTwo:
    def test_single_offer(self):
        t = TopTwo()
        t.offer(3.0, 7)
        assert t.best == 3.0
        assert t.best_origin == 7
        assert t.gap == 3.0  # m2 = 0 convention for lone broadcasts

    def test_two_offers(self):
        t = TopTwo()
        t.offer(3.0, 7)
        t.offer(1.0, 2)
        assert t.gap == 2.0
        assert t.second == 1.0

    def test_promotion(self):
        t = TopTwo()
        t.offer(1.0, 2)
        t.offer(3.0, 7)
        assert (t.best, t.best_origin) == (3.0, 7)
        assert (t.second, t.second_origin) == (1.0, 2)

    def test_third_smaller_ignored(self):
        t = TopTwo()
        t.offer(3.0, 1)
        t.offer(2.0, 2)
        t.offer(1.0, 3)
        assert (t.best, t.second) == (3.0, 2.0)

    def test_middle_insert(self):
        t = TopTwo()
        t.offer(3.0, 1)
        t.offer(1.0, 2)
        t.offer(2.0, 3)
        assert (t.best, t.second) == (3.0, 2.0)
        assert t.second_origin == 3

    def test_exact_tie_prefers_smaller_origin(self):
        t = TopTwo()
        t.offer(3.0, 9)
        t.offer(3.0, 4)
        assert t.best_origin == 4
        assert t.second_origin == 9
        assert t.gap == 0.0

    def test_joins_rule(self):
        t = TopTwo()
        t.offer(2.5, 0)
        assert t.joins  # 2.5 - 0 > 1
        t.offer(2.0, 1)
        assert not t.joins  # 2.5 - 2.0 <= 1


class TestBroadcastReach:
    def test_floor(self):
        assert broadcast_reach(2.9, None) == 2
        assert broadcast_reach(3.0, None) == 3
        assert broadcast_reach(0.5, None) == 0

    def test_cap(self):
        assert broadcast_reach(7.2, 3) == 3
        assert broadcast_reach(1.2, 3) == 1

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            broadcast_reach(-0.1, None)


class TestCarveBlock:
    def test_isolated_vertex_joins_iff_radius_over_one(self):
        g = Graph(2)
        out = carve_block(g, {0, 1}, {0: 1.5, 1: 0.9})
        assert out.block == {0}
        assert out.center_of == {0: 0}

    def test_exactly_one_means_no_join(self):
        # The rule is strict: m1 - m2 > 1.
        g = Graph(1)
        out = carve_block(g, {0}, {0: 1.0})
        assert out.block == set()

    def test_dominant_center_claims_ball(self):
        g = path_graph(5)
        radii = {0: 4.6, 1: 0.1, 2: 0.1, 3: 0.1, 4: 0.1}
        out = carve_block(g, set(g.vertices()), radii)
        # m at vertex v is 4.6 - v; own values are 0.1: gaps all > 1.
        assert out.block == {0, 1, 2, 3}
        assert all(out.center_of[v] == 0 for v in out.block)
        # vertex 4 is at distance 4 but reach = floor(4.6) = 4: m = 0.6 vs own 0.1
        assert 4 not in out.block

    def test_two_competing_centers_boundary_excluded(self):
        g = path_graph(7)
        radii = {v: 0.0 for v in g.vertices()}
        radii[0] = 3.5
        radii[6] = 3.5
        out = carve_block(g, set(g.vertices()), radii)
        # Vertex 3 hears 3.5-3 = 0.5 from both: gap 0 -> excluded.
        assert 3 not in out.block
        assert 2 in out.block and out.center_of[2] == 0
        assert 4 in out.block and out.center_of[4] == 6

    def test_active_set_respected(self):
        g = path_graph(5)
        active = {0, 1, 3, 4}  # vertex 2 carved earlier
        radii = {0: 3.7, 1: 0.0, 3: 3.7, 4: 0.0}
        out = carve_block(g, active, radii)
        # 0's broadcast cannot cross the inactive vertex 2.
        assert out.center_of[1] == 0
        assert out.center_of[4] == 3

    def test_radius_for_inactive_vertex_rejected(self):
        g = path_graph(3)
        with pytest.raises(ParameterError, match="inactive"):
            carve_block(g, {0, 1}, {0: 1.0, 2: 1.0})

    def test_range_cap_truncates(self):
        g = path_graph(6)
        radii = {v: 0.0 for v in g.vertices()}
        radii[0] = 5.9
        uncapped = carve_block(g, set(g.vertices()), radii)
        capped = carve_block(g, set(g.vertices()), radii, range_cap=2)
        assert 3 in uncapped.block
        assert 3 not in capped.block  # broadcast stops at distance 2
        assert 1 in capped.block

    def test_every_vertex_hears_itself(self):
        g = cycle_graph(5)
        radii = {v: 0.3 for v in g.vertices()}
        out = carve_block(g, set(g.vertices()), radii)
        assert all(out.top_two[v].count >= 1 for v in g.vertices())
        assert out.block == set()  # all gaps are 0 (equal radii, reach 0)

    def test_star_center_wins_all(self):
        g = star_graph(6)
        radii = {v: 0.0 for v in g.vertices()}
        radii[0] = 2.5
        out = carve_block(g, set(g.vertices()), radii)
        assert out.block == set(g.vertices())
        assert all(out.center_of[v] == 0 for v in g.vertices())

    def test_block_empty_when_no_radii_exceed_one(self):
        g = path_graph(4)
        radii = {v: 0.5 for v in g.vertices()}
        out = carve_block(g, set(g.vertices()), radii)
        assert out.block == set()

    def test_deterministic(self):
        g = cycle_graph(9)
        radii = {v: (v * 7 % 5) + 0.25 for v in g.vertices()}
        a = carve_block(g, set(g.vertices()), radii)
        b = carve_block(g, set(g.vertices()), radii)
        assert a.block == b.block
        assert a.center_of == b.center_of
