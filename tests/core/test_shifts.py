"""Unit tests for exponential shift sampling and truncation events."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.core.shifts import (
    find_truncation_events,
    sample_phase_radii,
    sample_radius,
)
from repro.errors import ParameterError


class TestSampleRadius:
    def test_deterministic(self):
        a = sample_radius(1, 2, 3, 0.5)
        b = sample_radius(1, 2, 3, 0.5)
        assert a == b

    def test_distinct_streams(self):
        values = {
            sample_radius(1, phase, vertex, 0.5)
            for phase in range(1, 4)
            for vertex in range(5)
        }
        assert len(values) == 15

    def test_nonnegative(self):
        assert all(sample_radius(7, 1, v, 1.0) >= 0 for v in range(100))

    def test_mean_matches_rate(self):
        beta = 0.7
        values = [sample_radius(3, 1, v, beta) for v in range(4000)]
        assert statistics.mean(values) == pytest.approx(1 / beta, rel=0.1)

    def test_bad_beta(self):
        with pytest.raises(ParameterError):
            sample_radius(1, 1, 1, 0.0)
        with pytest.raises(ParameterError):
            sample_radius(1, 1, 1, -1.0)

    def test_exponential_tail(self):
        # Pr[r >= t] = e^{-beta t}; check at t = 1 within Monte-Carlo noise.
        beta = 1.2
        values = [sample_radius(11, 1, v, beta) for v in range(5000)]
        tail = sum(1 for v in values if v >= 1.0) / len(values)
        assert tail == pytest.approx(math.exp(-beta), abs=0.03)


class TestSamplePhaseRadii:
    def test_covers_vertices(self):
        radii = sample_phase_radii(5, 2, [3, 1, 4], 0.8)
        assert set(radii) == {1, 3, 4}

    def test_matches_individual_draws(self):
        radii = sample_phase_radii(5, 2, [0, 1], 0.8)
        assert radii[0] == sample_radius(5, 2, 0, 0.8)
        assert radii[1] == sample_radius(5, 2, 1, 0.8)


class TestTruncationEvents:
    def test_detects_threshold(self):
        radii = {0: 2.0, 1: 5.1, 2: 4.99}
        events = find_truncation_events(radii, phase=3, k=4.0)
        assert len(events) == 1
        assert events[0].vertex == 1
        assert events[0].phase == 3
        assert events[0].threshold == 5.0

    def test_boundary_inclusive(self):
        events = find_truncation_events({0: 5.0}, phase=1, k=4.0)
        assert len(events) == 1  # r >= k + 1 is the event

    def test_sorted_by_vertex(self):
        radii = {5: 9.0, 1: 9.0, 3: 9.0}
        events = find_truncation_events(radii, phase=1, k=2.0)
        assert [e.vertex for e in events] == [1, 3, 5]

    def test_lemma1_frequency(self):
        # Pr[r >= k+1] = e^{-beta(k+1)} = (cn)^{-(k+1)/k}; with n=200,
        # c=4, k=3 that is ~ 800^{-4/3} ~ 1.4e-4 per draw.
        n, c, k = 200, 4.0, 3
        beta = math.log(c * n) / k
        events = 0
        draws = 20_000
        for v in range(draws):
            if sample_radius(13, 1, v, beta) >= k + 1:
                events += 1
        assert events / draws < 1e-3
