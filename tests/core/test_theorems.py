"""End-to-end tests of the three theorem drivers (centralized)."""

from __future__ import annotations

import math

import pytest

from repro.core import elkin_neiman, high_radius, staged
from repro.errors import SimulationError
from repro.graphs import (
    Graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected,
)


class TestTheorem1:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_guarantees_on_er(self, k):
        g = erdos_renyi(120, 0.05, seed=10)
        decomposition, trace = elkin_neiman.decompose(g, k=k, seed=20)
        decomposition.validate()
        if not trace.had_truncation_event:
            assert decomposition.max_strong_diameter() <= 2 * k - 2

    def test_colors_bounded_by_phases(self):
        g = erdos_renyi(100, 0.05, seed=1)
        decomposition, trace = elkin_neiman.decompose(g, k=3, seed=2)
        assert decomposition.num_colors <= trace.total_phases

    def test_deterministic_given_seed(self):
        g = grid_graph(6, 6)
        a, _ = elkin_neiman.decompose(g, k=3, seed=5)
        b, _ = elkin_neiman.decompose(g, k=3, seed=5)
        assert a.cluster_index_map() == b.cluster_index_map()

    def test_seed_changes_result(self):
        g = grid_graph(6, 6)
        a, _ = elkin_neiman.decompose(g, k=3, seed=5)
        b, _ = elkin_neiman.decompose(g, k=3, seed=6)
        assert a.cluster_index_map() != b.cluster_index_map()

    def test_empty_graph(self):
        decomposition, trace = elkin_neiman.decompose(Graph(0), k=2)
        assert decomposition.num_clusters == 0
        assert trace.total_phases == 0

    def test_single_vertex(self):
        decomposition, _ = elkin_neiman.decompose(Graph(1), k=2, seed=1)
        decomposition.validate()
        assert decomposition.num_clusters == 1

    def test_disconnected_graph(self):
        g = Graph(6, [(0, 1), (2, 3)])
        decomposition, _ = elkin_neiman.decompose(g, k=2, seed=1)
        decomposition.validate()

    def test_trace_bookkeeping(self):
        g = path_graph(30)
        decomposition, trace = elkin_neiman.decompose(g, k=2, seed=3)
        assert trace.total_phases == len(trace.phases)
        assert trace.survivors[-1] == 0
        assert sum(p.block_size for p in trace.phases) == 30
        # survivors decrease weakly.
        assert all(a >= b for a, b in zip(trace.survivors, trace.survivors[1:]))

    def test_max_phases_guard(self):
        g = path_graph(10)
        with pytest.raises(SimulationError, match="not exhausted"):
            elkin_neiman.decompose(g, k=2, seed=3, max_phases=1)

    def test_range_cap_mode_valid(self):
        g = erdos_renyi(80, 0.06, seed=4)
        decomposition, trace = elkin_neiman.decompose(
            g, k=3, seed=7, use_range_cap=True
        )
        decomposition.validate()
        # With the cap, 2k-2 holds unconditionally on the centre distance
        # side; truncation events may only shrink broadcasts further.
        assert decomposition.max_strong_diameter() <= 2 * 3 - 2

    def test_exhausts_within_nominal_usually(self):
        # Corollary 7: failure probability <= 1/c = 1/8 per run.  The
        # assertion is aggregate (deterministic, fixed seeds): most runs
        # must finish within the nominal budget.
        outcomes = []
        for seed in range(8):
            g = erdos_renyi(60, 0.08, seed=seed)
            _, trace = elkin_neiman.decompose(g, k=3, c=8.0, seed=seed)
            outcomes.append(trace.exhausted_within_nominal)
        assert sum(outcomes) >= 6


class TestTheorem2:
    def test_guarantees(self):
        g = erdos_renyi(150, 0.04, seed=11)
        k = 4
        decomposition, trace = staged.decompose(g, k=k, c=6.0, seed=21)
        decomposition.validate()
        if not trace.had_truncation_event:
            assert decomposition.max_strong_diameter() <= 2 * k - 2

    def test_uses_fewer_phases_than_theorem1_budget(self):
        # The staged schedule's budget 4k(cn)^{1/k} is below Theorem 1's
        # (cn)^{1/k} ln(cn) for small k on large n.
        g = erdos_renyi(300, 0.02, seed=12)
        d2, t2 = staged.decompose(g, k=2, c=6.0, seed=22)
        d1, t1 = elkin_neiman.decompose(g, k=2, c=6.0, seed=22)
        assert t2.nominal_phases < t1.nominal_phases
        d2.validate()
        d1.validate()

    def test_trace_covers_stages(self):
        g = erdos_renyi(100, 0.05, seed=13)
        _, trace = staged.decompose(g, k=3, c=6.0, seed=23)
        betas = [p.beta for p in trace.phases]
        # Rates only ever decrease across the run.
        assert all(a >= b - 1e-12 for a, b in zip(betas, betas[1:]))

    def test_deterministic(self):
        g = cycle_graph(40)
        a, _ = staged.decompose(g, k=3, seed=9)
        b, _ = staged.decompose(g, k=3, seed=9)
        assert a.cluster_index_map() == b.cluster_index_map()


class TestTheorem3:
    @pytest.mark.parametrize("lam", [1, 2, 3])
    def test_color_budget(self, lam):
        g = erdos_renyi(80, 0.05, seed=14)
        decomposition, trace = high_radius.decompose(g, lam=lam, seed=24)
        decomposition.validate()
        if trace.exhausted_within_nominal:
            assert decomposition.num_colors <= lam

    def test_diameter_bound(self):
        n, lam, c = 80, 2, 4.0
        g = random_connected(n, 0.03, seed=15)
        decomposition, trace = high_radius.decompose(g, lam=lam, c=c, seed=25)
        cn = c * n
        k = cn ** (1 / lam) * math.log(cn)
        if not trace.truncation_events:
            assert decomposition.max_strong_diameter() <= 2 * k

    def test_lambda_one_single_color(self):
        # With lambda = 1, k is astronomically large: one phase w.h.p.
        g = grid_graph(5, 5)
        decomposition, trace = high_radius.decompose(g, lam=1, seed=26)
        if trace.exhausted_within_nominal:
            assert decomposition.num_colors == 1
            # A single colour class must be the whole graph per component.
            assert decomposition.num_clusters == 1
