"""Node-level unit tests of the distributed EN state machine."""

from __future__ import annotations

import math

import pytest

from repro.core.distributed_en import ENNodeAlgorithm
from repro.distributed import SyncNetwork
from repro.errors import ParameterError
from repro.graphs import path_graph, star_graph


def make_network(graph, seed=1, mode="toptwo"):
    return SyncNetwork(
        graph, [ENNodeAlgorithm(v, seed, mode) for v in range(graph.num_vertices)], seed=seed
    )


class TestENNodeStateMachine:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ParameterError):
            ENNodeAlgorithm(0, 1, "everything")  # type: ignore[arg-type]

    def test_begin_phase_draws_shared_stream(self):
        from repro.core.shifts import sample_radius

        node = ENNodeAlgorithm(3, seed=9, mode="full")
        node.begin_phase(phase=2, beta=0.8, broadcast_rounds=4)
        assert node.radius == sample_radius(9, 2, 3, 0.8)
        assert node.entries == {3: (node.radius, 0)}
        assert node.round_in_phase == 0

    def test_own_entry_broadcast_first_round(self):
        graph = star_graph(4)
        network = make_network(graph)
        network.start()
        for v in range(4):
            algo = network.algorithm(v)
            algo.begin_phase(1, 0.2, broadcast_rounds=5)  # tiny beta: big radii
        network.run_rounds(1)
        # All radii > 1 w.h.p. under beta=0.2 with these seeds; at minimum
        # everyone with floor(radius) >= 1 must have sent degree messages.
        expected = sum(
            graph.degree(v)
            for v in range(4)
            if math.floor(network.algorithm(v).radius) >= 1
        )
        assert network.stats.messages_sent == expected

    def test_entries_record_shortest_distance(self):
        graph = path_graph(4)
        network = make_network(graph, seed=5, mode="full")
        network.start()
        for v in range(4):
            network.algorithm(v).begin_phase(1, 0.1, broadcast_rounds=6)
        network.run_rounds(6)
        for v in range(4):
            algo = network.algorithm(v)
            for origin, (radius, distance) in algo.entries.items():
                assert distance == abs(origin - v)  # path distances

    def test_decision_uses_m2_zero_for_lone_entry(self):
        node = ENNodeAlgorithm(0, seed=1, mode="full")
        node.begin_phase(1, 1.0, broadcast_rounds=0)
        node.entries = {0: (2.5, 0)}
        node._decide()
        assert node.joined_phase == 1
        assert node.center == 0

    def test_decision_gap_rule(self):
        node = ENNodeAlgorithm(0, seed=1, mode="full")
        node.begin_phase(1, 1.0, broadcast_rounds=0)
        node.phase = 1
        node.entries = {0: (0.2, 0), 7: (4.0, 2)}  # m: 0.2 vs 2.0 -> gap 1.8
        node.joined_phase = None
        node._decide()
        assert node.joined_phase == 1
        assert node.center == 7

        node2 = ENNodeAlgorithm(0, seed=1, mode="full")
        node2.begin_phase(1, 1.0, broadcast_rounds=0)
        node2.entries = {0: (1.1, 0), 7: (4.0, 2)}  # m: 1.1 vs 2.0 -> gap 0.9
        node2._decide()
        assert node2.joined_phase is None

    def test_forward_eligibility_respects_floor(self):
        node = ENNodeAlgorithm(0, seed=1, mode="full")
        node.begin_phase(1, 1.0, broadcast_rounds=5)
        node.entries = {9: (2.9, 2)}  # d+1 = 3 > floor(2.9) = 2: ineligible
        assert not node._eligible(9)
        node.entries = {9: (3.0, 2)}  # d+1 = 3 <= 3: eligible
        assert node._eligible(9)

    def test_toptwo_sends_at_most_two_new_origins_per_round(self):
        # On a star, the centre hears every leaf simultaneously; in toptwo
        # mode it may forward only two of them.
        graph = star_graph(8)
        network = make_network(graph, seed=3, mode="toptwo")
        network.start()
        for v in range(8):
            network.algorithm(v).begin_phase(1, 0.05, broadcast_rounds=8)
        network.run_rounds(1)  # everyone injects own entry
        before = network.stats.messages_sent
        network.run_rounds(1)
        sent = network.stats.messages_sent - before
        # Centre forwards at most 2 of the 7 leaf entries (2 x 7 msgs);
        # each leaf may echo the centre's entry back (7 x 1 msgs).  Full
        # mode would forward all 7 leaf entries (49 + 7).
        assert sent <= 2 * 7 + 7

    def test_halt_after_join_and_announce(self):
        graph = path_graph(2)
        network = make_network(graph, seed=2, mode="full")
        network.start()
        for v in range(2):
            network.algorithm(v).begin_phase(1, 0.05, broadcast_rounds=1)
        network.run_rounds(3)  # 1 broadcast + decide + announce
        joined = [network.algorithm(v).joined_phase == 1 for v in range(2)]
        halted = [network.halted(v) for v in range(2)]
        assert joined == halted
