"""Unit tests for the NetworkDecomposition result type and validation."""

from __future__ import annotations

import math

import pytest

from repro.core import Cluster, NetworkDecomposition
from repro.errors import DecompositionError
from repro.graphs import Graph, cycle_graph, path_graph


def make_path_decomposition() -> tuple[Graph, NetworkDecomposition]:
    g = path_graph(6)
    clusters = [
        Cluster(index=0, color=0, vertices=frozenset({0, 1}), center=0),
        Cluster(index=1, color=1, vertices=frozenset({2, 3}), center=2),
        Cluster(index=2, color=0, vertices=frozenset({4, 5}), center=4),
    ]
    return g, NetworkDecomposition(g, clusters)


class TestAccessors:
    def test_counts(self):
        _, d = make_path_decomposition()
        assert d.num_clusters == 3
        assert d.num_colors == 2
        assert d.colors == [0, 1]

    def test_cluster_of(self):
        _, d = make_path_decomposition()
        assert d.cluster_of(3).index == 1
        assert d.color_of(5) == 0

    def test_cluster_of_missing_vertex(self):
        g = path_graph(3)
        d = NetworkDecomposition(
            g, [Cluster(index=0, color=0, vertices=frozenset({0, 1}))]
        )
        with pytest.raises(DecompositionError, match="no cluster"):
            d.cluster_of(2)

    def test_sizes_and_map(self):
        _, d = make_path_decomposition()
        assert d.cluster_sizes() == [2, 2, 2]
        assert d.cluster_index_map()[4] == 2

    def test_cluster_dunder(self):
        c = Cluster(index=0, color=0, vertices=frozenset({1, 2}))
        assert len(c) == 2
        assert 1 in c and 3 not in c

    def test_repr(self):
        _, d = make_path_decomposition()
        assert "clusters=3" in repr(d)


class TestSupergraph:
    def test_path_supergraph_is_path(self):
        _, d = make_path_decomposition()
        sg = d.supergraph()
        assert sg.num_vertices == 3
        assert list(sg.edges()) == [(0, 1), (1, 2)]

    def test_colors_proper_on_supergraph(self):
        _, d = make_path_decomposition()
        assert d.is_proper_coloring()


class TestDiameters:
    def test_strong_weak_connected(self):
        _, d = make_path_decomposition()
        assert d.max_strong_diameter() == 1
        assert d.max_weak_diameter() == 1
        assert d.disconnected_clusters() == []

    def test_disconnected_cluster_detected(self):
        g = path_graph(4)
        clusters = [
            Cluster(index=0, color=0, vertices=frozenset({0, 3})),
            Cluster(index=1, color=1, vertices=frozenset({1, 2})),
        ]
        d = NetworkDecomposition(g, clusters)
        assert math.isinf(d.max_strong_diameter())
        assert d.max_weak_diameter() == 3
        assert len(d.disconnected_clusters()) == 1


class TestValidation:
    def test_valid_passes(self):
        _, d = make_path_decomposition()
        d.validate(max_diameter=1, max_colors=2, strong=True)

    def test_overlap_fails(self):
        g = path_graph(3)
        clusters = [
            Cluster(index=0, color=0, vertices=frozenset({0, 1})),
            Cluster(index=1, color=1, vertices=frozenset({1, 2})),
        ]
        with pytest.raises(DecompositionError, match="partition"):
            NetworkDecomposition(g, clusters).validate()

    def test_missing_vertex_fails(self):
        g = path_graph(3)
        clusters = [Cluster(index=0, color=0, vertices=frozenset({0, 1}))]
        with pytest.raises(DecompositionError, match="partition"):
            NetworkDecomposition(g, clusters).validate()

    def test_adjacent_same_color_fails(self):
        g = path_graph(4)
        clusters = [
            Cluster(index=0, color=0, vertices=frozenset({0, 1})),
            Cluster(index=1, color=0, vertices=frozenset({2, 3})),
        ]
        with pytest.raises(DecompositionError, match="colour"):
            NetworkDecomposition(g, clusters).validate()

    def test_diameter_bound_fails(self):
        g = path_graph(4)
        clusters = [Cluster(index=0, color=0, vertices=frozenset({0, 1, 2, 3}))]
        d = NetworkDecomposition(g, clusters)
        d.validate(max_diameter=3)
        with pytest.raises(DecompositionError, match="diameter"):
            d.validate(max_diameter=2)

    def test_color_bound_fails(self):
        _, d = make_path_decomposition()
        with pytest.raises(DecompositionError, match="colours"):
            d.validate(max_colors=1)

    def test_bad_index_fails(self):
        g = path_graph(2)
        clusters = [Cluster(index=5, color=0, vertices=frozenset({0, 1}))]
        with pytest.raises(DecompositionError, match="index"):
            NetworkDecomposition(g, clusters).validate()

    def test_empty_cluster_fails(self):
        g = Graph(1)
        clusters = [
            Cluster(index=0, color=0, vertices=frozenset({0})),
            Cluster(index=1, color=0, vertices=frozenset()),
        ]
        with pytest.raises(DecompositionError, match="empty"):
            NetworkDecomposition(g, clusters).validate()

    def test_weak_validation_mode(self):
        g = path_graph(4)
        clusters = [
            Cluster(index=0, color=0, vertices=frozenset({0, 3})),
            Cluster(index=1, color=1, vertices=frozenset({1, 2})),
        ]
        d = NetworkDecomposition(g, clusters)
        d.validate(max_diameter=3, strong=False)
        with pytest.raises(DecompositionError):
            d.validate(max_diameter=3, strong=True)


class TestFromBlocks:
    def test_blocks_split_into_components(self):
        g = path_graph(5)
        d = NetworkDecomposition.from_blocks(g, [[0, 1, 3, 4], [2]])
        assert d.num_clusters == 3
        assert d.num_colors == 2
        assert d.cluster_of(0).vertices == frozenset({0, 1})
        assert d.cluster_of(3).vertices == frozenset({3, 4})
        assert d.cluster_of(2).color == 1

    def test_centers_attached_when_unanimous(self):
        g = path_graph(4)
        d = NetworkDecomposition.from_blocks(
            g, [[0, 1], [2, 3]], centers={0: 0, 1: 0, 2: 3, 3: 3}
        )
        assert d.cluster_of(0).center == 0
        assert d.cluster_of(2).center == 3

    def test_empty_blocks_skipped(self):
        g = path_graph(2)
        d = NetworkDecomposition.from_blocks(g, [[], [0, 1]])
        assert d.num_clusters == 1
        assert d.clusters[0].color == 1

    def test_empty_graph(self):
        d = NetworkDecomposition.from_blocks(Graph(0), [])
        assert d.num_clusters == 0
        d.validate()
        assert d.max_strong_diameter() == 0.0
