"""Tests of the distributed Elkin–Neiman protocol.

The central property: the message-passing run is **bit-identical** to the
centralized reference under shared seeds — in full forwarding mode, in the
paper's top-two CONGEST mode, and in both phase-length policies.
"""

from __future__ import annotations

import pytest

from repro.core import elkin_neiman
from repro.core.distributed_en import decompose_distributed
from repro.errors import CongestViolation, ParameterError
from repro.graphs import (
    balanced_tree,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected,
    star_graph,
)

GRAPHS = [
    ("path", path_graph(25)),
    ("cycle", cycle_graph(24)),
    ("grid", grid_graph(6, 6)),
    ("tree", balanced_tree(2, 4)),
    ("star", star_graph(15)),
    ("complete", complete_graph(10)),
    ("er", erdos_renyi(50, 0.08, seed=3)),
    ("conn", random_connected(40, 0.03, seed=4)),
]


def same_decomposition(a, b) -> bool:
    return (
        a.cluster_index_map() == b.cluster_index_map()
        and [c.color for c in a.clusters] == [c.color for c in b.clusters]
        and [c.center for c in a.clusters] == [c.center for c in b.clusters]
    )


class TestCrossValidation:
    @pytest.mark.parametrize("name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
    @pytest.mark.parametrize("mode", ["full", "toptwo"])
    def test_matches_centralized_adaptive(self, name, graph, mode):
        seed = 17
        central, _ = elkin_neiman.decompose(graph, k=3, seed=seed)
        distributed = decompose_distributed(graph, k=3, seed=seed, mode=mode)
        assert same_decomposition(central, distributed.decomposition)

    @pytest.mark.parametrize("mode", ["full", "toptwo"])
    def test_matches_centralized_fixed_length(self, mode):
        graph = erdos_renyi(40, 0.1, seed=5)
        seed = 23
        central, _ = elkin_neiman.decompose(
            graph, k=3, seed=seed, use_range_cap=True
        )
        distributed = decompose_distributed(
            graph, k=3, seed=seed, mode=mode, adaptive_phase_length=False
        )
        assert same_decomposition(central, distributed.decomposition)

    @pytest.mark.parametrize("seed", range(8))
    def test_toptwo_equals_full_many_seeds(self, seed):
        """The paper's CONGEST claim (E8): top-two forwarding loses nothing."""
        graph = erdos_renyi(45, 0.09, seed=seed)
        full = decompose_distributed(graph, k=3, seed=seed, mode="full")
        toptwo = decompose_distributed(graph, k=3, seed=seed, mode="toptwo")
        assert same_decomposition(full.decomposition, toptwo.decomposition)
        assert full.phases == toptwo.phases


class TestProtocolProperties:
    def test_valid_decomposition(self):
        graph = erdos_renyi(60, 0.07, seed=6)
        result = decompose_distributed(graph, k=3, seed=31)
        result.decomposition.validate()
        if not result.truncation_events:
            assert result.decomposition.max_strong_diameter() <= 4

    def test_round_accounting(self):
        graph = grid_graph(5, 5)
        result = decompose_distributed(graph, k=2, seed=7)
        assert result.total_rounds == sum(result.rounds_per_phase)
        assert result.total_rounds == result.stats.rounds
        assert len(result.rounds_per_phase) == result.phases
        # Every phase costs B_t + 2 rounds with B_t >= 0.
        assert all(r >= 2 for r in result.rounds_per_phase)

    def test_rounds_within_theorem_budget(self):
        # Fixed mode: each phase is exactly k + 2 rounds; phases w.h.p.
        # within nominal -> rounds <= (k + 2) * nominal.
        graph = erdos_renyi(50, 0.08, seed=8)
        k = 3
        result = decompose_distributed(
            graph, k=k, seed=8, adaptive_phase_length=False
        )
        assert all(r == k + 2 for r in result.rounds_per_phase)
        if result.exhausted_within_nominal:
            assert result.total_rounds <= (k + 2) * result.nominal_phases

    def test_toptwo_is_congest(self):
        """Top-two mode fits a constant word budget on every graph here."""
        for _, graph in GRAPHS:
            result = decompose_distributed(
                graph, k=3, seed=19, mode="toptwo", word_budget=9
            )
            assert result.stats.max_words_per_edge_round <= 9

    def test_full_mode_violates_small_budget_on_dense_graph(self):
        graph = complete_graph(30)
        with pytest.raises(CongestViolation):
            # Dense graph: many new entries land in one round.
            decompose_distributed(
                graph, k=5, c=20.0, seed=3, mode="full", word_budget=8
            )

    def test_requires_k_or_schedule(self):
        with pytest.raises(ParameterError, match="either k or"):
            decompose_distributed(path_graph(3))

    def test_invalid_mode(self):
        with pytest.raises(ParameterError, match="mode"):
            decompose_distributed(path_graph(3), k=2, mode="bogus")  # type: ignore[arg-type]

    def test_empty_graph(self):
        from repro.graphs import Graph

        result = decompose_distributed(Graph(0), k=2)
        assert result.phases == 0
        assert result.decomposition.num_clusters == 0


class TestSchedulesDistributed:
    def test_theorem2_schedule_runs_distributed(self):
        from repro.core.params import Theorem2Schedule

        graph = erdos_renyi(50, 0.08, seed=9)
        schedule = Theorem2Schedule(n=50, k=3, c=6.0)
        result = decompose_distributed(graph, schedule=schedule, seed=41)
        result.decomposition.validate()
        if not result.truncation_events:
            assert result.decomposition.max_strong_diameter() <= 4

    def test_theorem2_distributed_matches_centralized(self):
        from repro.core import staged
        from repro.core.params import Theorem2Schedule

        graph = grid_graph(6, 5)
        central, _ = staged.decompose(graph, k=3, c=6.0, seed=43)
        schedule = Theorem2Schedule(n=30, k=3, c=6.0)
        distributed = decompose_distributed(graph, schedule=schedule, seed=43)
        assert same_decomposition(central, distributed.decomposition)

    def test_theorem3_schedule_runs_distributed(self):
        from repro.core.params import Theorem3Schedule

        graph = grid_graph(5, 5)
        schedule = Theorem3Schedule.from_lambda(n=25, lam=2, c=4.0)
        result = decompose_distributed(graph, schedule=schedule, seed=47)
        result.decomposition.validate()
        if result.exhausted_within_nominal:
            assert result.decomposition.num_colors <= 2
