"""Unit tests for theorem parameter schedules and bound calculators."""

from __future__ import annotations

import math

import pytest

from repro.core.params import (
    Theorem1Schedule,
    Theorem2Schedule,
    Theorem3Schedule,
    theorem1_bounds,
    theorem2_bounds,
    theorem3_bounds,
)
from repro.errors import ParameterError


class TestTheorem1Schedule:
    def test_beta_formula(self):
        s = Theorem1Schedule(n=100, k=4, c=4.0)
        assert s.beta(1) == pytest.approx(math.log(400) / 4)
        assert s.beta(99) == s.beta(1)  # constant rate

    def test_nominal_phases_formula(self):
        s = Theorem1Schedule(n=100, k=4, c=4.0)
        expected = math.ceil(400 ** 0.25 * math.log(400))
        assert s.nominal_phases == expected

    def test_range_cap(self):
        assert Theorem1Schedule(n=64, k=3, c=4.0).range_cap(5) == 3
        assert Theorem1Schedule(n=64, k=3.9, c=4.0).range_cap(5) == 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            Theorem1Schedule(n=10, k=0.5, c=4.0)
        with pytest.raises(ParameterError):
            Theorem1Schedule(n=10, k=2, c=3.0)  # needs c > 3
        with pytest.raises(ParameterError):
            Theorem1Schedule(n=0, k=2, c=4.0)

    def test_k_equals_ln_n_gives_polylog(self):
        n = 1024
        k = math.ceil(math.log(n))
        s = Theorem1Schedule(n=n, k=k, c=4.0)
        # lambda = (cn)^{1/k} ln(cn) = O(log n): single digits times log.
        assert s.nominal_phases <= 10 * math.log(4 * n)


class TestTheorem2Schedule:
    def test_stage_structure(self):
        s = Theorem2Schedule(n=100, k=3, c=6.0)
        assert len(s.stage_lengths) == len(s.stage_betas)
        assert s.nominal_phases == sum(s.stage_lengths)
        # Stage lengths shrink and betas decrease.
        assert all(
            a >= b for a, b in zip(s.stage_lengths, s.stage_lengths[1:])
        )
        assert all(a > b for a, b in zip(s.stage_betas, s.stage_betas[1:]))

    def test_stage_of(self):
        s = Theorem2Schedule(n=100, k=3, c=6.0)
        assert s.stage_of(1) == 0
        assert s.stage_of(s.stage_lengths[0]) == 0
        assert s.stage_of(s.stage_lengths[0] + 1) == 1
        # Overflow phases stay in the last stage.
        assert s.stage_of(s.nominal_phases + 50) == len(s.stage_lengths) - 1

    def test_stage_of_invalid(self):
        s = Theorem2Schedule(n=100, k=3, c=6.0)
        with pytest.raises(ParameterError):
            s.stage_of(0)

    def test_beta_matches_paper_formula(self):
        s = Theorem2Schedule(n=100, k=3, c=6.0)
        assert s.stage_betas[0] == pytest.approx(math.log(600) / 3)
        assert s.stage_betas[1] == pytest.approx(math.log(600 / math.e) / 3)

    def test_betas_positive(self):
        for n in (2, 10, 1000):
            s = Theorem2Schedule(n=n, k=2, c=6.0)
            assert all(beta > 0 for beta in s.stage_betas)

    def test_total_phases_bounded_by_paper(self):
        # sum s_i <= 4k(cn)^{1/k} + slack for ceilings.
        n, k, c = 500, 4, 6.0
        s = Theorem2Schedule(n=n, k=k, c=c)
        bound = 4 * k * (c * n) ** (1 / k) + len(s.stage_lengths)
        assert s.nominal_phases <= bound

    def test_validation(self):
        with pytest.raises(ParameterError):
            Theorem2Schedule(n=10, k=2, c=5.0)  # needs c > 5


class TestTheorem3Schedule:
    def test_from_lambda(self):
        s = Theorem3Schedule.from_lambda(n=256, lam=3, c=4.0)
        cn = 4.0 * 256
        assert s.k == pytest.approx(cn ** (1 / 3) * math.log(cn))
        assert s.nominal_phases == 3
        assert s.target_colors == 3

    def test_invalid_lambda(self):
        with pytest.raises(ParameterError):
            Theorem3Schedule.from_lambda(n=10, lam=0)


class TestBounds:
    def test_theorem1_bounds(self):
        b = theorem1_bounds(n=100, k=4, c=4.0)
        assert b.diameter == 6
        assert b.colors == pytest.approx(400 ** 0.25 * math.log(400))
        assert b.rounds == pytest.approx(4 * b.colors)
        assert b.failure_probability == pytest.approx(0.75)

    def test_theorem2_bounds(self):
        b = theorem2_bounds(n=100, k=4, c=6.0)
        assert b.diameter == 6
        assert b.colors == pytest.approx(16 * 600 ** 0.25)
        assert b.failure_probability == pytest.approx(5 / 6)

    def test_theorem2_improves_on_theorem1_for_small_k(self):
        # Theorem 2's 4k(cn)^{1/k} beats Theorem 1's (cn)^{1/k}·ln(cn)
        # exactly when ln(cn) > 4k; check pairs inside that regime.
        for n, k in ((10_000, 2), (1_000_000, 3)):
            assert math.log(6.0 * n) > 4 * k  # regime precondition
            assert theorem2_bounds(n, k, 6.0).colors < theorem1_bounds(n, k, 6.0).colors

    def test_theorem3_bounds(self):
        b = theorem3_bounds(n=100, lam=2, c=4.0)
        cn = 400
        k = cn ** 0.5 * math.log(cn)
        assert b.diameter == pytest.approx(2 * k)
        assert b.colors == 2
        assert b.rounds == pytest.approx(2 * k)

    def test_theorem3_validation(self):
        with pytest.raises(ParameterError):
            theorem3_bounds(10, 0)

    def test_tradeoff_inversion(self):
        # Theorem 3 with lambda colours needs diameter ~ the k that
        # Theorem 1 would need to get lambda colours — the paper's
        # "exactly the inverse tradeoff".
        n, c, lam = 1000, 4.0, 3
        b3 = theorem3_bounds(n, lam, c)
        assert b3.colors < theorem1_bounds(n, math.log(n), c).colors
        assert b3.diameter > theorem1_bounds(n, math.log(n), c).diameter
