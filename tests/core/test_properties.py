"""Hypothesis property tests for the decomposition algorithms.

These assert the paper's invariants on arbitrary random graphs and seeds:
partition-ness, proper supergraph colouring, strong-diameter bounds
(conditioned on no truncation event, exactly as the paper states them),
and distributed/centralized agreement.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.core.carving import carve_block
from repro.core.distributed_en import decompose_distributed
from repro.graphs import GraphBuilder, connected_components, strong_diameter


@st.composite
def graphs(draw, max_n: int = 16, max_extra_edges: int = 24):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), max_size=max_extra_edges))
        if possible
        else []
    )
    builder = GraphBuilder(n)
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build()


seeds = st.integers(min_value=0, max_value=10_000)
ks = st.integers(min_value=2, max_value=4)


@given(graphs(), seeds, ks)
@settings(max_examples=60, deadline=None)
def test_en_always_valid_decomposition(g, seed, k):
    decomposition, trace = elkin_neiman.decompose(g, k=k, seed=seed)
    decomposition.validate()
    if not trace.had_truncation_event:
        assert decomposition.max_strong_diameter() <= 2 * k - 2


@given(graphs(), seeds, ks)
@settings(max_examples=60, deadline=None)
def test_en_clusters_always_connected(g, seed, k):
    decomposition, _ = elkin_neiman.decompose(g, k=k, seed=seed)
    for cluster in decomposition.clusters:
        assert not math.isinf(strong_diameter(g, cluster.vertices))


@given(graphs(max_n=12), seeds)
@settings(max_examples=30, deadline=None)
def test_distributed_equals_centralized(g, seed):
    central, _ = elkin_neiman.decompose(g, k=3, seed=seed)
    distributed = decompose_distributed(g, k=3, seed=seed, mode="toptwo")
    assert central.cluster_index_map() == distributed.decomposition.cluster_index_map()


@given(graphs(max_n=12), seeds)
@settings(max_examples=30, deadline=None)
def test_toptwo_equals_full(g, seed):
    full = decompose_distributed(g, k=3, seed=seed, mode="full")
    toptwo = decompose_distributed(g, k=3, seed=seed, mode="toptwo")
    assert (
        full.decomposition.cluster_index_map()
        == toptwo.decomposition.cluster_index_map()
    )


@given(graphs(), seeds)
@settings(max_examples=40, deadline=None)
def test_ls_always_valid_weak_decomposition(g, seed):
    decomposition, _ = linial_saks.decompose(g, k=3, seed=seed)
    decomposition.validate(max_diameter=2 * 3 - 2, strong=False)


@given(
    graphs(),
    st.dictionaries(
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    ),
)
@settings(max_examples=60, deadline=None)
def test_carve_block_invariants(g, raw_radii):
    radii = {v: r for v, r in raw_radii.items() if v < g.num_vertices}
    for v in g.vertices():
        radii.setdefault(v, 0.0)
    outcome = carve_block(g, set(g.vertices()), radii)
    # Joiners have centers; non-joiners don't.
    assert set(outcome.center_of) == outcome.block
    # Adjacent joiners share a center (Lemma 4's key step).
    for u, v in g.edges():
        if u in outcome.block and v in outcome.block:
            assert outcome.center_of[u] == outcome.center_of[v]
    # Every component of the block is center-pure and contains its center.
    for component in connected_components(g, active=outcome.block, universe=sorted(outcome.block)):
        centers = {outcome.center_of[x] for x in component}
        assert len(centers) == 1


@given(graphs(max_n=14), seeds, ks)
@settings(max_examples=30, deadline=None)
def test_en_label_independence_of_guarantees(g, seed, k):
    """Relabelling vertices cannot break any guarantee (no IDs are used
    in clustering decisions; the specific partition may differ because
    the radius streams are keyed by vertex id)."""
    from repro.graphs import relabel

    perm = list(reversed(range(g.num_vertices)))
    h = relabel(g, perm)
    decomposition, trace = elkin_neiman.decompose(h, k=k, seed=seed)
    decomposition.validate()
    if not trace.had_truncation_event:
        assert decomposition.max_strong_diameter() <= 2 * k - 2
