"""Direct tests of the generic carving-process driver."""

from __future__ import annotations

import math

import pytest

from repro.core.driver import run_carving_process
from repro.core.params import Theorem1Schedule, Theorem2Schedule
from repro.errors import SimulationError
from repro.graphs import Graph, erdos_renyi, path_graph


class TestRunCarvingProcess:
    def test_phase_trace_fields(self):
        graph = erdos_renyi(40, 0.1, seed=1)
        schedule = Theorem1Schedule(n=40, k=3, c=4.0)
        decomposition, trace = run_carving_process(graph, schedule, seed=2)
        assert trace.nominal_phases == schedule.nominal_phases
        for index, phase in enumerate(trace.phases, start=1):
            assert phase.phase == index
            assert phase.beta == pytest.approx(schedule.beta(index))
            assert phase.block_size >= 0
            assert phase.max_radius >= 0
        # active_before decreases by the previous block size.
        for prev, nxt in zip(trace.phases, trace.phases[1:]):
            assert nxt.active_before == prev.active_before - prev.block_size

    def test_survivors_match_phase_blocks(self):
        graph = path_graph(25)
        schedule = Theorem1Schedule(n=25, k=2, c=4.0)
        _, trace = run_carving_process(graph, schedule, seed=3)
        alive = 25
        for phase, survivors in zip(trace.phases, trace.survivors):
            alive -= phase.block_size
            assert survivors == alive
        assert trace.survivors[-1] == 0

    def test_range_cap_changes_only_with_large_radii(self):
        graph = erdos_renyi(40, 0.1, seed=4)
        schedule = Theorem1Schedule(n=40, k=3, c=4.0)
        capped, trace_capped = run_carving_process(
            graph, schedule, seed=5, use_range_cap=True
        )
        free, trace_free = run_carving_process(
            graph, schedule, seed=5, use_range_cap=False
        )
        if not trace_free.had_truncation_event:
            # No radius ever exceeded k + 1; capping at floor(k) can still
            # truncate radii in (k, k+1), so equality is the common case
            # but not guaranteed.  Partition validity always holds.
            capped.validate()
            free.validate()

    def test_max_phases_default_generous(self):
        graph = path_graph(10)
        schedule = Theorem1Schedule(n=10, k=2, c=4.0)
        _, trace = run_carving_process(graph, schedule, seed=6)
        assert trace.total_phases <= 10 * schedule.nominal_phases + 100

    def test_max_phases_enforced(self):
        graph = path_graph(30)
        schedule = Theorem1Schedule(n=30, k=2, c=4.0)
        with pytest.raises(SimulationError):
            run_carving_process(graph, schedule, seed=7, max_phases=1)

    def test_theorem2_schedule_betas_recorded(self):
        graph = erdos_renyi(60, 0.06, seed=8)
        schedule = Theorem2Schedule(n=60, k=3, c=6.0)
        _, trace = run_carving_process(graph, schedule, seed=9)
        recorded = [phase.beta for phase in trace.phases]
        expected = [schedule.beta(phase.phase) for phase in trace.phases]
        assert recorded == pytest.approx(expected)

    def test_empty_graph_zero_phases(self):
        schedule = Theorem1Schedule(n=1, k=2, c=4.0)
        decomposition, trace = run_carving_process(Graph(0), schedule)
        assert trace.total_phases == 0
        assert decomposition.num_clusters == 0
        assert trace.exhausted_within_nominal

    def test_truncation_events_recorded_per_phase(self):
        # Force events with a tiny beta: radii are huge, r >= k+1 certain.
        graph = path_graph(5)
        schedule = Theorem1Schedule(n=5, k=1, c=4.0)
        decomposition, trace = run_carving_process(graph, schedule, seed=10)
        flat = [event for phase in trace.phases for event in phase.truncation_events]
        assert flat == trace.truncation_events
        decomposition.validate()
