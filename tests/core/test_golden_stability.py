"""Golden-decomposition stability: fixed seeds must reproduce exactly.

The fixtures in ``tests/data/golden_decompositions.json`` were captured
from the pre-CSR kernel; every algorithm must keep producing identical
clusters (indices, colours, members, centers), traces and message counts
for the same seeds.  This is the regression net for the determinism
contract: "identical decompositions for identical seeds, before and after
any kernel change".
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.baselines import ball_carving, linial_saks
from repro.core import elkin_neiman, high_radius, staged
from repro.core.distributed_en import decompose_distributed
from repro.graphs import parse_graph_spec

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent.parent / "data" / "golden_decompositions.json")
    .read_text(encoding="utf8")
)

CASES = [
    ("er:120:0.05", 3, 7),
    ("er:200:0.02", 4, 20160217),
    ("grid:12:12", 4, 11),
    ("conn:150:0.02", 3, 99),
    ("tree:2:7", 3, 5),
]


def cluster_map(decomposition):
    return [
        [cl.index, cl.color, sorted(cl.vertices), cl.center]
        for cl in decomposition.clusters
    ]


@pytest.mark.parametrize("spec,k,seed", CASES)
def test_elkin_neiman_golden(spec, k, seed):
    want = GOLDEN[f"{spec}|k={k}|seed={seed}"]
    graph = parse_graph_spec(spec, seed=seed)
    decomposition, trace = elkin_neiman.decompose(graph, k=k, seed=seed)
    assert cluster_map(decomposition) == want["en"]
    assert trace.total_phases == want["en_phases"]
    assert trace.survivors == want["en_survivors"]


@pytest.mark.parametrize("spec,k,seed", CASES)
def test_linial_saks_golden(spec, k, seed):
    want = GOLDEN[f"{spec}|k={k}|seed={seed}"]
    graph = parse_graph_spec(spec, seed=seed)
    decomposition, _ = linial_saks.decompose(graph, k=k, seed=seed)
    assert cluster_map(decomposition) == want["ls"]


@pytest.mark.parametrize("spec,k,seed", CASES)
def test_ball_carving_golden(spec, k, seed):
    want = GOLDEN[f"{spec}|k={k}|seed={seed}"]
    graph = parse_graph_spec(spec, seed=seed)
    decomposition, _ = ball_carving.decompose(graph, k=k)
    assert cluster_map(decomposition) == want["ball"]


def test_distributed_golden():
    want = GOLDEN["distributed|conn:80:0.04|k=3|seed=3"]
    graph = parse_graph_spec("conn:80:0.04", seed=3)
    result = decompose_distributed(graph, k=3, seed=3)
    assert cluster_map(result.decomposition) == want["dist"]
    assert result.rounds_per_phase == want["rounds"]
    assert result.stats.messages_sent == want["messages"]


def test_variants_golden():
    want = GOLDEN["variants|er:100:0.05|seed=13"]
    graph = parse_graph_spec("er:100:0.05", seed=13)
    st, _ = staged.decompose(graph, k=3, c=6.0, seed=13)
    hr, _ = high_radius.decompose(graph, lam=3, seed=13)
    assert cluster_map(st) == want["staged"]
    assert cluster_map(hr) == want["high_radius"]
