"""Mechanical verification of the paper's structural claims (§2).

These tests carve blocks on many seeded instances and check, vertex by
vertex, the exact statements of Observation 2, Claim 3, Lemma 4 and the
supporting conventions, rather than just the end-to-end theorem bounds.
"""

from __future__ import annotations

import math

import pytest

from repro.core.carving import carve_block
from repro.core.shifts import sample_phase_radii
from repro.graphs import (
    bfs_distances,
    connected_components,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected,
    shortest_path,
    strong_diameter,
)

CASES = [
    ("er", erdos_renyi(60, 0.07, seed=1)),
    ("grid", grid_graph(7, 7)),
    ("conn", random_connected(50, 0.03, seed=2)),
    ("path", path_graph(40)),
]


def carve_cases(beta: float = 0.8, phases: int = 6):
    """Yield (graph, radii, outcome) over several graphs/phases."""
    for name, graph in CASES:
        active = set(graph.vertices())
        for phase in range(1, phases + 1):
            if not active:
                break
            radii = sample_phase_radii(99, phase, active, beta)
            outcome = carve_block(graph, active, radii)
            yield graph, active.copy(), radii, outcome
            active -= outcome.block


class TestObservation2:
    """If y chose v1 at phase t then d_Gt(v1, y) < r_v1 - 1."""

    def test_holds_everywhere(self):
        checked = 0
        for graph, active, radii, outcome in carve_cases():
            for y in outcome.block:
                v1 = outcome.center_of[y]
                d = bfs_distances(graph, v1, active=active)[y]
                assert d < radii[v1] - 1.0
                checked += 1
        assert checked > 50  # the sweep must actually exercise the claim


class TestClaim3:
    """Every vertex on a shortest v->y path (in G_t) also chose v."""

    def test_holds_everywhere(self):
        checked = 0
        for graph, active, radii, outcome in carve_cases():
            for y in outcome.block:
                v = outcome.center_of[y]
                path = shortest_path(graph, v, y, active=active)
                assert path is not None
                for x in path:
                    assert x in outcome.block
                    assert outcome.center_of[x] == v
                    checked += 1
        assert checked > 50


class TestLemma4:
    """Blocks have strong diameter <= 2k-2; components are center-pure."""

    def test_components_have_single_center(self):
        for graph, active, radii, outcome in carve_cases():
            for component in connected_components(
                graph, active=outcome.block, universe=sorted(outcome.block)
            ):
                centers = {outcome.center_of[x] for x in component}
                assert len(centers) == 1
                # The center itself belongs to its own cluster.
                (center,) = centers
                assert center in component

    def test_strong_diameter_bound(self):
        for graph, active, radii, outcome in carve_cases():
            if not outcome.block:
                continue
            # Lemma 4's bound with k replaced by the realised max radius:
            # dist(center, y) <= r - 1, so diameter <= 2*(ceil(max r) - 1).
            bound = 2.0 * (max(radii.values()) - 1.0)
            for component in connected_components(
                graph, active=outcome.block, universe=sorted(outcome.block)
            ):
                d = strong_diameter(graph, component)
                assert not math.isinf(d)
                assert d <= max(bound, 0.0) + 1e-9

    def test_adjacent_joiners_share_center(self):
        for graph, active, radii, outcome in carve_cases():
            for u, v in graph.edges():
                if u in outcome.block and v in outcome.block:
                    assert outcome.center_of[u] == outcome.center_of[v]


class TestConventions:
    def test_m_values_nonnegative(self):
        """'Observe that all m_i are nonnegative' — a broadcast only
        reaches y when d <= floor(r) <= r."""
        for graph, active, radii, outcome in carve_cases():
            for y, record in outcome.top_two.items():
                assert record.best >= 0.0
                if record.count > 1:
                    assert record.second >= 0.0

    def test_own_broadcast_always_heard(self):
        for graph, active, radii, outcome in carve_cases():
            for y, record in outcome.top_two.items():
                assert record.best >= radii[y] - 1e-12
