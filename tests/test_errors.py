"""Tests for the exception hierarchy and public package surface."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    CongestViolation,
    DecompositionError,
    GraphError,
    ParameterError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphError, SimulationError, CongestViolation, DecompositionError, ParameterError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_congest_is_simulation_error(self):
        assert issubclass(CongestViolation, SimulationError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise GraphError("x")


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.applications
        import repro.baselines
        import repro.core
        import repro.distributed
        import repro.graphs

        for module in (
            repro.analysis,
            repro.applications,
            repro.baselines,
            repro.core,
            repro.distributed,
            repro.graphs,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_quickstart_docstring_flow(self):
        # The README / __init__ quickstart must actually work.
        from repro import decompose, erdos_renyi

        graph = erdos_renyi(200, 0.03, seed=1)
        decomposition, trace = decompose(graph, k=4)
        if not trace.had_truncation_event:
            decomposition.validate(max_diameter=2 * 4 - 2, strong=True)
        assert decomposition.num_colors <= trace.total_phases
