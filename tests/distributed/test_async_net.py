"""Unit tests for the asynchronous engine: schedules, faults, parity."""

from __future__ import annotations

import pytest

from repro.distributed import (
    AsyncNetwork,
    Context,
    CrashWindow,
    FaultPlan,
    NodeAlgorithm,
    Schedule,
    SyncNetwork,
    parse_schedule,
)
from repro.distributed.schedule import (
    FifoSchedule,
    LatestSchedule,
    RandomDelaySchedule,
    StarvationSchedule,
)
from repro.errors import CongestViolation, ParameterError
from repro.graphs import complete_graph, cycle_graph, path_graph


class Echo(NodeAlgorithm):
    """Sends its id to all neighbours once, records everything received."""

    def __init__(self) -> None:
        self.received: list[tuple[int, object]] = []

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(("id", ctx.node_id))

    def on_round(self, ctx: Context, inbox) -> None:
        for message in inbox:
            self.received.append((message.sender, message.payload))


class Ticker(NodeAlgorithm):
    """Broadcasts every round; records per-round inboxes and round ids."""

    def __init__(self) -> None:
        self.rounds_seen: list[int] = []
        self.inboxes: list[list[int]] = []

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(("tick", 0))

    def on_round(self, ctx: Context, inbox) -> None:
        self.rounds_seen.append(ctx.round_number)
        self.inboxes.append([message.sender for message in inbox])
        ctx.broadcast(("tick", ctx.round_number))


# ---------------------------------------------------------------------------
# Schedule parsing + semantics
# ---------------------------------------------------------------------------
class TestScheduleParsing:
    def test_fifo_default_and_none(self):
        assert isinstance(parse_schedule("fifo", 1), FifoSchedule)
        assert isinstance(parse_schedule(None, 1), FifoSchedule)
        assert parse_schedule("fifo", 1).bound == 0.0

    def test_existing_schedule_passes_through(self):
        schedule = LatestSchedule(2.0, "latest:2")
        assert parse_schedule(schedule, 7) is schedule

    def test_spec_roundtrip(self):
        for spec, cls in (
            ("random:3", RandomDelaySchedule),
            ("random:2:geom", RandomDelaySchedule),
            ("latest:4", LatestSchedule),
            ("starve:2", StarvationSchedule),
            ("starve:3:0.25", StarvationSchedule),
        ):
            schedule = parse_schedule(spec, 1)
            assert isinstance(schedule, cls)
            assert schedule.spec == spec
            assert schedule.bound > 0

    @pytest.mark.parametrize(
        "spec",
        [
            "fifo:1",
            "random",
            "random:0",
            "random:2:weird",
            "random:x",
            "latest",
            "latest:0",
            "starve:0",
            "starve:2:0",
            "starve:2:1.5",
            "warp:3",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ParameterError):
            parse_schedule(spec, 1)

    def test_random_delays_bounded_and_seeded(self):
        a = parse_schedule("random:3", 42)
        b = parse_schedule("random:3", 42)
        delays_a = [a.assign(0, 1, 1, i)[0] for i in range(50)]
        delays_b = [b.assign(0, 1, 1, i)[0] for i in range(50)]
        assert delays_a == delays_b  # same (seed, spec) -> same stream
        assert all(0.0 <= d <= 3.0 for d in delays_a)
        assert parse_schedule("random:3", 43).assign(0, 1, 1, 0) != a.assign(
            0, 1, 1, 50
        )

    def test_geom_delays_half_unit_hops(self):
        schedule = parse_schedule("random:2:geom", 5)
        delays = {schedule.assign(0, 1, 1, i)[0] for i in range(200)}
        assert delays <= {0.0, 0.5, 1.0, 1.5, 2.0}
        assert 0.0 in delays  # p=1/2: most messages are on time

    def test_latest_reverses_tie_order(self):
        schedule = parse_schedule("latest:2", 1)
        assert schedule.assign(0, 1, 1, 10) == (2.0, -10)
        assert schedule.assign(5, 1, 1, 11) == (2.0, -11)

    def test_starvation_is_stateless_per_edge(self):
        a = parse_schedule("starve:2:0.5", 9)
        b = parse_schedule("starve:2:0.5", 9)
        edges = [(u, v) for u in range(8) for v in range(8) if u != v]
        assert [a.starved(u, v) for u, v in edges] == [
            b.starved(u, v) for u, v in edges
        ]
        kinds = {a.starved(u, v) for u, v in edges}
        assert kinds == {True, False}  # both behaviours present at 0.5

    def test_starvation_full_fraction_delays_everything(self):
        schedule = parse_schedule("starve:2:1.0", 3)
        assert all(
            schedule.assign(u, v, 1, 0)[0] == 2.0
            for u in range(4)
            for v in range(4)
            if u != v
        )


# ---------------------------------------------------------------------------
# Fault-plan parsing + semantics
# ---------------------------------------------------------------------------
class TestFaultParsing:
    def test_fault_free_sentinels(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("none") is None

    def test_full_grammar(self):
        plan = FaultPlan.parse("crash:3@2-6,5@4-;drop:0.1;redeliver")
        assert plan.windows == (
            CrashWindow(node=3, start=2, end=6),
            CrashWindow(node=5, start=4, end=None),
        )
        assert plan.drop_rate == 0.1
        assert plan.redeliver
        assert plan.crashed(3, 2) and plan.crashed(3, 5)
        assert not plan.crashed(3, 6) and not plan.crashed(3, 1)
        assert plan.crashed(5, 1000)  # no recovery

    @pytest.mark.parametrize(
        "spec",
        [
            "crash:3",
            "crash:3@x-2",
            "crash:3@0-2",  # windows start at pulse 1
            "crash:3@4-4",  # empty window
            "drop:nope",
            "drop:1.0",
            "explode:3",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ParameterError):
            FaultPlan.parse(spec)

    def test_drop_stream_replayable(self):
        rolls = []
        for _ in range(2):
            plan = FaultPlan.parse("drop:0.3")
            plan.reset(17)
            rolls.append([plan.drops(0, 1, p) for p in range(200)])
        assert rolls[0] == rolls[1]
        assert any(rolls[0]) and not all(rolls[0])

    def test_crash_window_must_name_existing_node(self):
        with pytest.raises(ParameterError, match="graph has n=3"):
            AsyncNetwork(path_graph(3), lambda v: Echo(), faults="crash:7@1-2")


# ---------------------------------------------------------------------------
# Crash / recovery / redelivery semantics
# ---------------------------------------------------------------------------
class TestCrashSemantics:
    def test_crashed_node_misses_rounds_but_keeps_state(self):
        net = AsyncNetwork(path_graph(3), lambda v: Ticker(), faults="crash:1@2-4")
        net.run_rounds(6)
        # Node 1 is down for pulses 2 and 3: no on_round, no sends.
        assert net.algorithm(1).rounds_seen == [1, 4, 5, 6]
        assert net.algorithm(0).rounds_seen == [1, 2, 3, 4, 5, 6]
        # Node 0's only neighbour is 1; silence at pulses 3-4 (nothing was
        # sent at pulses 2-3), traffic resumes at pulse 5.
        assert net.algorithm(0).inboxes == [[1], [1], [], [], [1], [1]]
        assert net.async_stats.crashes == 1
        assert net.async_stats.recoveries == 1
        # Messages addressed to the crashed node are dropped: 2 senders x
        # 2 crashed pulses.
        assert net.async_stats.dropped == 4
        kinds = [event["kind"] for event in net.fault_plan.log]
        assert kinds == ["crash", "crash-drop", "crash-drop", "crash-drop",
                        "crash-drop", "recover"]
        net.close()  # Tickers never halt; deliberate abandonment

    def test_redelivery_leads_first_recovered_inbox(self):
        net = AsyncNetwork(
            path_graph(3), lambda v: Ticker(), faults="crash:1@2-4;redeliver"
        )
        net.run_rounds(6)
        ticker = net.algorithm(1)
        assert ticker.rounds_seen == [1, 4, 5, 6]
        # Pulse 4's inbox: the 4 buffered messages (send order) lead, then
        # the regular pulse-4 arrivals.
        assert ticker.inboxes[1] == [0, 2, 0, 2, 0, 2]
        assert net.async_stats.redelivered == 4
        assert net.async_stats.dropped == 0
        net.close()

    def test_crashes_are_not_halts(self):
        net = AsyncNetwork(path_graph(3), lambda v: Ticker(), faults="crash:1@2-")
        net.run_rounds(3)
        assert net.crashed(1)
        assert not net.halted(1)
        assert not net.all_halted
        net.close()

    def test_permanent_crash_with_redelivery_strands_buffer(self):
        net = AsyncNetwork(
            path_graph(3), lambda v: Ticker(), faults="crash:1@2-;redeliver"
        )
        net.run_rounds(4)
        assert net.messages_in_flight > 0  # parked in the redelivery buffer
        assert net.leaked
        net.close()
        assert not net.leaked

    def test_halted_node_cannot_crash(self):
        class HaltAtOnce(NodeAlgorithm):
            def on_round(self, ctx: Context, inbox) -> None:
                ctx.halt()

        net = AsyncNetwork(
            path_graph(2), lambda v: HaltAtOnce(), faults="crash:0@2-4"
        )
        net.run_rounds(4)
        assert net.all_halted
        assert net.async_stats.crashes == 0


# ---------------------------------------------------------------------------
# Sync parity on the degenerate schedule
# ---------------------------------------------------------------------------
class TestSyncParity:
    def test_fifo_echo_bit_identical(self):
        sync_net = SyncNetwork(complete_graph(5), lambda v: Echo(), seed=3)
        async_net = AsyncNetwork(complete_graph(5), lambda v: Echo(), seed=3)
        sync_net.run_rounds(2)
        async_net.run_rounds(2)
        assert sync_net.stats == async_net.stats
        for v in range(5):
            assert sync_net.algorithm(v).received == async_net.algorithm(v).received

    def test_congest_violation_message_identical(self):
        class Chatter(NodeAlgorithm):
            def on_start(self, ctx: Context) -> None:
                for _ in range(5):
                    ctx.broadcast(("x", 1, 2, 3))

        errors = []
        for engine in (SyncNetwork, AsyncNetwork):
            with pytest.raises(CongestViolation) as info:
                engine(path_graph(2), lambda v: Chatter(), word_budget=8).start()
            errors.append(str(info.value))
        assert errors[0] == errors[1]

    def test_messages_to_halted_dropped_like_sync(self):
        class HaltFirst(NodeAlgorithm):
            def __init__(self, vertex: int) -> None:
                self.vertex = vertex
                self.got = 0

            def on_round(self, ctx: Context, inbox) -> None:
                self.got += len(inbox)
                if ctx.round_number == 1 and self.vertex == 0:
                    ctx.halt()
                elif ctx.round_number == 1:
                    ctx.broadcast("late")

        net = AsyncNetwork(path_graph(2), lambda v: HaltFirst(v))
        net.run_rounds(3)
        assert net.algorithm(0).got == 0
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 0
        assert net.messages_in_flight == 0

    def test_latest_schedule_reverses_inbox_order(self):
        net = AsyncNetwork(complete_graph(4), lambda v: Echo(), delivery="latest:2")
        net.run_rounds(1)
        # Sync order would be senders 1, 2, 3; the maximal adversary
        # delivers back-to-front.
        assert [s for s, _ in net.algorithm(0).received] == [3, 2, 1]
        assert net.async_stats.reordered > 0
        assert net.async_stats.delayed == 12

    def test_dropped_messages_counted_sent_never_delivered(self):
        net = AsyncNetwork(
            cycle_graph(6), lambda v: Echo(), seed=2, faults="drop:0.5"
        )
        net.run_rounds(1)
        assert net.stats.messages_sent == 12
        assert net.async_stats.dropped > 0
        assert (
            net.stats.messages_delivered
            == net.stats.messages_sent - net.async_stats.dropped
        )


# ---------------------------------------------------------------------------
# Leak guard plumbing
# ---------------------------------------------------------------------------
class TestLeakGuard:
    def test_quiescent_network_not_leaked(self):
        net = AsyncNetwork(path_graph(4), lambda v: Echo())
        net.run_until_quiet()
        assert net.messages_in_flight == 0
        assert not net.leaked

    def test_abandoned_network_is_leaked_until_closed(self):
        net = AsyncNetwork(path_graph(4), lambda v: Ticker())
        net.run_rounds(2)  # Tickers rebroadcast forever: events queued
        assert net.messages_in_flight > 0
        assert net.leaked
        net.close()
        assert not net.leaked

    def test_run_until_quiet_ignores_stranded_redelivery(self):
        # The heap drains (the crashed node's neighbours fall silent once
        # nothing echoes back), while the redelivery buffer never can: the
        # loop must terminate rather than spin on messages_in_flight.
        net = AsyncNetwork(
            path_graph(3), lambda v: Echo(), faults="crash:1@1-;redeliver"
        )
        net.run_until_quiet(max_rounds=50)
        assert net.messages_in_flight > 0  # the stranded buffer
        net.close()
