"""Tests for the reusable distributed primitives."""

from __future__ import annotations

import pytest

from repro.distributed import (
    run_bfs_tree,
    run_convergecast_sum,
    run_flood,
    run_leader_election,
)
from repro.graphs import (
    Graph,
    bfs_distances,
    cycle_graph,
    diameter,
    grid_graph,
    path_graph,
    star_graph,
)


class TestFlood:
    def test_arrival_equals_distance(self, zoo_graph):
        arrivals = run_flood(zoo_graph, 0)
        assert arrivals == bfs_distances(zoo_graph, 0)

    def test_disconnected_unreached(self):
        g = Graph(4, [(0, 1), (2, 3)])
        arrivals = run_flood(g, 0)
        assert set(arrivals) == {0, 1}

    def test_root_at_zero(self):
        assert run_flood(path_graph(5), 3)[3] == 0


class TestBFSTree:
    def test_depths_equal_distances(self, zoo_graph):
        _, depths = run_bfs_tree(zoo_graph, 0)
        assert depths == bfs_distances(zoo_graph, 0)

    def test_parents_form_tree(self):
        g = grid_graph(4, 5)
        parents, depths = run_bfs_tree(g, 0)
        assert parents[0] == -1
        for v, parent in parents.items():
            if v == 0:
                continue
            assert g.has_edge(v, parent)
            assert depths[parent] == depths[v] - 1

    def test_star_all_children_of_center(self):
        parents, _ = run_bfs_tree(star_graph(8), 0)
        assert all(parents[v] == 0 for v in range(1, 8))


class TestConvergecast:
    def test_counts_vertices(self, zoo_graph):
        from repro.graphs import component_of

        component = component_of(zoo_graph, 0)
        total = run_convergecast_sum(
            zoo_graph, 0, {v: 1.0 for v in zoo_graph.vertices()}
        )
        assert total == len(component)

    def test_weighted_sum(self):
        g = path_graph(6)
        total = run_convergecast_sum(g, 2, {v: float(v) for v in g.vertices()})
        assert total == sum(range(6))

    def test_single_vertex(self):
        assert run_convergecast_sum(Graph(1), 0, {0: 7.0}) == 7.0


class TestLeaderElection:
    def test_connected_elects_zero(self, zoo_graph):
        leaders = run_leader_election(zoo_graph)
        from repro.graphs import connected_components

        for component in connected_components(zoo_graph):
            expected = min(component)
            assert all(leaders[v] == expected for v in component)

    def test_stabilises_within_diameter_plus_one(self):
        g = cycle_graph(12)
        # run_until_quiet stops when no messages are in flight; the number
        # of rounds is at most diameter + 1 (information travel time).
        from repro.distributed import SyncNetwork
        from repro.distributed.protocols import LeaderElectionNode

        network = SyncNetwork(g, lambda v: LeaderElectionNode(v))
        rounds = network.run_until_quiet()
        assert rounds <= diameter(g) + 2
