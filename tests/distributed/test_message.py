"""Unit tests for message word-cost accounting."""

from __future__ import annotations

from repro.distributed import Message, payload_words


class TestPayloadWords:
    def test_scalars_cost_one(self):
        assert payload_words(None) == 1
        assert payload_words(True) == 1
        assert payload_words(7) == 1
        assert payload_words(3.14) == 1

    def test_short_string(self):
        assert payload_words("b") == 1
        assert payload_words("leftleft") == 1

    def test_long_string(self):
        assert payload_words("x" * 17) == 3

    def test_tuple_sums(self):
        assert payload_words(("b", 3, 2.5, 1)) == 4

    def test_nested(self):
        assert payload_words(("item", (1, 2), [3.0])) == 4

    def test_empty_containers(self):
        assert payload_words(()) == 1
        assert payload_words({}) == 1
        assert payload_words([]) == 1

    def test_dict_counts_keys_and_values(self):
        assert payload_words({1: 2, 3: 4}) == 4

    def test_set(self):
        assert payload_words(frozenset({1, 2, 3})) == 3

    def test_fallback_object(self):
        class Thing:
            def __repr__(self) -> str:
                return "t" * 20

        assert payload_words(Thing()) == 3


class TestMessage:
    def test_make_computes_words(self):
        msg = Message.make(0, 1, ("b", 2, 1.5, 1), 3)
        assert msg.words == 4
        assert msg.sender == 0
        assert msg.receiver == 1
        assert msg.sent_round == 3

    def test_frozen(self):
        msg = Message.make(0, 1, "x", 0)
        try:
            msg.sender = 5  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised
