"""Tests for the simulator's execution tracing."""

from __future__ import annotations

from repro.distributed import (
    Context,
    NodeAlgorithm,
    SyncNetwork,
    TraceRecorder,
)
from repro.graphs import path_graph


class PingOnce(NodeAlgorithm):
    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(("ping", ctx.node_id))

    def on_round(self, ctx: Context, inbox) -> None:
        ctx.halt()


class TestTraceRecorder:
    def test_records_sends(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        sends = list(tracer.sends())
        # 0 and 2 broadcast once each (1 nbr), 1 broadcasts to 2 nbrs.
        assert len(sends) == 4
        assert all(event.kind == "send" for event in sends)
        assert all(event.round == 0 for event in sends)

    def test_records_halts(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        halts = list(tracer.halts())
        assert sorted(event.node for event in halts) == [0, 1, 2]
        assert all(event.round == 1 for event in halts)

    def test_node_filter(self):
        tracer = TraceRecorder(node_filter=lambda v: v == 1)
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        assert all(event.node == 1 for event in tracer.events)
        assert len(list(tracer.sends())) == 2

    def test_limit_truncates(self):
        tracer = TraceRecorder(limit=2)
        net = SyncNetwork(path_graph(4), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        assert len(tracer.events) == 2
        assert tracer.truncated

    def test_messages_between(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        on_edge = tracer.messages_between(0, 1)
        assert len(on_edge) == 2  # one each way
        assert {event.node for event in on_edge} == {0, 1}

    def test_rounds_grouping(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        grouped = tracer.rounds()
        assert set(grouped) == {0, 1}

    def test_no_tracer_no_events(self):
        net = SyncNetwork(path_graph(3), lambda v: PingOnce())
        net.run_rounds(2)  # simply must not crash

    def test_tracing_the_decomposition_protocol(self):
        from repro.core.distributed_en import decompose_distributed
        from repro.graphs import erdos_renyi

        # The protocol runs its own SyncNetwork; trace a manual copy.
        graph = path_graph(8)
        tracer = TraceRecorder()
        from repro.core.distributed_en import ENNodeAlgorithm

        net = SyncNetwork(
            graph, [ENNodeAlgorithm(v, 3, "toptwo") for v in range(8)], tracer=tracer
        )
        net.start()
        for v in range(8):
            net.algorithm(v).begin_phase(1, 1.0, 3)
        net.run_rounds(5)
        payload_tags = {event.payload[0] for event in tracer.sends()}
        assert payload_tags <= {"b", "left"}


class TestLimitHitBitIdentity:
    """A recorder that fills up mid-run must not perturb the run.

    Once the event bound is hit the recorder only flips ``truncated`` —
    results and :class:`NetworkStats` stay bit-identical to an untraced
    run, on both engines.
    """

    def test_sync_network_results_survive_a_full_recorder(self):
        from repro.graphs import erdos_renyi

        graph = erdos_renyi(24, 0.2, seed=3)

        def run(tracer):
            net = SyncNetwork(graph, lambda v: PingOnce(), tracer=tracer)
            net.run_rounds(3)
            return net.stats, [net.halted(v) for v in range(24)]

        plain_stats, plain_state = run(None)
        tracer = TraceRecorder(limit=1)
        traced_stats, traced_state = run(tracer)
        assert tracer.truncated and len(tracer.events) == 1
        assert traced_stats == plain_stats
        assert traced_state == plain_state

    def test_batch_engine_results_survive_a_full_recorder(self):
        from repro.engine import bfs_tree, flood, leader_election
        from repro.graphs import grid_graph

        graph = grid_graph(6, 6)
        for run, view in (
            (flood, lambda r: (r.arrival, r.stats)),
            (bfs_tree, lambda r: (r.depths, r.parents, r.stats)),
        ):
            plain = run(graph, 0)
            tracer = TraceRecorder(limit=2)
            traced = run(graph, 0, tracer=tracer)
            assert tracer.truncated
            assert view(traced) == view(plain)
        plain = leader_election(graph)
        tracer = TraceRecorder(limit=2)
        traced = leader_election(graph, tracer=tracer)
        assert tracer.truncated
        assert (traced.leader, traced.stats) == (plain.leader, plain.stats)

    def test_en_protocol_phase_survives_a_full_recorder(self):
        from repro.core.distributed_en import ENNodeAlgorithm
        from repro.graphs import erdos_renyi

        graph = erdos_renyi(20, 0.25, seed=9)

        def run_phase(tracer):
            net = SyncNetwork(
                graph,
                [ENNodeAlgorithm(v, 3, "toptwo") for v in range(20)],
                tracer=tracer,
            )
            net.start()
            for v in range(20):
                net.algorithm(v).begin_phase(1, 1.0, 3)
            net.run_rounds(5)
            return net.stats, [
                (net.algorithm(v).joined_phase, net.algorithm(v).center)
                for v in range(20)
            ]

        plain = run_phase(None)
        tracer = TraceRecorder(limit=3)
        traced = run_phase(tracer)
        assert tracer.truncated and len(tracer.events) == 3
        assert traced == plain
