"""Tests for the simulator's execution tracing."""

from __future__ import annotations

from repro.distributed import (
    Context,
    NodeAlgorithm,
    SyncNetwork,
    TraceRecorder,
)
from repro.graphs import path_graph


class PingOnce(NodeAlgorithm):
    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(("ping", ctx.node_id))

    def on_round(self, ctx: Context, inbox) -> None:
        ctx.halt()


class TestTraceRecorder:
    def test_records_sends(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        sends = list(tracer.sends())
        # 0 and 2 broadcast once each (1 nbr), 1 broadcasts to 2 nbrs.
        assert len(sends) == 4
        assert all(event.kind == "send" for event in sends)
        assert all(event.round == 0 for event in sends)

    def test_records_halts(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        halts = list(tracer.halts())
        assert sorted(event.node for event in halts) == [0, 1, 2]
        assert all(event.round == 1 for event in halts)

    def test_node_filter(self):
        tracer = TraceRecorder(node_filter=lambda v: v == 1)
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        assert all(event.node == 1 for event in tracer.events)
        assert len(list(tracer.sends())) == 2

    def test_limit_truncates(self):
        tracer = TraceRecorder(limit=2)
        net = SyncNetwork(path_graph(4), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        assert len(tracer.events) == 2
        assert tracer.truncated

    def test_messages_between(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        on_edge = tracer.messages_between(0, 1)
        assert len(on_edge) == 2  # one each way
        assert {event.node for event in on_edge} == {0, 1}

    def test_rounds_grouping(self):
        tracer = TraceRecorder()
        net = SyncNetwork(path_graph(3), lambda v: PingOnce(), tracer=tracer)
        net.run_rounds(2)
        grouped = tracer.rounds()
        assert set(grouped) == {0, 1}

    def test_no_tracer_no_events(self):
        net = SyncNetwork(path_graph(3), lambda v: PingOnce())
        net.run_rounds(2)  # simply must not crash

    def test_tracing_the_decomposition_protocol(self):
        from repro.core.distributed_en import decompose_distributed
        from repro.graphs import erdos_renyi

        # The protocol runs its own SyncNetwork; trace a manual copy.
        graph = path_graph(8)
        tracer = TraceRecorder()
        from repro.core.distributed_en import ENNodeAlgorithm

        net = SyncNetwork(
            graph, [ENNodeAlgorithm(v, 3, "toptwo") for v in range(8)], tracer=tracer
        )
        net.start()
        for v in range(8):
            net.algorithm(v).begin_phase(1, 1.0, 3)
        net.run_rounds(5)
        payload_tags = {event.payload[0] for event in tracer.sends()}
        assert payload_tags <= {"b", "left"}
