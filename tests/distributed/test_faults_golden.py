"""Golden adversarial executions: three canonical crash plans, pinned.

``tests/data/golden_async.json`` freezes complete observable outcomes —
decomposition checksum and cluster map, phase/round structure,
``NetworkStats``, adversary counters — of distributed EN runs on the
async engine under three canonical fault plans:

* ``crash-before-send`` — the node goes down at pulse 1, before its
  first broadcast round (its ``on_start`` traffic is already in flight);
* ``crash-mid-phase``   — the node drops out mid-phase and returns
  within the same run, its phase clock lagging the network;
* ``crash-recover-redeliver`` — a long outage under random delays with
  buffered redelivery at recovery.

Any engine change that shifts scheduling, fault application order, or
stream derivation shows up here as a diff against the goldens.  If the
change is *intentional*, regenerate by re-running the recipe below and
committing the result::

    fixtures are produced by decompose_distributed(graph, k, seed,
    backend="async", delivery=..., faults=...) on
    parse_graph_spec(payload["graph"], seed=payload["graph_seed"])
    with the span-annotated async counters — see this test's loader
    for the exact field set.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.distributed_en import decompose_distributed
from repro.experiments.adapters import _cluster_checksum
from repro.graphs import parse_graph_spec
from repro.telemetry import Telemetry

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "data" / "golden_async.json"


def _load():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf8"))


PAYLOAD = _load()


@pytest.fixture(scope="module")
def golden_graph():
    return parse_graph_spec(PAYLOAD["graph"], seed=PAYLOAD["graph_seed"])


@pytest.mark.parametrize(
    "plan", PAYLOAD["plans"], ids=[plan["name"] for plan in PAYLOAD["plans"]]
)
def test_golden_fault_plan_pinned(plan, golden_graph):
    telemetry = Telemetry()
    result = decompose_distributed(
        golden_graph,
        k=PAYLOAD["k"],
        seed=PAYLOAD["seed"],
        backend="async",
        delivery=plan["delivery"],
        faults=plan["faults"],
        telemetry=telemetry,
    )
    decomposition = result.decomposition
    assert _cluster_checksum(decomposition) == plan["checksum"]
    assert decomposition.num_colors == plan["colors"]
    assert decomposition.num_clusters == plan["clusters"]
    assert result.phases == plan["phases"]
    assert result.rounds_per_phase == plan["rounds_per_phase"]
    stats = result.stats
    for field, expected in plan["stats"].items():
        assert getattr(stats, field) == expected, field
    attrs = next(
        span for span in telemetry.spans if span["name"] == "en.decompose"
    )["attrs"]
    for counter, expected in plan["async"].items():
        assert attrs[counter] == expected, counter
    assert {
        str(v): c for v, c in decomposition.cluster_index_map().items()
    } == plan["cluster_index_map"]


def test_goldens_cover_the_three_canonical_plans():
    names = [plan["name"] for plan in PAYLOAD["plans"]]
    assert names == [
        "crash-before-send",
        "crash-mid-phase",
        "crash-recover-redeliver",
    ]
    # Each plan exercises a distinct failure shape: all crash + recover,
    # and the redelivery leg actually redelivers under real delays.
    assert all(plan["async"]["crashes"] == 1 for plan in PAYLOAD["plans"])
    assert all(plan["async"]["recoveries"] == 1 for plan in PAYLOAD["plans"])
    redeliver = PAYLOAD["plans"][2]["async"]
    assert redeliver["redelivered"] > 0
    assert redeliver["delayed"] > 0
    drops = [plan["async"]["dropped"] for plan in PAYLOAD["plans"]]
    assert drops[0] > 0 and drops[1] > 0 and drops[2] == 0
