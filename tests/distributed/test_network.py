"""Unit tests for the synchronous round engine."""

from __future__ import annotations

import random

import pytest

from repro.distributed import Context, Message, NodeAlgorithm, SyncNetwork
from repro.errors import CongestViolation, SimulationError
from repro.graphs import Graph, complete_graph, cycle_graph, erdos_renyi, path_graph


class Echo(NodeAlgorithm):
    """Sends its id to all neighbours once, records everything received."""

    def __init__(self) -> None:
        self.received: list[tuple[int, object]] = []

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(("id", ctx.node_id))

    def on_round(self, ctx: Context, inbox) -> None:
        for message in inbox:
            self.received.append((message.sender, message.payload))


class Flooder(NodeAlgorithm):
    """Floods a token from node 0; every node records first-arrival round."""

    def __init__(self) -> None:
        self.heard_at: int | None = None

    def on_start(self, ctx: Context) -> None:
        if ctx.node_id == 0:
            self.heard_at = 0
            ctx.broadcast("token")

    def on_round(self, ctx: Context, inbox) -> None:
        if self.heard_at is None and inbox:
            self.heard_at = ctx.round_number
            ctx.broadcast("token")


class TestDelivery:
    def test_on_start_messages_arrive_round_one(self):
        net = SyncNetwork(path_graph(3), lambda v: Echo())
        net.start()
        net.step()
        middle = net.algorithm(1)
        assert sorted(middle.received) == [(0, ("id", 0)), (2, ("id", 2))]

    def test_inbox_sorted_by_sender(self):
        net = SyncNetwork(complete_graph(4), lambda v: Echo())
        net.run_rounds(1)
        received = net.algorithm(0).received
        assert [s for s, _ in received] == [1, 2, 3]

    def test_flood_arrival_times_equal_distance(self):
        g = path_graph(6)
        net = SyncNetwork(g, lambda v: Flooder())
        net.run_rounds(6)
        for v in range(6):
            assert net.algorithm(v).heard_at == v

    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeAlgorithm):
            def on_start(self, ctx: Context) -> None:
                ctx.send(2, "oops")

        with pytest.raises(SimulationError, match="non-neighbour"):
            SyncNetwork(path_graph(3), lambda v: Bad()).start()

    def test_algorithm_count_mismatch(self):
        with pytest.raises(SimulationError, match="one algorithm per vertex"):
            SyncNetwork(path_graph(3), [Echo(), Echo()])


class TestHalting:
    def test_halted_node_gets_no_callbacks(self):
        calls: list[int] = []

        class Quitter(NodeAlgorithm):
            def on_round(self, ctx: Context, inbox) -> None:
                calls.append(ctx.round_number)
                ctx.halt()

        net = SyncNetwork(path_graph(2), lambda v: Quitter())
        net.run_rounds(3)
        assert calls == [1, 1]

    def test_messages_to_halted_dropped(self):
        class HaltFirst(NodeAlgorithm):
            def __init__(self, vertex: int) -> None:
                self.vertex = vertex
                self.got = 0

            def on_round(self, ctx: Context, inbox) -> None:
                self.got += len(inbox)
                if ctx.round_number == 1 and self.vertex == 0:
                    ctx.halt()
                elif ctx.round_number == 1:
                    ctx.broadcast("late")

        net = SyncNetwork(path_graph(2), lambda v: HaltFirst(v))
        net.run_rounds(3)
        assert net.algorithm(0).got == 0
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 0

    def test_send_after_halt_rejected(self):
        class Zombie(NodeAlgorithm):
            def on_round(self, ctx: Context, inbox) -> None:
                ctx.halt()
                ctx.send(ctx.neighbors[0], "ghost")

        with pytest.raises(SimulationError, match="after halting"):
            SyncNetwork(path_graph(2), lambda v: Zombie()).run_rounds(1)

    def test_all_halted(self):
        class Stop(NodeAlgorithm):
            def on_round(self, ctx: Context, inbox) -> None:
                ctx.halt()

        net = SyncNetwork(path_graph(3), lambda v: Stop())
        assert not net.all_halted
        net.run_rounds(1)
        assert net.all_halted


class TestStats:
    def test_round_count(self):
        net = SyncNetwork(path_graph(2), lambda v: Echo())
        net.run_rounds(5)
        assert net.stats.rounds == 5
        assert net.current_round == 5

    def test_message_and_word_totals(self):
        net = SyncNetwork(cycle_graph(4), lambda v: Echo())
        net.run_rounds(1)
        # Each of 4 nodes broadcasts to 2 neighbours: 8 messages x 2 words.
        assert net.stats.messages_sent == 8
        assert net.stats.messages_delivered == 8
        assert net.stats.words_sent == 16
        assert net.stats.max_words_per_edge_round == 2

    def test_stats_merge(self):
        from repro.distributed import NetworkStats

        a = NetworkStats(rounds=2, messages_sent=3, words_sent=5, max_words_per_edge_round=2)
        b = NetworkStats(rounds=1, messages_sent=1, words_sent=9, max_words_per_edge_round=7)
        merged = a.merge(b)
        assert merged.rounds == 3
        assert merged.messages_sent == 4
        assert merged.words_sent == 14
        assert merged.max_words_per_edge_round == 7

    def test_summary_string(self):
        net = SyncNetwork(path_graph(2), lambda v: Echo())
        net.run_rounds(1)
        assert "rounds=1" in net.stats.summary()


class TestCongestEnforcement:
    def test_within_budget_ok(self):
        net = SyncNetwork(path_graph(2), lambda v: Echo(), word_budget=2)
        net.run_rounds(1)

    def test_violation_raises(self):
        class Chatter(NodeAlgorithm):
            def on_start(self, ctx: Context) -> None:
                for _ in range(5):
                    ctx.broadcast(("x", 1, 2, 3))

        with pytest.raises(CongestViolation, match="budget"):
            SyncNetwork(path_graph(2), lambda v: Chatter(), word_budget=8).start()

    def test_budget_is_per_edge_per_round(self):
        class OnePerRound(NodeAlgorithm):
            def on_round(self, ctx: Context, inbox) -> None:
                ctx.broadcast(("x", 1))

        net = SyncNetwork(path_graph(2), lambda v: OnePerRound(), word_budget=2)
        net.run_rounds(10)  # 2 words per round per edge, never exceeds


class TestRunUntilQuiet:
    def test_quiet_after_flood(self):
        net = SyncNetwork(path_graph(4), lambda v: Flooder())
        rounds = net.run_until_quiet()
        assert rounds <= 5
        assert net.messages_in_flight == 0

    def test_liveness_guard(self):
        class Forever(NodeAlgorithm):
            def on_start(self, ctx: Context) -> None:
                ctx.broadcast("ping")

            def on_round(self, ctx: Context, inbox) -> None:
                ctx.broadcast("ping")

        net = SyncNetwork(path_graph(2), lambda v: Forever())
        with pytest.raises(SimulationError, match="not quiet"):
            net.run_until_quiet(max_rounds=10)


class ShufflingNetwork(SyncNetwork):
    """SyncNetwork with its pending queue shuffled before every round.

    The engine's inbox-order contract (``network.py`` docstring) says
    per-round inboxes are sorted by sender, making the internal order of
    ``_pending`` irrelevant — this subclass is the property test's
    adversary for that claim.
    """

    def __init__(self, *args, shuffle_seed: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._shuffle_rng = random.Random(shuffle_seed)

    def step(self) -> None:
        self._shuffle_rng.shuffle(self._pending)
        super().step()


class TestInboxOrderContract:
    """Shuffle-then-sort: pending-queue order never leaks into a run."""

    def test_inbox_sorted_despite_shuffled_queue(self):
        net = ShufflingNetwork(complete_graph(6), lambda v: Echo(), shuffle_seed=99)
        net.run_rounds(1)
        for v in range(6):
            senders = [s for s, _ in net.algorithm(v).received]
            assert senders == sorted(s for s in range(6) if s != v)

    @pytest.mark.parametrize("shuffle_seed", [1, 2, 3])
    def test_shuffled_flood_identical_to_reference(self, shuffle_seed):
        g = erdos_renyi(24, 0.15, seed=4)
        reference = SyncNetwork(g, lambda v: Flooder())
        shuffled = ShufflingNetwork(
            g, lambda v: Flooder(), shuffle_seed=shuffle_seed
        )
        reference.run_rounds(8)
        shuffled.run_rounds(8)
        assert reference.stats == shuffled.stats
        for v in range(24):
            assert reference.algorithm(v).heard_at == shuffled.algorithm(v).heard_at

    @pytest.mark.parametrize("shuffle_seed", [5, 17])
    def test_shuffled_en_phase_identical_joins(self, shuffle_seed):
        from repro.core.distributed_en import ENNodeAlgorithm

        g = erdos_renyi(24, 0.15, seed=4)

        def one_phase(network_cls, **kwargs):
            algorithms = [ENNodeAlgorithm(v, 3, "toptwo") for v in range(24)]
            net = network_cls(g, algorithms, seed=3, **kwargs)
            net.start()
            for algorithm in algorithms:
                algorithm.begin_phase(1, 0.5, 4)
            net.run_rounds(6)
            return (
                {v: a.center for v, a in enumerate(algorithms) if a.joined_phase == 1},
                net.stats,
            )

        assert one_phase(SyncNetwork) == one_phase(
            ShufflingNetwork, shuffle_seed=shuffle_seed
        )


class TestContext:
    def test_context_exposes_topology(self):
        net = SyncNetwork(path_graph(3), lambda v: Echo())
        ctx = net.context(1)
        assert ctx.node_id == 1
        assert ctx.neighbors == (0, 2)
        assert ctx.degree == 2
        assert ctx.num_vertices == 3

    def test_private_rngs_differ(self):
        net = SyncNetwork(path_graph(3), lambda v: Echo(), seed=1)
        values = [net.context(v).rng.random() for v in range(3)]
        assert len(set(values)) == 3

    def test_rng_deterministic_across_runs(self):
        a = SyncNetwork(path_graph(3), lambda v: Echo(), seed=42)
        b = SyncNetwork(path_graph(3), lambda v: Echo(), seed=42)
        assert a.context(2).rng.random() == b.context(2).rng.random()
