"""Schedule-equivalence properties of the asynchronous engine.

Three contracts, asserted for EN/LS/MPX across seeded schedules
(``docs/async.md``):

(a) **sync equivalence** — a fault-free FIFO async run is bit-identical
    to the synchronous reference: same decomposition, same
    ``NetworkStats``, same phase/round structure;
(b) **replay determinism** — rerunning the same
    ``(seed, delivery, faults)`` triple reproduces the run byte for
    byte, including the adversary counters and the fault event log;
(c) **order-obliviousness** — permuting delivery within the delay bound
    (any schedule, fault-free) never changes the decomposition: the
    protocols' per-round merges are commutative, so the α-synchronizer's
    logical rounds fully determine the outcome.

The causal log (:mod:`repro.telemetry.causality`) extends (b) and (c):
replaying a ``(seed, spec)`` pair reproduces the causal provenance
byte for byte, and the Lamport timestamps — a pure function of the
logical dependency structure — are invariant under every fault-free
delivery permutation.
"""

from __future__ import annotations

import pytest

from repro.baselines import distributed_ls, distributed_mpx
from repro.core.distributed_en import decompose_distributed
from repro.distributed import AsyncNetwork, SyncNetwork
from repro.distributed.protocols import FloodNode
from repro.graphs import erdos_renyi
from repro.telemetry import Telemetry, lamport_timestamps

SEEDS = (3, 11, 29)
SCHEDULES = ("fifo", "random:3", "random:2:geom", "latest:3", "starve:2:0.5")
ALGOS = ("en", "ls", "mpx")


def _run(algo: str, graph, seed: int, **kwargs):
    """``(cluster map, stats, structure)`` for one driver run."""
    if algo == "en":
        result = decompose_distributed(graph, k=3, seed=seed, **kwargs)
        structure = (result.phases, tuple(result.rounds_per_phase))
    elif algo == "ls":
        result = distributed_ls.decompose_distributed(graph, k=3, seed=seed, **kwargs)
        structure = (result.phases, tuple(result.rounds_per_phase))
    else:
        result = distributed_mpx.partition_distributed(
            graph, beta=0.4, seed=seed, **kwargs
        )
        structure = (result.rounds,)
    return result.decomposition.cluster_index_map(), result.stats, structure


@pytest.fixture(params=SEEDS, ids=lambda s: f"seed{s}")
def seeded_graph(request):
    return request.param, erdos_renyi(32, 0.15, seed=request.param)


@pytest.mark.parametrize("algo", ALGOS)
def test_fault_free_fifo_matches_sync_bit_for_bit(algo, seeded_graph):
    seed, graph = seeded_graph
    reference = _run(algo, graph, seed)
    fifo = _run(algo, graph, seed, backend="async")
    assert fifo == reference  # decomposition, NetworkStats, structure


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("delivery", SCHEDULES[1:])
def test_delivery_permutation_never_changes_decomposition(
    algo, delivery, seeded_graph
):
    seed, graph = seeded_graph
    reference_map, _, _ = _run(algo, graph, seed)
    adversarial_map, _, _ = _run(
        algo, graph, seed, backend="async", delivery=delivery
    )
    assert adversarial_map == reference_map


@pytest.mark.parametrize(
    "delivery,faults",
    [
        ("random:3", None),
        ("latest:2", "drop:0.05"),
        ("random:2", "crash:4@2-7;redeliver"),
        ("starve:2:0.5", "drop:0.03;crash:2@3-6"),
    ],
)
def test_replay_of_same_seed_and_spec_is_byte_identical(delivery, faults):
    graph = erdos_renyi(32, 0.15, seed=7)

    def run_once():
        telemetry = Telemetry()
        result = decompose_distributed(
            graph,
            k=3,
            seed=11,
            backend="async",
            delivery=delivery,
            faults=faults,
            telemetry=telemetry,
        )
        span = next(s for s in telemetry.spans if s["name"] == "en.decompose")
        return (
            result.decomposition.cluster_index_map(),
            result.stats,
            result.phases,
            tuple(result.rounds_per_phase),
            span["attrs"],
        )

    assert run_once() == run_once()


def test_replay_reproduces_fault_log_event_for_event():
    graph = erdos_renyi(24, 0.2, seed=5)

    def run_once():
        net = AsyncNetwork(
            graph,
            lambda v: FloodNode(v, 0),
            seed=13,
            delivery="random:2",
            faults="drop:0.1;crash:3@2-5;redeliver",
        )
        net.run_rounds(8)
        net.close()  # flooding may leave re-broadcasts in flight
        return net.fault_plan.log, net.async_stats

    log_a, stats_a = run_once()
    log_b, stats_b = run_once()
    assert log_a == log_b
    assert stats_a == stats_b
    assert log_a  # the plan actually fired


@pytest.mark.parametrize("delivery", SCHEDULES)
def test_round_streams_identical_to_sync_on_fifo_only(delivery):
    """FIFO async round streams are row-identical to sync (modulo the
    ``backend`` attribute); adversarial runs add the extras columns."""
    graph = erdos_renyi(32, 0.15, seed=3)

    def rows(backend, **kwargs):
        telemetry = Telemetry()
        decompose_distributed(
            graph, k=3, seed=3, backend=backend, telemetry=telemetry, **kwargs
        )
        stripped = []
        for record in telemetry.rounds:
            record = dict(record)
            record.pop("backend", None)
            stripped.append(record)
        return stripped

    async_rows = rows("async", delivery=delivery)
    if delivery == "fifo":
        assert async_rows == rows("sync")
    else:
        assert all("delayed" in record for record in async_rows)
        assert sum(record["delayed"] for record in async_rows) > 0


def _causal_log(algo: str, graph, seed: int, **kwargs) -> list[dict]:
    telemetry = Telemetry()
    _run(algo, graph, seed, telemetry=telemetry, **kwargs)
    return telemetry.causal


@pytest.mark.parametrize(
    "delivery,faults",
    [
        ("random:3", None),
        ("latest:2", "drop:0.05"),
        ("random:2", "crash:4@2-7;redeliver"),
        ("starve:2:0.5", "drop:0.03;crash:2@3-6"),
    ],
)
def test_causal_log_replay_is_byte_identical(delivery, faults):
    graph = erdos_renyi(32, 0.15, seed=7)
    first = _causal_log(
        "en", graph, 11, backend="async", delivery=delivery, faults=faults
    )
    second = _causal_log(
        "en", graph, 11, backend="async", delivery=delivery, faults=faults
    )
    assert first  # the run actually recorded provenance
    assert first == second


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("delivery", SCHEDULES)
def test_lamport_order_invariant_under_delivery_permutation(
    algo, delivery, seeded_graph
):
    """The Lamport clocks are a pure function of the logical dependency
    structure, so every fault-free schedule — which only permutes
    physical delivery within the α-synchronizer's logical rounds —
    yields the same timestamps as the synchronous reference."""
    seed, graph = seeded_graph
    reference = lamport_timestamps(_causal_log(algo, graph, seed))
    permuted = lamport_timestamps(
        _causal_log(algo, graph, seed, backend="async", delivery=delivery)
    )
    assert reference  # non-empty: every node has at least a halt event
    assert permuted == reference


def test_fifo_trace_events_identical_to_sync():
    from repro.distributed import TraceRecorder

    graph = erdos_renyi(24, 0.2, seed=9)
    traces = []
    for engine in (SyncNetwork, AsyncNetwork):
        tracer = TraceRecorder()
        net = engine(graph, lambda v: FloodNode(v, 0), seed=4, tracer=tracer)
        net.run_until_quiet()
        traces.append(tracer.events)
    assert traces[0] == traces[1]
