"""Integration tests for MIS / colouring / matching over decompositions."""

from __future__ import annotations

import pytest

from repro.applications import (
    coloring_via_decomposition,
    mis_via_decomposition,
    run_coloring,
    run_matching,
    run_mis,
)
from repro.applications.verify import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_vertex_coloring,
)
from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.errors import DecompositionError
from repro.graphs import (
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected,
    star_graph,
)

GRAPHS = [
    ("path", path_graph(15)),
    ("cycle", cycle_graph(14)),
    ("grid", grid_graph(5, 5)),
    ("star", star_graph(10)),
    ("er", erdos_renyi(40, 0.1, seed=2)),
    ("conn", random_connected(35, 0.04, seed=3)),
]


def en_decomposition(graph, seed=33):
    decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=seed)
    return decomposition


class TestMIS:
    @pytest.mark.parametrize("name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_maximal_on_zoo(self, name, graph):
        result = run_mis(graph, en_decomposition(graph))
        assert is_maximal_independent_set(graph, result.independent_set)

    @pytest.mark.parametrize("name,graph", GRAPHS[:3], ids=[g[0] for g in GRAPHS[:3]])
    def test_matches_centralized_reference(self, name, graph):
        decomposition = en_decomposition(graph)
        simulated = run_mis(graph, decomposition)
        reference = mis_via_decomposition(graph, decomposition)
        assert simulated.independent_set == reference

    def test_round_budget_exact(self):
        graph = grid_graph(5, 5)
        decomposition = en_decomposition(graph)
        result = run_mis(graph, decomposition)
        chi = decomposition.num_colors
        diameter = int(decomposition.max_strong_diameter())
        assert result.app.rounds == chi * (diameter + 2)

    def test_strong_mode_zero_relays(self):
        graph = erdos_renyi(40, 0.1, seed=4)
        result = run_mis(graph, en_decomposition(graph), relay_mode="strong")
        assert result.app.relay_messages_nonmember == 0

    def test_weak_mode_on_ls_decomposition(self):
        graph = erdos_renyi(50, 0.08, seed=5)
        decomposition, _ = linial_saks.decompose(graph, k=3, seed=5)
        result = run_mis(graph, decomposition, relay_mode="weak")
        assert is_maximal_independent_set(graph, result.independent_set)

    def test_weak_mode_pays_relays_when_disconnected(self):
        # Find an LS decomposition with a disconnected cluster: running it
        # requires non-member relays.
        for seed in range(10):
            graph = erdos_renyi(60, 0.07, seed=seed)
            decomposition, _ = linial_saks.decompose(graph, k=4, seed=seed)
            if decomposition.disconnected_clusters():
                result = run_mis(graph, decomposition, relay_mode="weak")
                assert is_maximal_independent_set(graph, result.independent_set)
                assert result.app.relay_messages_nonmember > 0
                return
        pytest.fail("no disconnected LS cluster found in 10 seeds")

    def test_strong_mode_rejects_disconnected_clusters(self):
        for seed in range(10):
            graph = erdos_renyi(60, 0.07, seed=seed)
            decomposition, _ = linial_saks.decompose(graph, k=4, seed=seed)
            if decomposition.disconnected_clusters():
                with pytest.raises(DecompositionError, match="infinite"):
                    run_mis(graph, decomposition, relay_mode="strong")
                return
        pytest.fail("no disconnected LS cluster found in 10 seeds")

    def test_diameter_override(self):
        graph = path_graph(12)
        decomposition = en_decomposition(graph)
        result = run_mis(graph, decomposition, diameter_override=4)
        assert result.app.phase_length == 6
        assert is_maximal_independent_set(graph, result.independent_set)


class TestColoring:
    @pytest.mark.parametrize("name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_proper_delta_plus_one(self, name, graph):
        result = run_coloring(graph, en_decomposition(graph))
        assert is_proper_vertex_coloring(
            graph, result.colors, max_colors=graph.max_degree() + 1
        )

    def test_matches_centralized_reference(self):
        graph = erdos_renyi(40, 0.1, seed=6)
        decomposition = en_decomposition(graph)
        assert run_coloring(graph, decomposition).colors == coloring_via_decomposition(
            graph, decomposition
        )

    def test_palette_never_exceeds_degree_plus_one_pointwise(self):
        graph = star_graph(12)
        result = run_coloring(graph, en_decomposition(graph))
        for v in graph.vertices():
            assert result.colors[v] <= graph.degree(v)


class TestMatching:
    @pytest.mark.parametrize("name,graph", GRAPHS[:4], ids=[g[0] for g in GRAPHS[:4]])
    def test_maximal_on_zoo(self, name, graph):
        result = run_matching(graph, k=3, seed=44)
        assert is_maximal_matching(graph, result.matching)

    def test_line_graph_size_reported(self):
        graph = cycle_graph(10)
        result = run_matching(graph, k=2, seed=45)
        assert result.line_graph_vertices == 10

    def test_reuses_precomputed_decomposition(self):
        from repro.graphs import line_graph

        graph = grid_graph(4, 4)
        lgraph, _ = line_graph(graph)
        decomposition, _ = elkin_neiman.decompose(lgraph, k=3, seed=46)
        result = run_matching(graph, line_decomposition=decomposition, seed=46)
        assert is_maximal_matching(graph, result.matching)
