"""Unit tests for the canonical per-cluster solvers."""

from __future__ import annotations

from repro.applications.local_solvers import solve_coloring, solve_matching, solve_mis


class TestSolveMIS:
    def test_empty(self):
        assert solve_mis([], {}) == set()

    def test_path_greedy(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        assert solve_mis([0, 1, 2, 3], adjacency) == {0, 2}

    def test_blocked_skipped(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1]}
        assert solve_mis([0, 1, 2], adjacency, blocked=[0]) == {1}

    def test_independence(self):
        adjacency = {0: [1, 2], 1: [0, 2], 2: [0, 1]}  # triangle
        chosen = solve_mis([0, 1, 2], adjacency)
        assert chosen == {0}

    def test_maximality_given_constraints(self):
        adjacency = {v: [] for v in range(5)}
        chosen = solve_mis(range(5), adjacency)
        assert chosen == set(range(5))

    def test_deterministic_order(self):
        adjacency = {0: [1], 1: [0]}
        assert solve_mis([1, 0], adjacency) == {0}


class TestSolveColoring:
    def test_path(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1]}
        colors = solve_coloring([0, 1, 2], adjacency)
        assert colors == {0: 0, 1: 1, 2: 0}

    def test_forbidden_respected(self):
        adjacency = {0: []}
        colors = solve_coloring([0], adjacency, forbidden={0: [0, 1]})
        assert colors[0] == 2

    def test_clique_uses_n_colors(self):
        adjacency = {v: [w for w in range(4) if w != v] for v in range(4)}
        colors = solve_coloring(range(4), adjacency)
        assert sorted(colors.values()) == [0, 1, 2, 3]

    def test_proper_always(self):
        adjacency = {0: [1, 2], 1: [0], 2: [0, 3], 3: [2]}
        colors = solve_coloring([0, 1, 2, 3], adjacency)
        for v, nbrs in adjacency.items():
            for w in nbrs:
                assert colors[v] != colors[w]

    def test_empty(self):
        assert solve_coloring([], {}) == {}


class TestSolveMatching:
    def test_path(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        matching = solve_matching([0, 1, 2, 3], adjacency)
        assert matching == {(0, 1), (2, 3)}

    def test_unavailable_respected(self):
        adjacency = {0: [1], 1: [0]}
        assert solve_matching([0, 1], adjacency, unavailable=[1]) == set()

    def test_no_vertex_matched_twice(self):
        adjacency = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
        matching = solve_matching([0, 1, 2], adjacency)
        used = [v for e in matching for v in e]
        assert len(used) == len(set(used))

    def test_maximal_within_members(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2, 4], 4: [3]}
        matching = solve_matching([0, 1, 2, 3, 4], adjacency)
        matched = {v for e in matching for v in e}
        for v, nbrs in adjacency.items():
            for w in nbrs:
                assert v in matched or w in matched

    def test_external_neighbors_ignored(self):
        adjacency = {0: [1, 99], 1: [0]}
        matching = solve_matching([0, 1], adjacency)
        assert matching == {(0, 1)}

    def test_empty(self):
        assert solve_matching([], {}) == set()
