"""Unit tests for the application output verifiers."""

from __future__ import annotations

from repro.applications.verify import (
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_vertex_coloring,
)
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph


class TestIndependentSet:
    def test_valid(self):
        assert is_independent_set(path_graph(4), {0, 2})

    def test_adjacent_pair_fails(self):
        assert not is_independent_set(path_graph(4), {0, 1})

    def test_empty_is_independent(self):
        assert is_independent_set(path_graph(4), set())


class TestMaximalIndependentSet:
    def test_valid(self):
        assert is_maximal_independent_set(path_graph(5), {0, 2, 4})

    def test_non_maximal_fails(self):
        # {1} covers 0 and 2 but vertex 3 has no selected neighbour.
        assert not is_maximal_independent_set(path_graph(5), {1})

    def test_non_independent_fails(self):
        assert not is_maximal_independent_set(path_graph(5), {0, 1, 3})

    def test_isolated_vertices_required(self):
        g = Graph(3, [(0, 1)])
        assert not is_maximal_independent_set(g, {0})
        assert is_maximal_independent_set(g, {0, 2})


class TestProperColoring:
    def test_valid(self):
        assert is_proper_vertex_coloring(cycle_graph(4), {0: 0, 1: 1, 2: 0, 3: 1})

    def test_monochromatic_edge_fails(self):
        assert not is_proper_vertex_coloring(path_graph(2), {0: 3, 1: 3})

    def test_missing_vertex_fails(self):
        assert not is_proper_vertex_coloring(path_graph(3), {0: 0, 1: 1})

    def test_palette_bound(self):
        colors = {v: v for v in range(4)}
        assert is_proper_vertex_coloring(complete_graph(4), colors, max_colors=4)
        assert not is_proper_vertex_coloring(complete_graph(4), colors, max_colors=3)


class TestMatching:
    def test_valid(self):
        assert is_matching(path_graph(4), [(0, 1), (2, 3)])

    def test_shared_vertex_fails(self):
        assert not is_matching(path_graph(3), [(0, 1), (1, 2)])

    def test_non_edge_fails(self):
        assert not is_matching(path_graph(4), [(0, 3)])

    def test_empty_is_matching(self):
        assert is_matching(path_graph(4), [])


class TestMaximalMatching:
    def test_valid(self):
        assert is_maximal_matching(path_graph(4), [(1, 2)])

    def test_extendable_fails(self):
        assert not is_maximal_matching(path_graph(5), [(1, 2)])

    def test_empty_on_edgeless_graph(self):
        assert is_maximal_matching(Graph(3), [])

    def test_empty_on_graph_with_edges_fails(self):
        assert not is_maximal_matching(path_graph(3), [])
