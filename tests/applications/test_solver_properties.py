"""Hypothesis property tests for the canonical solvers and the LS phase."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.local_solvers import solve_coloring, solve_matching, solve_mis
from repro.baselines.linial_saks import ls_phase
from repro.graphs import GraphBuilder, bfs_distances


@st.composite
def adjacency_maps(draw, max_n: int = 12):
    """Random symmetric adjacency dicts over 0..n-1."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), max_size=30)) if possible else []
    )
    adjacency: dict[int, set[int]] = {v: set() for v in range(n)}
    for u, v in set(edges):
        adjacency[u].add(v)
        adjacency[v].add(u)
    return {v: sorted(nbrs) for v, nbrs in adjacency.items()}


@st.composite
def graphs(draw, max_n: int = 14):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), max_size=30)) if possible else []
    )
    builder = GraphBuilder(n)
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build()


@given(adjacency_maps())
def test_mis_independent_and_maximal(adjacency):
    members = sorted(adjacency)
    chosen = solve_mis(members, adjacency)
    for v in chosen:
        assert not any(w in chosen for w in adjacency[v])
    for v in members:
        if v not in chosen:
            assert any(w in chosen for w in adjacency[v])


@given(adjacency_maps(), st.sets(st.integers(min_value=0, max_value=11)))
def test_mis_blocked_never_selected(adjacency, blocked):
    chosen = solve_mis(sorted(adjacency), adjacency, blocked)
    assert not (chosen & blocked)


@given(adjacency_maps())
def test_coloring_proper_and_compact(adjacency):
    members = sorted(adjacency)
    colors = solve_coloring(members, adjacency)
    for v in members:
        for w in adjacency[v]:
            assert colors[v] != colors[w]
        assert colors[v] <= len(adjacency[v])  # first-fit bound


@given(adjacency_maps())
def test_matching_is_matching_and_maximal(adjacency):
    members = sorted(adjacency)
    matching = solve_matching(members, adjacency)
    used = [v for edge in matching for v in edge]
    assert len(used) == len(set(used))
    matched = set(used)
    for v in members:
        for w in adjacency[v]:
            assert v in matched or w in matched


@given(
    graphs(),
    st.dictionaries(
        st.integers(min_value=0, max_value=13),
        st.integers(min_value=0, max_value=4),
    ),
)
@settings(max_examples=60, deadline=None)
def test_ls_phase_invariants(g, raw_radii):
    radii = {v: r for v, r in raw_radii.items() if v < g.num_vertices}
    for v in g.vertices():
        radii.setdefault(v, 0)
    active = set(g.vertices())
    block, centers = ls_phase(g, active, radii)
    assert set(centers) == block
    for x, center in centers.items():
        distances = bfs_distances(g, center, active=active)
        # Strictly inside the center's ball, and the center is the
        # minimum ID among all vertices whose ball reaches x.
        assert distances[x] < radii[center]
        for v in g.vertices():
            if v >= center:
                continue
            reach = bfs_distances(g, v, active=active)
            assert reach.get(x, 10**9) > radii[v]
