"""Tests for neighborhood covers built from decompositions."""

from __future__ import annotations

import pytest

from repro.applications.covers import build_cover
from repro.errors import ParameterError
from repro.graphs import (
    bfs_distances_bounded,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
)

CASES = [
    ("path", path_graph(20), 1),
    ("path-w2", path_graph(20), 2),
    ("cycle", cycle_graph(18), 1),
    ("grid", grid_graph(5, 5), 1),
    # The paper's §1.1 properties on seeded random graphs at every
    # radius the oracle's finest scales use: W ∈ {1, 2, 3}.
    ("er", erdos_renyi(40, 0.08, seed=6), 1),
    ("er-w2", erdos_renyi(40, 0.08, seed=6), 2),
    ("er-w3", erdos_renyi(40, 0.08, seed=6), 3),
    ("er-sparse-w1", erdos_renyi(60, 0.04, seed=11), 1),
    ("er-sparse-w2", erdos_renyi(60, 0.04, seed=11), 2),
    ("er-sparse-w3", erdos_renyi(60, 0.04, seed=11), 3),
    ("er-dense-w1", erdos_renyi(36, 0.15, seed=23), 1),
    ("er-dense-w2", erdos_renyi(36, 0.15, seed=23), 2),
    ("er-dense-w3", erdos_renyi(36, 0.15, seed=23), 3),
]


class TestCoverProperties:
    @pytest.mark.parametrize("name,graph,W", CASES, ids=[c[0] for c in CASES])
    def test_covering(self, name, graph, W):
        cover = build_cover(graph, radius=W, seed=9)
        assert cover.covers_all_balls(graph)

    @pytest.mark.parametrize("name,graph,W", CASES, ids=[c[0] for c in CASES])
    def test_overlap_at_most_chi(self, name, graph, W):
        cover = build_cover(graph, radius=W, seed=9)
        assert cover.max_overlap(graph) <= cover.overlap_bound

    @pytest.mark.parametrize("name,graph,W", CASES, ids=[c[0] for c in CASES])
    def test_diameter_bound(self, name, graph, W):
        cover = build_cover(graph, radius=W, seed=9)
        assert cover.max_weak_diameter(graph) <= cover.diameter_bound

    def test_same_color_clusters_disjoint(self):
        graph = erdos_renyi(50, 0.08, seed=7)
        cover = build_cover(graph, radius=1, seed=7)
        by_color: dict[int, list[frozenset[int]]] = {}
        for cluster, color in zip(cover.clusters, cover.colors):
            for other in by_color.get(color, []):
                assert not (cluster & other)
            by_color.setdefault(color, []).append(cluster)

    def test_radius_zero_is_decomposition(self):
        graph = path_graph(10)
        cover = build_cover(graph, radius=0, seed=8)
        base_sets = {cluster.vertices for cluster in cover.base.clusters}
        assert set(cover.clusters) == base_sets
        assert cover.max_overlap(graph) == 1

    def test_every_ball_in_own_cluster(self):
        # The constructive covering property: v's ball is inside the
        # cover cluster grown from v's own base cluster.
        graph = grid_graph(4, 6)
        W = 1
        cover = build_cover(graph, radius=W, seed=10)
        index_of = {
            cluster.index: i for i, cluster in enumerate(cover.base.clusters)
        }
        for v in graph.vertices():
            base = cover.base.cluster_of(v)
            grown = cover.clusters[index_of[base.index]]
            ball = set(bfs_distances_bounded(graph, v, W))
            assert ball <= grown

    def test_negative_radius_rejected(self):
        with pytest.raises(ParameterError):
            build_cover(path_graph(5), radius=-1)


class TestMembershipColumns:
    @pytest.mark.parametrize("name,graph,W", CASES, ids=[c[0] for c in CASES])
    def test_columns_match_cluster_sets(self, name, graph, W):
        cover = build_cover(graph, radius=W, seed=9)
        indptr, cluster_ids = cover.membership_columns()
        assert len(indptr) == graph.num_vertices + 1
        assert indptr[0] == 0
        assert len(cluster_ids) == sum(len(c) for c in cover.clusters)
        for v in graph.vertices():
            row = list(cluster_ids[indptr[v] : indptr[v + 1]])
            assert row == sorted(row)
            assert row == [
                i for i, cluster in enumerate(cover.clusters) if v in cluster
            ]

    def test_row_lengths_are_the_overlap(self):
        graph = erdos_renyi(50, 0.06, seed=14)
        cover = build_cover(graph, radius=2, seed=14)
        indptr, _ = cover.membership_columns()
        widths = [
            indptr[v + 1] - indptr[v] for v in graph.vertices()
        ]
        assert max(widths) == cover.max_overlap(graph)
        assert max(widths) <= cover.overlap_bound

    def test_empty_graph_columns(self):
        from repro.graphs import Graph

        cover = build_cover(Graph(0), radius=1)
        indptr, cluster_ids = cover.membership_columns()
        assert list(indptr) == [0]
        assert len(cluster_ids) == 0
