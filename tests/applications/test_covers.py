"""Tests for neighborhood covers built from decompositions."""

from __future__ import annotations

import pytest

from repro.applications.covers import build_cover
from repro.errors import ParameterError
from repro.graphs import (
    bfs_distances_bounded,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
)

CASES = [
    ("path", path_graph(20), 1),
    ("path-w2", path_graph(20), 2),
    ("cycle", cycle_graph(18), 1),
    ("grid", grid_graph(5, 5), 1),
    ("er", erdos_renyi(40, 0.08, seed=6), 1),
    ("er-w2", erdos_renyi(40, 0.08, seed=6), 2),
]


class TestCoverProperties:
    @pytest.mark.parametrize("name,graph,W", CASES, ids=[c[0] for c in CASES])
    def test_covering(self, name, graph, W):
        cover = build_cover(graph, radius=W, seed=9)
        assert cover.covers_all_balls(graph)

    @pytest.mark.parametrize("name,graph,W", CASES, ids=[c[0] for c in CASES])
    def test_overlap_at_most_chi(self, name, graph, W):
        cover = build_cover(graph, radius=W, seed=9)
        assert cover.max_overlap(graph) <= cover.overlap_bound

    @pytest.mark.parametrize("name,graph,W", CASES, ids=[c[0] for c in CASES])
    def test_diameter_bound(self, name, graph, W):
        cover = build_cover(graph, radius=W, seed=9)
        assert cover.max_weak_diameter(graph) <= cover.diameter_bound

    def test_same_color_clusters_disjoint(self):
        graph = erdos_renyi(50, 0.08, seed=7)
        cover = build_cover(graph, radius=1, seed=7)
        by_color: dict[int, list[frozenset[int]]] = {}
        for cluster, color in zip(cover.clusters, cover.colors):
            for other in by_color.get(color, []):
                assert not (cluster & other)
            by_color.setdefault(color, []).append(cluster)

    def test_radius_zero_is_decomposition(self):
        graph = path_graph(10)
        cover = build_cover(graph, radius=0, seed=8)
        base_sets = {cluster.vertices for cluster in cover.base.clusters}
        assert set(cover.clusters) == base_sets
        assert cover.max_overlap(graph) == 1

    def test_every_ball_in_own_cluster(self):
        # The constructive covering property: v's ball is inside the
        # cover cluster grown from v's own base cluster.
        graph = grid_graph(4, 6)
        W = 1
        cover = build_cover(graph, radius=W, seed=10)
        index_of = {
            cluster.index: i for i, cluster in enumerate(cover.base.clusters)
        }
        for v in graph.vertices():
            base = cover.base.cluster_of(v)
            grown = cover.clusters[index_of[base.index]]
            ball = set(bfs_distances_bounded(graph, v, W))
            assert ball <= grown

    def test_negative_radius_rejected(self):
        with pytest.raises(ParameterError):
            build_cover(path_graph(5), radius=-1)
