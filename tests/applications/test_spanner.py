"""Tests for spanner construction over strong-diameter decompositions."""

from __future__ import annotations

import math

import pytest

from repro.applications.spanner import build_spanner, max_edge_stretch
from repro.baselines import linial_saks
from repro.core import Cluster, NetworkDecomposition, elkin_neiman
from repro.errors import DecompositionError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    is_connected,
    path_graph,
)


def en_decomposition(graph, k=3, seed=21):
    decomposition, _ = elkin_neiman.decompose(graph, k=k, seed=seed)
    return decomposition


class TestBuildSpanner:
    @pytest.mark.parametrize(
        "graph",
        [grid_graph(6, 6), erdos_renyi(60, 0.15, seed=1), complete_graph(15)],
        ids=["grid", "er", "complete"],
    )
    def test_stretch_within_bound(self, graph):
        decomposition = en_decomposition(graph)
        result = build_spanner(graph, decomposition)
        assert result.max_stretch <= result.stretch_bound
        assert not math.isinf(result.max_stretch)

    def test_spanner_is_subgraph(self):
        graph = erdos_renyi(50, 0.2, seed=2)
        result = build_spanner(graph, en_decomposition(graph))
        for u, v in result.spanner.edges():
            assert graph.has_edge(u, v)

    def test_preserves_connectivity(self):
        graph = grid_graph(7, 7)
        result = build_spanner(graph, en_decomposition(graph))
        assert is_connected(result.spanner)

    def test_sparsifies_dense_graph(self):
        graph = complete_graph(40)
        # One cluster engulfs the clique quickly; tree + connectors << m.
        result = build_spanner(graph, en_decomposition(graph, k=3))
        assert result.num_edges < graph.num_edges / 3

    def test_edge_accounting(self):
        graph = erdos_renyi(60, 0.1, seed=3)
        result = build_spanner(graph, en_decomposition(graph))
        assert result.num_edges <= result.tree_edges + result.connector_edges
        decomposition = en_decomposition(graph)
        assert result.tree_edges == graph.num_vertices - decomposition.num_clusters

    def test_rejects_disconnected_clusters(self):
        for seed in range(10):
            graph = erdos_renyi(60, 0.07, seed=seed)
            decomposition, _ = linial_saks.decompose(graph, k=4, seed=seed)
            if decomposition.disconnected_clusters():
                with pytest.raises(DecompositionError, match="disconnected|strong"):
                    build_spanner(graph, decomposition)
                return
        pytest.fail("no disconnected LS cluster found")

    def test_singleton_clusters_give_connectors_only(self):
        graph = path_graph(5)
        clusters = [
            Cluster(index=i, color=i % 2, vertices=frozenset({i})) for i in range(5)
        ]
        decomposition = NetworkDecomposition(graph, clusters)
        result = build_spanner(graph, decomposition)
        assert result.tree_edges == 0
        assert result.spanner.num_edges == 4  # all edges are connectors
        assert result.max_stretch == 1.0


class TestMaxEdgeStretch:
    def test_identity_spanner(self):
        graph = cycle_graph(8)
        assert max_edge_stretch(graph, graph) == 1.0

    def test_cycle_minus_edge(self):
        graph = cycle_graph(8)
        spanner = Graph(8, [e for e in graph.edges() if e != (0, 7)])
        assert max_edge_stretch(graph, spanner) == 7.0

    def test_disconnected_spanner_is_inf(self):
        graph = path_graph(3)
        spanner = Graph(3, [(0, 1)])
        assert math.isinf(max_edge_stretch(graph, spanner))

    def test_edgeless_host(self):
        assert max_edge_stretch(Graph(4), Graph(4)) == 1.0

    def test_vertex_mismatch_rejected(self):
        with pytest.raises(DecompositionError):
            max_edge_stretch(path_graph(3), Graph(4))
