"""Tests for the collect-at-leader protocol (the paper's literal recipe)."""

from __future__ import annotations

import pytest

from repro.applications.coloring import ColoringTask
from repro.applications.leader_collect import run_leader_collect_app
from repro.applications.mis import MISTask, run_mis
from repro.applications.verify import (
    is_maximal_independent_set,
    is_proper_vertex_coloring,
)
from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.errors import DecompositionError
from repro.graphs import cycle_graph, erdos_renyi, grid_graph, path_graph, star_graph

GRAPHS = [
    ("path", path_graph(15)),
    ("cycle", cycle_graph(12)),
    ("grid", grid_graph(5, 5)),
    ("star", star_graph(9)),
    ("er", erdos_renyi(50, 0.08, seed=5)),
]


def en_decomposition(graph, seed=51):
    decomposition, _ = elkin_neiman.decompose(graph, k=3, seed=seed)
    return decomposition


class TestLeaderCollectMIS:
    @pytest.mark.parametrize("name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_matches_flooding_scheduler(self, name, graph):
        """Two independent protocol implementations must agree exactly."""
        decomposition = en_decomposition(graph)
        leader = run_leader_collect_app(graph, decomposition, MISTask, seed=3)
        flood = run_mis(graph, decomposition, seed=3)
        leader_set = {v for v, d in leader.decisions.items() if d is True}
        assert leader_set == flood.independent_set
        assert is_maximal_independent_set(graph, leader_set)

    def test_round_formula(self):
        graph = grid_graph(5, 5)
        decomposition = en_decomposition(graph)
        result = run_leader_collect_app(graph, decomposition, MISTask, seed=4)
        chi = decomposition.num_colors
        diameter = int(decomposition.max_strong_diameter())
        assert result.rounds == chi * (3 * diameter + 4)
        assert result.relay_messages_nonmember == 0

    def test_costs_more_rounds_than_flooding(self):
        graph = erdos_renyi(60, 0.07, seed=6)
        decomposition = en_decomposition(graph)
        leader = run_leader_collect_app(graph, decomposition, MISTask, seed=6)
        flood = run_mis(graph, decomposition, seed=6)
        assert leader.rounds > flood.app.rounds  # ~3x constant

    def test_rejects_weak_decomposition(self):
        for seed in range(10):
            graph = erdos_renyi(60, 0.07, seed=seed)
            decomposition, _ = linial_saks.decompose(graph, k=4, seed=seed)
            if decomposition.disconnected_clusters():
                with pytest.raises(DecompositionError, match="strong"):
                    run_leader_collect_app(graph, decomposition, MISTask)
                return
        pytest.fail("no disconnected LS cluster found")

    def test_diameter_override(self):
        graph = path_graph(10)
        decomposition = en_decomposition(graph)
        result = run_leader_collect_app(
            graph, decomposition, MISTask, diameter_override=6
        )
        assert result.phase_length == 3 * 6 + 4


class TestLeaderCollectColoring:
    @pytest.mark.parametrize("name,graph", GRAPHS[:3], ids=[g[0] for g in GRAPHS[:3]])
    def test_proper_coloring(self, name, graph):
        decomposition = en_decomposition(graph)
        result = run_leader_collect_app(graph, decomposition, ColoringTask, seed=7)
        assert is_proper_vertex_coloring(
            graph, result.decisions, max_colors=graph.max_degree() + 1
        )

    def test_matches_flooding_scheduler(self):
        from repro.applications.coloring import run_coloring

        graph = erdos_renyi(40, 0.1, seed=8)
        decomposition = en_decomposition(graph)
        leader = run_leader_collect_app(graph, decomposition, ColoringTask, seed=8)
        flood = run_coloring(graph, decomposition, seed=8)
        assert leader.decisions == flood.colors
