"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, parse_graph_spec
from repro.errors import ParameterError
from repro.graphs import grid_graph, path_graph


class TestParseGraphSpec:
    def test_er(self):
        g = parse_graph_spec("er:30:0.2", seed=1)
        assert g.num_vertices == 30

    def test_grid(self):
        assert parse_graph_spec("grid:3:4") == grid_graph(3, 4)

    def test_path(self):
        assert parse_graph_spec("path:7") == path_graph(7)

    def test_cycle_tree_hypercube(self):
        assert parse_graph_spec("cycle:8").num_edges == 8
        assert parse_graph_spec("tree:2:3").num_vertices == 15
        assert parse_graph_spec("hypercube:4").num_vertices == 16

    def test_conn_regular_ws(self):
        assert parse_graph_spec("conn:40:0.02", seed=2).num_vertices == 40
        g = parse_graph_spec("regular:20:4", seed=3)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert parse_graph_spec("ws:30:4:0.1", seed=4).num_vertices == 30

    def test_torus(self):
        g = parse_graph_spec("torus:4:5")
        assert g.num_vertices == 20
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_gnp_fast(self):
        from repro.graphs import gnp_fast

        assert parse_graph_spec("gnp_fast:300:0.01", seed=5) == gnp_fast(
            300, 0.01, seed=5
        )
        # a distinct family: same seed, different instance than er:
        assert parse_graph_spec("gnp_fast:30:0.2", seed=1) != parse_graph_spec(
            "er:30:0.2", seed=1
        )

    def test_seed_threaded_through(self):
        a = parse_graph_spec("er:30:0.2", seed=1)
        b = parse_graph_spec("er:30:0.2", seed=2)
        assert a != b

    def test_unknown_family(self):
        with pytest.raises(ParameterError, match="unknown graph family"):
            parse_graph_spec("mobius:4")

    def test_malformed_args(self):
        with pytest.raises(ParameterError, match="bad graph spec"):
            parse_graph_spec("er:notanumber:0.5")
        with pytest.raises(ParameterError, match="bad graph spec"):
            parse_graph_spec("grid:3")


class TestCommands:
    def test_decompose_theorem1(self, capsys):
        assert main(["decompose", "er:60:0.08", "--theorem", "1", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "phases:" in out

    def test_decompose_theorem2(self, capsys):
        assert main(["decompose", "grid:5:5", "--theorem", "2", "-k", "3"]) == 0
        assert "Theorem 2" in capsys.readouterr().out

    def test_decompose_theorem3(self, capsys):
        assert main(["decompose", "grid:5:5", "--theorem", "3", "--colors", "2"]) == 0
        assert "Theorem 3" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "er:60:0.08"]) == 0
        out = capsys.readouterr().out
        assert "EN16" in out and "LS93" in out

    def test_apps_all_verified(self, capsys):
        assert main(["apps", "grid:5:5", "--problem", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("yes") >= 3

    def test_apps_single_problem(self, capsys):
        assert main(["apps", "path:10", "--problem", "mis"]) == 0
        out = capsys.readouterr().out
        assert "MIS" in out and "matching" not in out

    def test_spanner(self, capsys):
        assert main(["spanner", "er:40:0.2", "-k", "3"]) == 0
        assert "stretch" in capsys.readouterr().out

    def test_theory(self, capsys):
        assert main(["theory", "1024"]) == 0
        out = capsys.readouterr().out
        for name in ("AGLP89", "PS92", "LS93", "EN16"):
            assert name in out

    def test_bad_spec_exit_code(self, capsys):
        assert main(["decompose", "nope:3"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_seed_changes_output(self, capsys):
        main(["--seed", "1", "decompose", "er:60:0.08"])
        first = capsys.readouterr().out
        main(["--seed", "2", "decompose", "er:60:0.08"])
        second = capsys.readouterr().out
        assert first != second

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["theory", "256"])
        assert args.n == 256


class TestBench:
    def test_list_scenarios(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "er-sweep",
            "strong-vs-weak",
            "congest-rounds",
            "smoke",
            "kernel-scaling",
            "engine-scaling",
        ):
            assert name in out

    def test_list_shows_descriptions_and_shape(self, capsys):
        """--list is the discoverability surface: every scenario row must
        carry its registry description plus the point/trial shape."""
        from repro.experiments import SCENARIOS

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "description" in out
        assert "Batch round-engine over a doubling sweep" in out
        for scenario in SCENARIOS.values():
            assert scenario.description[:40] in out

    def test_no_scenario_lists(self, capsys):
        assert main(["bench"]) == 0
        assert "registered scenarios" in capsys.readouterr().out

    def test_smoke_scenario_runs(self, capsys):
        assert main(["bench", "smoke", "--trials", "2", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "er:24:0.2" in captured.out
        assert "0 cache hits, 2 executed" in captured.err

    def test_cache_round_trip_and_byte_identical_output(self, capsys, tmp_path):
        argv = ["bench", "smoke", "--trials", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "0 cache hits, 2 executed" in cold.err
        assert main(argv + ["--workers", "2"]) == 0
        warm = capsys.readouterr()
        assert "2 cache hits, 0 executed" in warm.err
        assert warm.out == cold.out

    def test_per_trial_rows(self, capsys):
        assert main(["bench", "smoke", "--trials", "2", "--no-cache", "--per-trial"]) == 0
        out = capsys.readouterr().out
        assert "trial" in out and "cached" in out

    def test_unknown_scenario_exit_code(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestOracleCommand:
    def test_build_prints_scale_table(self, capsys):
        assert main(["oracle", "build", "grid:6:6"]) == 0
        out = capsys.readouterr().out
        assert "stretch bound" in out
        assert "clusters" in out and "max_overlap" in out

    def test_query_validates_and_writes_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "oracle.json"
        argv = [
            "oracle", "query", "gnp_fast:256:0.02",
            "--pairs", "300", "--check", "24", "--routes", "2",
            "--json", str(path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "query batch" in out
        assert "route " in out
        payload = json.loads(path.read_text())
        assert payload["command"] == "oracle query"
        assert payload["query"]["violations"] == 0
        assert payload["query"]["checked"] == 24
        assert payload["scales"]
        assert payload["stretch_bound"] >= 1.0
        # Provenance block rides along on every oracle artifact.
        assert "kernel_backend" in payload["environment"]

    def test_query_output_deterministic_for_seed(self, capsys):
        argv = ["oracle", "query", "er:48:0.08", "--pairs", "200", "--check", "8"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_oracle_scaling_scenario_listed(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert "oracle-scaling" in capsys.readouterr().out


class TestBenchJsonEnvironment:
    def test_bench_json_carries_environment_block(self, capsys, tmp_path):
        import json

        path = tmp_path / "bench.json"
        argv = [
            "bench", "smoke", "--trials", "1", "--no-cache",
            "--json", str(path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        env = payload["environment"]
        assert env["python"]
        assert env["kernel_backend"] in ("numpy", "python")
        assert "numpy" in env and "git_sha" in env
        # Trial rows stay environment-free (cache portability).
        assert all("kernel_backend" not in row for row in payload["rows"])


class TestCampaignCli:
    def test_list_campaigns(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "registered campaigns" in out
        for name in ("shootout", "quality", "campaign-smoke"):
            assert name in out

    def test_unknown_campaign_exit_code(self, capsys):
        assert main(["campaign", "run", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_bad_shard_exit_code(self, capsys):
        assert main(["campaign", "run", "campaign-smoke", "--shard", "2/2"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_run_writes_keyed_artifact(self, capsys, tmp_path):
        import json

        path = tmp_path / "out.json"
        argv = [
            "campaign", "run", "campaign-smoke",
            "--dir", str(tmp_path / "run"), "--json", str(path),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "campaign 'campaign-smoke'" in captured.out
        assert "8 trial(s) in shard" in captured.err
        payload = json.loads(path.read_text())
        assert payload["kind"] == "campaign"
        assert payload["failures"] == 0
        assert {row["member"] for row in payload["rows"]} == {"runtime", "race"}
        assert all(row["key"] for row in payload["rows"])
        assert payload["environment"]["python"]

    def test_sharded_run_uses_shard_directory(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["campaign", "run", "campaign-smoke", "--shard", "0/4"]) == 0
        capsys.readouterr()
        assert (
            tmp_path / ".repro-campaigns" / "campaign-smoke-shard0of4"
            / "journal.jsonl"
        ).is_file()
