"""Docs-site integrity: what `mkdocs build --strict` would fail on.

CI runs the real `mkdocs build --strict`; this test covers the same
failure modes (nav entries pointing at missing files, dead relative
links between pages) without requiring mkdocs at test time, so breakage
is caught by the tier-1 suite too.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys

ROOT = pathlib.Path(__file__).parent.parent
DOCS = ROOT / "docs"
MKDOCS_YML = ROOT / "mkdocs.yml"


def nav_pages() -> list[str]:
    """The .md files referenced by mkdocs.yml's nav section."""
    pages = re.findall(r"^\s*-\s+[^:]+:\s+(\S+\.md)\s*$", MKDOCS_YML.read_text(), re.M)
    assert pages, "mkdocs.yml nav is empty or unparsable"
    return pages


def test_mkdocs_config_exists_and_is_strict():
    text = MKDOCS_YML.read_text()
    assert "site_name:" in text
    assert "strict: true" in text


def test_nav_targets_exist():
    for page in nav_pages():
        assert (DOCS / page).is_file(), f"nav references missing docs/{page}"


def test_all_docs_pages_are_in_nav():
    on_disk = {p.name for p in DOCS.glob("*.md")}
    assert on_disk == set(nav_pages())


def test_internal_links_resolve():
    link = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
    for page in DOCS.glob("*.md"):
        for target in link.findall(page.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page.name}: dead link -> {target}"


def test_required_coverage():
    """The docs must cover architecture, the paper map and the CLI."""
    names = {p.name for p in DOCS.glob("*.md")}
    assert {"index.md", "architecture.md", "paper-map.md", "cli.md"} <= names
    cli = (DOCS / "cli.md").read_text()
    # every CLI subcommand documented
    for command in (
        "decompose", "compare", "apps", "spanner", "theory", "oracle", "bench",
        "campaign", "serve", "loadgen",
    ):
        assert f"## `{command}`" in cli, f"cli.md missing section for {command}"
    assert "gnp_fast" in cli  # the er:-vs-gnp_fast distinction is documented
    bench = (DOCS / "benchmarks.md").read_text()
    assert "BENCH_WORKERS" in bench and "BENCH_CACHE" in bench
    serving = (DOCS / "serving.md").read_text()
    # The normative protocol/lifecycle sections must stay in place.
    for needle in (
        "flush rules", "shared-memory", "row-identical", "--validate",
        "en16.shm-tables.v1",
    ):
        assert needle in serving, f"serving.md lost its {needle!r} coverage"


def test_serving_quickstart_runs():
    """The docs/serving.md quickstart works verbatim on a tiny graph.

    The three-line walkthrough (serve in the background, loadgen with
    validation + shutdown, trace summarize) is executed with `python`
    swapped for this interpreter — so the handbook's first example can
    never rot silently.
    """
    text = (DOCS / "serving.md").read_text()
    block = re.search(r"```sh\n(.*?)```", text, re.S)
    assert block, "serving.md lost its quickstart shell block"
    lines = [line.strip() for line in block.group(1).splitlines() if line.strip()]
    assert len(lines) == 3 and lines[0].endswith("&")

    import tempfile

    env = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    with tempfile.TemporaryDirectory() as tmp:
        def argv(line: str) -> list[str]:
            assert line.startswith("python -m repro "), line
            return [sys.executable, "-m", "repro"] + line.split()[3:]

        daemon = subprocess.Popen(
            argv(lines[0].rstrip(" &")),
            cwd=tmp,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            loadgen = subprocess.run(
                argv(lines[1]), cwd=tmp, env=env, capture_output=True,
                text=True, timeout=120,
            )
            assert loadgen.returncode == 0, loadgen.stderr
            assert "row-identical" in loadgen.stdout
            assert daemon.wait(timeout=30) == 0  # --shutdown stopped it
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        summarize = subprocess.run(
            argv(lines[2]), cwd=tmp, env=env, capture_output=True,
            text=True, timeout=60,
        )
        assert summarize.returncode == 0, summarize.stderr
        assert "serve.request" in summarize.stdout
