"""AnswerCache: strict LRU, deterministic counters, MISS sentinel."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.serving import MISS, AnswerCache


class TestValidation:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ParameterError):
            AnswerCache(-1)


class TestBasics:
    def test_miss_then_hit(self):
        cache = AnswerCache(4)
        key = ("distance", 0, 5)
        assert cache.get(key) is MISS
        cache.put(key, 3)
        assert cache.get(key) == 3
        assert (cache.hits, cache.misses) == (1, 1)

    def test_none_is_a_cacheable_value_distinct_from_miss(self):
        """Routes may legitimately be None — MISS must not collide."""
        cache = AnswerCache(4)
        cache.put(("route", 0, 9), None)
        assert cache.get(("route", 0, 9)) is None
        assert cache.get(("route", 0, 9)) is not MISS

    def test_contains_and_len(self):
        cache = AnswerCache(4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1


class TestEviction:
    def test_evicts_least_recently_used_first(self):
        cache = AnswerCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency_of_existing_key(self):
        cache = AnswerCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh by overwrite; "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_capacity_zero_disables_storage(self):
        cache = AnswerCache(0)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0
        assert cache.evictions == 0
        assert cache.misses == 1


class TestStats:
    def test_stats_payload(self):
        cache = AnswerCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats() == {
            "capacity": 2,
            "size": 2,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
        }
