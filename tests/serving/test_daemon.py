"""Daemon loopback: row identity, counters, error handling, lifecycle.

Every test spins an :class:`~repro.serving.daemon.ServerThread` on an
ephemeral loopback port and talks to it through the real wire protocol
— the served answers must be **row-identical** to calling the oracle's
batched query engine directly, on both kernel backends.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.errors import ParameterError, ReproError
from repro.graphs import _kernel
from repro.oracle import build_oracle
from repro.rng import stream
from repro.serving import (
    OracleServer,
    ProtocolError,
    ServeClient,
    ServerConfig,
    ServerThread,
    default_workers,
    run_closed_loop,
    run_open_loop,
    sample_pairs,
)
from repro.telemetry import Telemetry


def _pairs(oracle, count=200, label="daemon"):
    n = oracle.graph.num_vertices
    rng = stream(43, "test-daemon", label)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


class TestConfig:
    def test_defaults(self):
        config = ServerConfig()
        assert (config.host, config.port) == ("127.0.0.1", 0)
        assert config.workers == 0

    def test_rejects_negative_workers(self):
        with pytest.raises(ParameterError):
            ServerConfig(workers=-1)

    def test_batch_and_cache_knobs_validated_at_server_construction(
        self, grid_oracle
    ):
        with pytest.raises(ParameterError):
            OracleServer(grid_oracle, ServerConfig(max_batch=0))
        with pytest.raises(ParameterError):
            OracleServer(grid_oracle, ServerConfig(cache_size=-1))


class TestDefaultWorkers:
    def test_unset_means_in_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
        assert default_workers() == 0

    def test_env_value_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "3")
        assert default_workers() == 3

    @pytest.mark.parametrize("bad", ["nope", "-2", "1.5"])
    def test_bad_env_value_raises(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", bad)
        with pytest.raises(ParameterError):
            default_workers()


class TestLoopbackIdentity:
    @pytest.mark.parametrize("fixture", ["gnp_oracle", "disconnected_oracle"])
    def test_served_answers_match_direct_query(self, fixture, request):
        oracle = request.getfixturevalue(fixture)
        pairs = _pairs(oracle)
        with ServerThread(oracle) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                assert client.distances(pairs) == oracle.distances(pairs)
                assert client.routes(pairs) == oracle.routes(pairs)

    def test_pure_python_kernel_serves_identical_rows(
        self, gnp_oracle, monkeypatch
    ):
        """The daemon inherits the kernel switch: REPRO_KERNEL=py parity."""
        pairs = _pairs(gnp_oracle)
        expected = gnp_oracle.distances(pairs)
        expected_routes = gnp_oracle.routes(pairs)
        monkeypatch.setattr(_kernel, "USE_NUMPY", False)
        assert gnp_oracle.distances(pairs) == expected  # parity precondition
        with ServerThread(gnp_oracle) as thread:
            with ServeClient(*thread.address) as client:
                assert client.distances(pairs) == expected
                assert client.routes(pairs) == expected_routes

    def test_cache_hits_serve_the_same_rows(self, grid_oracle):
        pairs = _pairs(grid_oracle, count=64, label="cached")
        with ServerThread(grid_oracle, ServerConfig(cache_size=1024)) as thread:
            with ServeClient(*thread.address) as client:
                first = client.distances(pairs)
                second = client.distances(pairs)  # all cache hits
                stats = client.stats()
        assert first == second == grid_oracle.distances(pairs)
        assert stats["cache"]["hits"] >= len(pairs)


class TestCountersAndStats:
    def test_deterministic_batch_and_cache_counters(self, grid_oracle):
        """A fixed sequential request sequence yields exact counters."""
        n = grid_oracle.graph.num_vertices
        pairs = [(0, 1), (0, 2), (0, 3), (0, n - 1)]
        config = ServerConfig(max_batch=4, max_wait_us=200_000, cache_size=64)
        with ServerThread(grid_oracle, config) as thread:
            with ServeClient(*thread.address) as client:
                client.distances(pairs)  # 4 misses -> one size-4 batch
                client.distances(pairs)  # 4 hits -> no batch
                client.routes(pairs)  # distinct (op, s, t) keys -> one batch
                stats = client.stats()
        assert stats["requests"] == 4  # three queries + the stats call
        assert stats["batches"] == 2
        assert stats["batched_pairs"] == 8
        assert stats["largest_batch"] == 4
        assert stats["errors"] == 0
        assert stats["cache"] == {
            "capacity": 64,
            "size": 8,
            "hits": 4,
            "misses": 8,
            "evictions": 0,
        }

    def test_stats_reports_oracle_identity_and_knobs(self, grid_oracle):
        config = ServerConfig(max_batch=7, max_wait_us=123, cache_size=9)
        with ServerThread(grid_oracle, config) as thread:
            with ServeClient(*thread.address) as client:
                stats = client.stats()
        assert stats["n"] == grid_oracle.graph.num_vertices
        assert stats["m"] == grid_oracle.graph.num_edges
        assert stats["scales"] == grid_oracle.num_scales
        assert stats["stretch_bound"] == grid_oracle.stretch_bound
        assert (stats["max_batch"], stats["max_wait_us"]) == (7, 123)
        assert stats["workers"] == 0

    def test_deadline_flush_answers_a_lone_request(self, grid_oracle):
        """max_batch far above the load: the deadline timer must fire."""
        config = ServerConfig(max_batch=10_000, max_wait_us=2_000)
        with ServerThread(grid_oracle, config) as thread:
            with ServeClient(*thread.address) as client:
                assert client.distances([(0, 1)]) == grid_oracle.distances(
                    [(0, 1)]
                )
                stats = client.stats()
        assert stats["batches"] == 1
        assert stats["batched_pairs"] == 1


class TestErrorHandling:
    def test_bad_requests_keep_the_connection_usable(self, grid_oracle):
        n = grid_oracle.graph.num_vertices
        with ServerThread(grid_oracle) as thread:
            with ServeClient(*thread.address) as client:
                with pytest.raises(ProtocolError, match="unknown op"):
                    client.request("bogus")
                with pytest.raises(ProtocolError, match="out of range"):
                    client.distances([(0, n + 5)])
                with pytest.raises(ProtocolError, match="bad pair"):
                    client.request("distance", pairs=[[0, "x"]])
                # The session survives every rejected line.
                assert client.ping()
                assert client.distances([(0, 1)]) == grid_oracle.distances(
                    [(0, 1)]
                )
                stats = client.stats()
        assert stats["errors"] == 3

    def test_out_of_range_pair_never_reaches_the_batcher(self, grid_oracle):
        """Rejected requests must not poison the shared batch."""
        n = grid_oracle.graph.num_vertices
        with ServerThread(grid_oracle) as thread:
            with ServeClient(*thread.address) as client:
                with pytest.raises(ProtocolError):
                    client.distances([(0, 1), (0, n)])
                stats = client.stats()
        assert stats["batched_pairs"] == 0


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self, grid_oracle):
        thread = ServerThread(grid_oracle)
        thread.start()
        with ServeClient(*thread.address) as client:
            client.shutdown()
        thread.stop()
        assert not thread._thread.is_alive()

    def test_ping(self, grid_oracle):
        with ServerThread(grid_oracle) as thread:
            with ServeClient(*thread.address) as client:
                assert client.ping()

    def test_double_start_is_rejected(self, grid_oracle):
        server = OracleServer(grid_oracle)

        async def boot_twice():
            await server.start()
            try:
                await server.start()
            finally:
                server.request_stop()
                await server._shutdown()

        import asyncio

        with pytest.raises(ReproError, match="already started"):
            asyncio.run(boot_twice())


class TestTelemetry:
    def test_spans_and_histograms_flow_into_the_trace(self, grid_oracle):
        telemetry = Telemetry()
        pairs = _pairs(grid_oracle, count=32, label="telemetry")
        with ServerThread(grid_oracle, telemetry=telemetry) as thread:
            with ServeClient(*thread.address) as client:
                client.distances(pairs)
                client.routes(pairs[:8])
        names = {span["name"] for span in telemetry.spans}
        assert {"serve.request", "serve.batch"} <= names
        assert telemetry.histogram("serve.request_seconds").count >= 2
        assert telemetry.histogram("serve.batch_seconds").count >= 2


class TestWorkerPool:
    def test_worker_processes_serve_identical_rows(self, gnp_oracle):
        """workers=2: batches fan out over shared-memory attachers."""
        pairs = _pairs(gnp_oracle, count=96, label="workers")
        config = ServerConfig(workers=2, cache_size=0, max_batch=16)
        with ServerThread(gnp_oracle, config) as thread:
            with ServeClient(*thread.address) as client:
                assert client.distances(pairs) == gnp_oracle.distances(pairs)
                assert client.routes(pairs[:24]) == gnp_oracle.routes(pairs[:24])
                assert client.stats()["workers"] == 2


class TestCliWorkerSpawn:
    def test_module_entry_point_is_spawn_safe(self, tmp_path):
        """``python -m repro serve --workers 1`` must come up and answer.

        The worker pool uses the multiprocessing ``spawn`` context, so
        the daemon's own entry point must stay importable in children
        without side effects (CPython skips ``*.__main__`` re-execution,
        and ``repro/__main__.py`` guards on ``__name__`` as well — this
        pins the whole CLI worker path end-to-end: ready-file handshake,
        a validated loadgen run exiting 0, clean shutdown).
        """
        import os
        import subprocess
        import sys

        root = pathlib.Path(__file__).parent.parent.parent
        env = {**os.environ, "PYTHONPATH": str(root / "src")}
        spec = "grid:8:8"
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", spec, "--port", "0",
             "--workers", "1", "--ready-file", "serve.addr"],
            cwd=tmp_path,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            loadgen = subprocess.run(
                [sys.executable, "-m", "repro", "loadgen", "--addr-file",
                 "serve.addr", "--graph", spec, "--clients", "2",
                 "--requests", "10", "--validate", "16", "--shutdown"],
                cwd=tmp_path, env=env, capture_output=True, text=True,
                timeout=90,
            )
            assert loadgen.returncode == 0, loadgen.stderr
            assert "row-identical" in loadgen.stdout
            assert daemon.wait(timeout=30) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


class TestLoadGenerator:
    def test_sample_pairs_is_seeded_and_in_range(self):
        pairs = sample_pairs(50, 64, seed=9)
        assert pairs == sample_pairs(50, 64, seed=9)
        assert pairs != sample_pairs(50, 64, seed=10)
        assert all(0 <= s < 50 and 0 <= t < 50 for s, t in pairs)
        with pytest.raises(ParameterError):
            sample_pairs(0, 4, seed=9)

    def test_closed_loop_reports_and_validates(self, grid_oracle):
        pairs = sample_pairs(grid_oracle.graph.num_vertices, 128, seed=5)
        with ServerThread(grid_oracle, ServerConfig(max_batch=8)) as thread:
            host, port = thread.address
            report = run_closed_loop(
                host,
                port,
                pairs,
                clients=3,
                requests_per_client=20,
                pairs_per_request=2,
                keep_answers=True,
            )
        assert report.mode == "closed"
        assert report.requests == 60
        assert report.pairs == 120
        assert report.errors == 0
        assert report.throughput_pairs > 0
        assert report.quantile_us(0.99) is not None
        row = report.row()
        assert row["p50_us"] is not None and row["p50_us"] <= row["p99_us"]
        assert "throughput q/s" in row
        # keep_answers makes the run row-verifiable after the fact.
        assert len(report.answers) == 60
        for chunk, answer in report.answers:
            assert answer == grid_oracle.distances(chunk)

    def test_open_loop_measures_from_the_schedule(self, grid_oracle):
        pairs = sample_pairs(grid_oracle.graph.num_vertices, 64, seed=5)
        with ServerThread(grid_oracle) as thread:
            host, port = thread.address
            report = run_open_loop(
                host, port, pairs, rate=400.0, duration=0.25, connections=2
            )
        assert report.mode == "open"
        assert report.offered_rate == 400.0
        assert report.errors == 0
        assert 0 < report.requests <= 100
        assert "offered q/s" in report.row()

    def test_loadgen_validation_errors(self, grid_oracle):
        with pytest.raises(ParameterError):
            run_closed_loop("127.0.0.1", 1, [], clients=0)
        with pytest.raises(ParameterError):
            run_open_loop("127.0.0.1", 1, [], rate=0, duration=1)
