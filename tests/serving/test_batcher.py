"""MicroBatcher flush semantics — pure clock bookkeeping, no sockets."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.serving import MicroBatcher


class TestValidation:
    def test_rejects_zero_max_batch(self):
        with pytest.raises(ParameterError):
            MicroBatcher(max_batch=0, max_wait_us=100)

    def test_rejects_negative_wait(self):
        with pytest.raises(ParameterError):
            MicroBatcher(max_batch=4, max_wait_us=-1)

    def test_wait_seconds_conversion(self):
        assert MicroBatcher(4, 500).wait_seconds == pytest.approx(500e-6)
        assert MicroBatcher(4, 0).wait_seconds == 0.0


class TestSizeFlush:
    def test_add_reports_full_exactly_at_max_batch(self):
        batcher = MicroBatcher(max_batch=3, max_wait_us=10_000)
        assert batcher.add("a", now=0.0) is False
        assert batcher.add("b", now=0.0) is False
        assert batcher.add("c", now=0.0) is True
        assert len(batcher) == 3

    def test_max_batch_one_flushes_every_item(self):
        batcher = MicroBatcher(max_batch=1, max_wait_us=10_000)
        assert batcher.add("a", now=0.0) is True

    def test_weighted_items_count_their_pairs(self):
        """A 16-pair chunk fills a max_batch=16 batch on its own."""
        batcher = MicroBatcher(max_batch=16, max_wait_us=10_000)
        assert batcher.add("req-a", now=0.0, weight=10) is False
        assert batcher.add("req-b", now=0.0, weight=6) is True
        assert len(batcher) == 2 and batcher.size == 16

    def test_weight_must_be_positive(self):
        batcher = MicroBatcher(max_batch=4, max_wait_us=0)
        with pytest.raises(ParameterError):
            batcher.add("a", now=0.0, weight=0)


class TestDeadlineFlush:
    def test_first_item_anchors_deadline(self):
        batcher = MicroBatcher(max_batch=100, max_wait_us=500)
        batcher.add("a", now=1.0)
        assert batcher.deadline == pytest.approx(1.0005)
        assert not batcher.should_flush(now=1.0)
        assert not batcher.should_flush(now=1.0004)
        assert batcher.should_flush(now=1.0005)

    def test_later_items_do_not_refresh_the_anchor(self):
        """A steady trickle cannot starve the oldest request."""
        batcher = MicroBatcher(max_batch=100, max_wait_us=500)
        batcher.add("a", now=1.0)
        batcher.add("b", now=1.0004)  # just before the deadline
        assert batcher.deadline == pytest.approx(1.0005)
        assert batcher.should_flush(now=1.0005)

    def test_empty_batcher_never_flushes(self):
        batcher = MicroBatcher(max_batch=100, max_wait_us=500)
        assert not batcher.should_flush(now=1e9)


class TestDrain:
    def test_drain_returns_items_in_order_and_resets(self):
        batcher = MicroBatcher(max_batch=100, max_wait_us=500)
        batcher.add("a", now=1.0)
        batcher.add("b", now=1.1)
        assert batcher.drain() == ["a", "b"]
        assert len(batcher) == 0
        assert batcher.size == 0
        assert batcher.deadline is None
        assert not batcher.should_flush(now=1e9)

    def test_next_batch_reanchors_after_drain(self):
        batcher = MicroBatcher(max_batch=100, max_wait_us=500)
        batcher.add("a", now=1.0)
        batcher.drain()
        batcher.add("b", now=5.0)
        assert batcher.deadline == pytest.approx(5.0005)
