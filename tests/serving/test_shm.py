"""Shared-memory tables: zero-copy round trips and lifecycle discipline."""

from __future__ import annotations

import json
import struct
from multiprocessing import shared_memory

import pytest

from repro.errors import ParameterError, ReproError
from repro.rng import stream
from repro.serving import SHM_SCHEMA, ShmOracleTables, live_tables


def _pairs(oracle, count=300, label="shm"):
    n = oracle.graph.num_vertices
    rng = stream(41, "test-shm", label)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    pairs[:2] = [(0, 0), (0, n - 1)]
    return pairs


class TestRoundTrip:
    @pytest.mark.parametrize(
        "fixture", ["grid_oracle", "gnp_oracle", "disconnected_oracle"]
    )
    def test_attached_oracle_is_row_identical(self, fixture, request):
        oracle = request.getfixturevalue(fixture)
        pairs = _pairs(oracle)

        def check(attached):
            # A helper frame, so the view-backed oracle reference dies
            # before close() — held views would (correctly) BufferError.
            served = attached.oracle
            assert served.graph.num_vertices == oracle.graph.num_vertices
            assert served.graph.num_edges == oracle.graph.num_edges
            assert served.num_scales == oracle.num_scales
            assert served.stretch_bound == oracle.stretch_bound
            assert served.distances(pairs) == oracle.distances(pairs)
            assert served.routes(pairs) == oracle.routes(pairs)
            assert served.distance_details(pairs) == oracle.distance_details(pairs)

        with ShmOracleTables.create(oracle) as owner:
            attached = ShmOracleTables.attach(owner.name)
            try:
                check(attached)
            finally:
                attached.close()

    def test_owner_keeps_answering_from_the_original(self, grid_oracle):
        with ShmOracleTables.create(grid_oracle) as owner:
            assert owner.oracle is grid_oracle


class TestHeaderValidation:
    def _raw_segment(self, header: dict) -> shared_memory.SharedMemory:
        blob = json.dumps(header, sort_keys=True).encode("utf8")
        shm = shared_memory.SharedMemory(create=True, size=8 + len(blob) + 64)
        shm.buf[0:8] = struct.pack("<q", len(blob))
        shm.buf[8 : 8 + len(blob)] = blob
        return shm

    def test_rejects_foreign_schema(self):
        shm = self._raw_segment({"schema": "something-else", "itemsize": 8})
        try:
            with pytest.raises(ParameterError, match="schema"):
                ShmOracleTables.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_rejects_mismatched_itemsize(self):
        shm = self._raw_segment({"schema": SHM_SCHEMA, "itemsize": 4})
        try:
            with pytest.raises(ParameterError, match="itemsize"):
                ShmOracleTables.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()


class TestLifecycle:
    def test_close_and_unlink_transitions(self, grid_oracle):
        owner = ShmOracleTables.create(grid_oracle)
        assert owner.owner and not owner.closed and owner.leaked
        assert owner in live_tables()
        owner.close()
        assert owner.closed and owner.leaked  # still owns the segment
        owner.close()  # idempotent
        owner.unlink()
        assert not owner.leaked
        owner.unlink()  # idempotent
        assert owner not in live_tables()

    def test_oracle_raises_after_close(self, grid_oracle):
        with ShmOracleTables.create(grid_oracle) as owner:
            attached = ShmOracleTables.attach(owner.name)
            attached.close()
            with pytest.raises(ReproError, match="closed"):
                attached.oracle

    def test_attacher_may_not_unlink(self, grid_oracle):
        with ShmOracleTables.create(grid_oracle) as owner:
            attached = ShmOracleTables.attach(owner.name)
            try:
                with pytest.raises(ReproError, match="creator"):
                    attached.unlink()
            finally:
                attached.close()

    def test_context_manager_closes_and_unlinks(self, grid_oracle):
        with ShmOracleTables.create(grid_oracle) as owner:
            name = owner.name
        assert owner.closed and not owner.leaked
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_names_the_leak_when_a_view_oracle_is_held(self, grid_oracle):
        with ShmOracleTables.create(grid_oracle) as owner:
            attached = ShmOracleTables.attach(owner.name)
            held = attached.oracle  # pins memoryviews into the segment
            with pytest.raises(BufferError, match="view-backed oracle"):
                attached.close()
            del held
            attached.close()  # succeeds once the reference is gone
        assert not attached.leaked

    def test_leak_guard_sees_an_abandoned_attacher(self, grid_oracle):
        with ShmOracleTables.create(grid_oracle) as owner:
            attached = ShmOracleTables.attach(owner.name)
            assert attached.leaked
            assert attached in live_tables()
            attached.close()
            assert not attached.leaked
