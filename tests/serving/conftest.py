"""Serving-suite fixtures: shared oracles and the shm leak guard."""

from __future__ import annotations

import pytest

from repro.graphs import erdos_renyi, gnp_fast, grid_graph
from repro.oracle import build_oracle
from repro.serving.shm import _REGISTRY


@pytest.fixture(autouse=True)
def _shm_leak_guard():
    """Fail any test that abandons a shared-memory segment.

    Mirrors the async-network leak guard in the top-level conftest: an
    attacher that never ``close()``d, or an owner that closed without
    ``unlink()``, leaves a mapping (or a ``/dev/shm`` entry) behind.
    """
    _REGISTRY.clear()
    yield
    leaked = [tables for tables in _REGISTRY if tables.leaked]
    _REGISTRY.clear()
    assert not leaked, (
        f"{len(leaked)} ShmOracleTables leaked: attachers must close(), "
        "owners must close() and unlink()"
    )


@pytest.fixture(scope="session")
def grid_oracle():
    """A small high-diameter oracle (grid 12x12, connected)."""
    return build_oracle(grid_graph(12, 12), seed=7)


@pytest.fixture(scope="session")
def gnp_oracle():
    """A sparse random oracle with a few hundred vertices."""
    return build_oracle(gnp_fast(256, 0.03, seed=2), seed=7)


@pytest.fixture(scope="session")
def disconnected_oracle():
    """An oracle over a disconnected graph (UNREACHABLE answers exist)."""
    return build_oracle(erdos_renyi(90, 0.02, seed=12), seed=7)
