"""Wire-protocol shape: one JSON object per line, strict pair payloads."""

from __future__ import annotations

import pytest

from repro.serving import OPS, ProtocolError, decode_line, encode_message, parse_pairs


class TestFraming:
    def test_encode_round_trips_through_decode(self):
        message = {"id": 7, "op": "distance", "pairs": [[0, 5], [3, 3]]}
        wire = encode_message(message)
        assert wire.endswith(b"\n")
        assert decode_line(wire) == message

    def test_encode_is_one_compact_line(self):
        wire = encode_message({"id": 1, "op": "ping"})
        assert wire.count(b"\n") == 1
        assert b" " not in wire

    def test_decode_accepts_str_and_bytes(self):
        assert decode_line('{"op":"ping"}') == {"op": "ping"}
        assert decode_line(b'{"op":"ping"}') == {"op": "ping"}

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope")

    def test_decode_rejects_non_object_lines(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]")


class TestParsePairs:
    def test_accepts_lists_and_tuples(self):
        assert parse_pairs({"pairs": [[0, 5], (3, 3)]}) == [(0, 5), (3, 3)]

    def test_requires_a_pairs_list(self):
        with pytest.raises(ProtocolError):
            parse_pairs({"op": "distance"})
        with pytest.raises(ProtocolError):
            parse_pairs({"pairs": "0,5"})

    def test_rejects_wrong_arity(self):
        with pytest.raises(ProtocolError):
            parse_pairs({"pairs": [[0, 1, 2]]})

    def test_rejects_non_int_vertices(self):
        with pytest.raises(ProtocolError):
            parse_pairs({"pairs": [[0, "5"]]})
        with pytest.raises(ProtocolError):
            parse_pairs({"pairs": [[0, 1.5]]})

    def test_rejects_bools(self):
        """``True`` is an int subclass but not a vertex id."""
        with pytest.raises(ProtocolError):
            parse_pairs({"pairs": [[0, True]]})


def test_ops_cover_the_protocol():
    assert OPS == ("distance", "route", "stats", "ping", "shutdown")
