"""Tests for in-run gap statistics and the sweep framework."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    GapStatistics,
    Sweep,
    aggregate,
    gap_profile,
    phase_gap_statistics,
    run_sweep,
)
from repro.core.carving import carve_block
from repro.core.shifts import sample_phase_radii
from repro.errors import ParameterError
from repro.graphs import Graph, erdos_renyi, grid_graph, path_graph


class TestPhaseGapStatistics:
    def _outcome(self, graph, beta=1.0, seed=3):
        active = set(graph.vertices())
        radii = sample_phase_radii(seed, 1, active, beta)
        return carve_block(graph, active, radii)

    def test_counts_consistent(self):
        graph = erdos_renyi(50, 0.08, seed=2)
        outcome = self._outcome(graph)
        stats = phase_gap_statistics(outcome, 1.0)
        assert stats.active == 50
        assert stats.joined == len(outcome.block)
        assert stats.join_rate == pytest.approx(stats.joined / 50)
        assert 0 <= stats.lone_broadcasts <= 50

    def test_floor_is_exp_minus_beta(self):
        graph = path_graph(10)
        stats = phase_gap_statistics(self._outcome(graph, beta=0.7), 0.7)
        assert stats.floor == pytest.approx(math.exp(-0.7))

    def test_gap_order_statistics(self):
        graph = grid_graph(5, 5)
        stats = phase_gap_statistics(self._outcome(graph), 1.0)
        assert stats.mean_gap <= stats.max_gap
        assert stats.median_gap <= stats.max_gap
        assert stats.mean_gap >= 0.0

    def test_empty_outcome_rejected(self):
        from repro.core.carving import PhaseOutcome

        with pytest.raises(ParameterError):
            phase_gap_statistics(PhaseOutcome(), 1.0)

    def test_bad_beta(self):
        graph = path_graph(4)
        with pytest.raises(ParameterError):
            phase_gap_statistics(self._outcome(graph), 0.0)


class TestGapProfile:
    def test_lemma5_floor_in_run_expectation(self):
        """In-run Lemma 5: the MEAN phase-1 join rate over independent
        seeds clears e^{-beta}.  (Single phases can dip below — joins are
        correlated within a phase — so the check is on the expectation.)
        """
        graph = erdos_renyi(120, 0.05, seed=4)
        beta = 1.0
        rates = []
        for seed in range(20):
            series = gap_profile(graph, beta=beta, phases=1, seed=seed)
            rates.append(series[0].join_rate)
        mean = sum(rates) / len(rates)
        spread = (max(rates) - min(rates)) or 0.05
        assert mean >= math.exp(-beta) - spread / math.sqrt(len(rates))

    def test_above_floor_is_descriptive(self):
        graph = erdos_renyi(60, 0.06, seed=4)
        series = gap_profile(graph, beta=1.0, phases=5, seed=4)
        for stats in series:
            assert stats.above_floor == (stats.join_rate >= stats.floor)

    def test_stops_at_exhaustion(self):
        graph = path_graph(6)
        series = gap_profile(graph, beta=0.2, phases=100, seed=5)
        assert len(series) < 100
        assert sum(stats.joined for stats in series) == 6

    def test_active_counts_decrease(self):
        graph = erdos_renyi(80, 0.06, seed=6)
        series = gap_profile(graph, beta=1.0, phases=8, seed=6)
        actives = [stats.active for stats in series]
        assert all(a >= b for a, b in zip(actives, actives[1:]))

    def test_validation(self):
        with pytest.raises(ParameterError):
            gap_profile(path_graph(3), beta=1.0, phases=0)


class TestSweepFramework:
    @staticmethod
    def runner(seed: int, n: int, k: int):
        return {"value": n * k + seed, "flag": seed % 2 == 0}

    def test_points_cartesian(self):
        sweep = Sweep(self.runner, {"n": [1, 2], "k": [10, 20]})
        points = sweep.points()
        assert len(points) == 4
        assert {"n": 2, "k": 10} in points

    def test_run_sweep_records(self):
        sweep = Sweep(self.runner, {"n": [2], "k": [3]}, seeds=[0, 1, 2])
        records = run_sweep(sweep)
        assert len(records) == 3
        assert records[0] == {"n": 2, "k": 3, "seed": 0, "value": 6, "flag": True}

    def test_aggregate(self):
        sweep = Sweep(self.runner, {"n": [2, 4], "k": [3]}, seeds=[0, 1])
        rows = aggregate(run_sweep(sweep), group_by=["n", "k"], metrics=["value"])
        assert len(rows) == 2
        first = next(row for row in rows if row["n"] == 2)
        assert first["runs"] == 2
        assert first["value_mean"] == pytest.approx(6.5)
        assert first["value_min"] == 6
        assert first["value_max"] == 7

    def test_aggregate_validation(self):
        with pytest.raises(ParameterError):
            aggregate([], group_by=[], metrics=["x"])
        with pytest.raises(ParameterError):
            aggregate([{"a": 1}], group_by=["missing"], metrics=[])

    def test_end_to_end_decomposition_sweep(self):
        from repro.core import elkin_neiman

        def decompose_runner(seed: int, k: int):
            graph = erdos_renyi(40, 0.1, seed=7)
            decomposition, trace = elkin_neiman.decompose(graph, k=k, seed=seed)
            return {
                "colors": decomposition.num_colors,
                "diameter": decomposition.max_strong_diameter(),
            }

        sweep = Sweep(decompose_runner, {"k": [2, 4]}, seeds=[0, 1, 2])
        rows = aggregate(
            run_sweep(sweep), group_by=["k"], metrics=["colors", "diameter"]
        )
        small_k, big_k = rows[0], rows[1]
        assert small_k["k"] == 2 and big_k["k"] == 4
        # More radius -> fewer colours on average; diameter bound grows.
        assert big_k["colors_mean"] < small_k["colors_mean"]
        assert big_k["diameter_max"] <= 2 * 4 - 2 + 4  # slack for trunc events
