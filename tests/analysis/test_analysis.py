"""Tests for the analysis package: quality, lemma estimators, theory, tables."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    aggregate_survival,
    aglp_row,
    claim6_envelope,
    claim8_envelope,
    comparison_rows,
    elkin_neiman_row,
    estimate_within_one_probability,
    format_records,
    format_table,
    format_value,
    join_probability_lower_bound,
    lemma5_bound,
    ls_row,
    ps_row,
    report,
    survival_curve,
)
from repro.baselines import linial_saks
from repro.core import elkin_neiman
from repro.errors import ParameterError
from repro.graphs import erdos_renyi, path_graph


class TestQualityReport:
    def test_en_report(self):
        g = erdos_renyi(60, 0.08, seed=1)
        decomposition, _ = elkin_neiman.decompose(g, k=3, seed=2)
        q = report(decomposition)
        assert q.num_vertices == 60
        assert q.is_valid_partition
        assert q.is_properly_colored
        assert q.num_disconnected_clusters == 0
        assert not math.isinf(q.max_strong_diameter)
        assert 0.0 <= q.cut_fraction <= 1.0
        assert q.num_clusters >= q.num_colors >= 1

    def test_ls_report_sees_disconnection(self):
        found = False
        for seed in range(8):
            g = erdos_renyi(70, 0.07, seed=seed)
            decomposition, _ = linial_saks.decompose(g, k=4, seed=seed)
            q = report(decomposition)
            if q.num_disconnected_clusters > 0:
                assert math.isinf(q.max_strong_diameter)
                found = True
        assert found

    def test_row_keys(self):
        g = path_graph(6)
        decomposition, _ = elkin_neiman.decompose(g, k=2, seed=3)
        row = report(decomposition).row()
        assert {"n", "colors", "strongD", "weakD"} <= set(row)


class TestLemma5:
    def test_bound_formula(self):
        assert lemma5_bound(0.5) == pytest.approx(1 - math.exp(-0.5))
        assert join_probability_lower_bound(0.5) == pytest.approx(math.exp(-0.5))

    def test_bound_validation(self):
        with pytest.raises(ParameterError):
            lemma5_bound(0.0)
        with pytest.raises(ParameterError):
            join_probability_lower_bound(-1.0)

    @pytest.mark.parametrize("beta", [0.3, 0.8, 1.5])
    @pytest.mark.parametrize(
        "distances",
        [[0.0], [0.0, 1.0, 2.0], [3.0] * 5, [0.0, 0.0, 0.0, 5.0, 9.0]],
    )
    def test_monte_carlo_within_bound(self, beta, distances):
        estimate = estimate_within_one_probability(distances, beta, trials=8000, seed=4)
        assert estimate.probability - estimate.half_width <= lemma5_bound(beta)

    def test_single_value_exact(self):
        # q = 1 with d = 0: Pr[delta <= 1] = 1 - e^{-beta}, exactly the bound.
        beta = 0.7
        estimate = estimate_within_one_probability([0.0], beta, trials=30000, seed=5)
        assert estimate.probability == pytest.approx(lemma5_bound(beta), abs=0.02)

    def test_estimator_validation(self):
        with pytest.raises(ParameterError):
            estimate_within_one_probability([], 0.5)
        with pytest.raises(ParameterError):
            estimate_within_one_probability([0.0], 0.5, trials=0)

    def test_estimator_deterministic(self):
        a = estimate_within_one_probability([1.0, 2.0], 0.5, trials=1000, seed=6)
        b = estimate_within_one_probability([1.0, 2.0], 0.5, trials=1000, seed=6)
        assert a.probability == b.probability


class TestSurvival:
    def test_envelope_shapes(self):
        env = claim6_envelope(100, 3, 4.0, 5)
        assert len(env) == 5
        assert all(a > b for a, b in zip(env, env[1:]))
        env8 = claim8_envelope(3)
        assert env8[0] == 1.0
        assert env8[1] == pytest.approx(math.exp(-2))

    def test_envelope_validation(self):
        with pytest.raises(ParameterError):
            claim6_envelope(0, 3, 4.0, 5)
        with pytest.raises(ParameterError):
            claim8_envelope(-1)

    def test_survival_curve_and_aggregate(self):
        g = erdos_renyi(50, 0.08, seed=7)
        traces = []
        for seed in range(5):
            _, trace = elkin_neiman.decompose(g, k=3, seed=seed)
            traces.append(trace)
        summary = aggregate_survival(traces, 50)
        assert summary.runs == 5
        assert summary.mean_curve[-1] == 0.0
        assert all(0.0 <= x <= 1.0 for x in summary.mean_curve)
        # Mean curve decreases weakly.
        assert all(
            a >= b - 1e-12 for a, b in zip(summary.mean_curve, summary.mean_curve[1:])
        )

    def test_empirical_below_envelope(self):
        """Claim 6 empirically: mean survival under the theoretical curve."""
        n, k, c = 60, 3, 4.0
        traces = []
        for seed in range(10):
            g = erdos_renyi(n, 0.07, seed=seed)
            _, trace = elkin_neiman.decompose(g, k=k, c=c, seed=100 + seed)
            traces.append(trace)
        summary = aggregate_survival(traces, n)
        envelope = claim6_envelope(n, k, c, summary.max_phases_observed)
        # Allow Monte-Carlo slack of 3 standard errors-ish via a small additive.
        violations = sum(
            1
            for measured, bound in zip(summary.mean_curve, envelope)
            if measured > bound + 0.1
        )
        assert violations == 0

    def test_aggregate_validation(self):
        with pytest.raises(ParameterError):
            aggregate_survival([], 10)


class TestTheoryRows:
    def test_rows_present(self):
        rows = comparison_rows(1024)
        assert [r.algorithm for r in rows] == ["AGLP89", "PS92", "LS93", "EN16"]

    def test_en_beats_deterministic_for_large_n(self):
        # With unit constants the polylog bound overtakes 2^O(sqrt(log n))
        # only for astronomically large n (the asymptotic statement); the
        # ordering must hold there, and AGLP is always the worst.
        n = 2**50
        rows = {r.algorithm: r for r in comparison_rows(n)}
        assert rows["EN16"].colors < rows["PS92"].colors < rows["AGLP89"].colors

    def test_ps_beats_aglp_everywhere(self):
        for n in (64, 4096, 2**20):
            rows = {r.algorithm: r for r in comparison_rows(n)}
            assert rows["PS92"].colors <= rows["AGLP89"].colors

    def test_en_and_ls_same_shape_different_kind(self):
        n = 4096
        ls = ls_row(n)
        en = elkin_neiman_row(n)
        assert ls.diameter_kind == "weak"
        assert en.diameter_kind == "strong"
        assert en.colors < 10 * ls.colors  # same polylog ballpark

    def test_validation(self):
        with pytest.raises(ParameterError):
            aglp_row(1)
        with pytest.raises(ParameterError):
            elkin_neiman_row(100, c=2.0)


class TestTables:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(3.0) == "3"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(2.34567) == "2.35"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        text = format_table(["col", "b"], [[1, 22.5], [333, 4]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("col")
        assert len(lines) == 5

    def test_format_records(self):
        text = format_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert "a" in text and "4" in text

    def test_format_records_empty(self):
        assert format_records([], title="empty") == "empty"
