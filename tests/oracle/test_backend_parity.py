"""Backend parity: numpy and pure-Python query paths are bit-identical.

Same contract (and same monkeypatch idiom) as the kernel and engine
equivalence suites: flipping ``repro.graphs._kernel.USE_NUMPY`` switches
the whole stack, and results must not change by a single bit.  CI's
``REPRO_KERNEL=py`` leg covers the env-level switch.
"""

from __future__ import annotations

import pytest

from repro.graphs import _kernel
from repro.graphs import erdos_renyi, gnp_fast, grid_graph, torus_graph
from repro.oracle import build_oracle
from repro.oracle.query import _details_numpy, _details_python
from repro.rng import stream

GRAPHS = [
    ("grid", grid_graph(9, 11)),
    ("torus", torus_graph(9, 9)),
    ("er-disconnected", erdos_renyi(90, 0.02, seed=12)),
    ("gnp", gnp_fast(400, 0.012, seed=6)),
]
IDS = [name for name, _ in GRAPHS]


def _query_batch(graph, count=700):
    rng = stream(99, "parity", graph.num_vertices)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    # Force some trivial and symmetric pairs into the batch.
    pairs[:3] = [(0, 0), (n - 1, n - 1), (0, n - 1)]
    return pairs


class TestQueryParity:
    @pytest.mark.parametrize("name", IDS)
    def test_internal_paths_agree(self, name):
        graph = dict(GRAPHS)[name]
        if graph._numpy_csr() is None:  # pragma: no cover - stdlib-only
            pytest.skip("numpy not available")
        oracle = build_oracle(graph, seed=31)
        pairs = _query_batch(graph)
        sources = [p[0] for p in pairs]
        targets = [p[1] for p in pairs]
        assert _details_python(oracle, sources, targets) == _details_numpy(
            oracle, sources, targets
        )

    @pytest.mark.parametrize("name", IDS)
    def test_kernel_switch_is_bit_identical(self, name, monkeypatch):
        graph = dict(GRAPHS)[name]
        pairs = _query_batch(graph)
        oracle = build_oracle(graph, seed=31)
        with_numpy = (
            oracle.distances(pairs),
            oracle.distance_details(pairs),
            oracle.routes(pairs),
        )
        monkeypatch.setattr(_kernel, "USE_NUMPY", False)
        pure_oracle = build_oracle(graph, seed=31)
        # The build itself must be backend-independent...
        for a, b in zip(oracle.scales, pure_oracle.scales):
            assert a.radius == b.radius
            assert a.centers == b.centers
            assert a.indptr == b.indptr
            assert a.member_cluster == b.member_cluster
            assert a.member_dist == b.member_dist
            assert a.member_parent == b.member_parent
        # ...and so must every query surface.
        assert (
            pure_oracle.distances(pairs),
            pure_oracle.distance_details(pairs),
            pure_oracle.routes(pairs),
        ) == with_numpy

    def test_small_batches_use_python_path_consistently(self):
        # Batches under the crossover run the Python path even with
        # numpy enabled; answers must match the vectorised path's.
        graph = torus_graph(8, 8)
        oracle = build_oracle(graph, seed=7)
        pairs = _query_batch(graph, count=900)
        big = oracle.distances(pairs)
        small = [
            oracle.distances([pair])[0] for pair in pairs[:40]
        ]
        assert small == big[:40]
