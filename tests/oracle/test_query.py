"""Query-engine correctness: exact brute-force cross-checks and routes."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    bfs_distances,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    gnp_fast,
    path_graph,
    torus_graph,
)
from repro.oracle import TRIVIAL_SCALE, UNREACHABLE, build_oracle

GRAPHS = [
    ("path", path_graph(26)),
    ("cycle", cycle_graph(20)),
    ("grid", grid_graph(6, 8)),
    ("torus", torus_graph(7, 7)),
    ("er-disconnected", erdos_renyi(70, 0.02, seed=8)),
    ("gnp", gnp_fast(200, 0.02, seed=4)),
]
IDS = [name for name, _ in GRAPHS]


@pytest.fixture(scope="module")
def built():
    return {
        name: (graph, build_oracle(graph, seed=17)) for name, graph in GRAPHS
    }


def all_pairs(graph, limit=4000):
    return list(itertools.islice(
        itertools.combinations(range(graph.num_vertices), 2), limit
    ))


class TestEstimates:
    @pytest.mark.parametrize("name", IDS)
    def test_two_sided_guarantee_on_all_pairs(self, built, name):
        graph, oracle = built[name]
        bound = oracle.stretch_bound
        exact_from = {v: bfs_distances(graph, v) for v in graph.vertices()}
        pairs = all_pairs(graph)
        for (s, t), estimate in zip(pairs, oracle.distances(pairs)):
            exact = exact_from[s].get(t)
            if exact is None:
                assert estimate == -1
            else:
                assert exact <= estimate <= bound * exact

    @pytest.mark.parametrize("name", IDS)
    def test_self_and_adjacent_pairs_exact(self, built, name):
        graph, oracle = built[name]
        pairs = [(v, v) for v in graph.vertices()]
        pairs += list(graph.edges())
        estimates, scales, clusters = oracle.distance_details(pairs)
        n = graph.num_vertices
        assert estimates[:n] == [0] * n
        assert estimates[n:] == [1] * (len(pairs) - n)
        assert scales == [TRIVIAL_SCALE] * len(pairs)
        assert clusters == [-1] * len(pairs)

    def test_unreachable_pairs(self):
        # Two disjoint triangles.
        graph = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        oracle = build_oracle(graph, seed=3)
        estimates, scales, _ = oracle.distance_details([(0, 3), (2, 5), (0, 2)])
        assert estimates[:2] == [-1, -1]
        assert scales[:2] == [UNREACHABLE] * 2
        assert estimates[2] == 1

    @pytest.mark.parametrize("name", IDS)
    def test_first_sharing_scale_respects_min_distance(self, built, name):
        """The stretch proof's two facts: a pair whose *first* shared
        cluster appears at scale i has true distance >= min_distance_i,
        and its final estimate is at most 2 · rmax_i (the reported scale
        is the argmin over scales, which can be coarser)."""
        graph, oracle = built[name]

        def memberships(scale, v):
            return {
                scale.member_cluster[slot]
                for slot in range(scale.indptr[v], scale.indptr[v + 1])
            }

        exact_from = {v: bfs_distances(graph, v) for v in graph.vertices()}
        pairs = all_pairs(graph)
        estimates, scales, _ = oracle.distance_details(pairs)
        for (s, t), estimate, scale in zip(pairs, estimates, scales):
            if scale < 0:
                continue
            first = next(
                i
                for i, tables in enumerate(oracle.scales)
                if memberships(tables, s) & memberships(tables, t)
            )
            assert first <= scale
            assert exact_from[s][t] >= oracle.scales[first].min_distance
            assert estimate <= 2 * oracle.scales[first].rmax

    def test_empty_batch(self):
        oracle = build_oracle(path_graph(5))
        assert oracle.distances([]) == []
        assert oracle.routes([]) == []

    def test_vertex_validation(self):
        oracle = build_oracle(path_graph(5))
        with pytest.raises(GraphError):
            oracle.distances([(0, 9)])
        with pytest.raises(GraphError):
            oracle.distances([(-1, 2)])

    def test_batch_order_is_respected(self):
        graph = path_graph(12)
        oracle = build_oracle(graph, seed=5)
        pairs = [(0, 11), (3, 3), (2, 3), (11, 0)]
        estimates = oracle.distances(pairs)
        assert estimates[1] == 0
        assert estimates[2] == 1
        assert estimates[0] == estimates[3]  # symmetric pair, same answer


class TestRoutes:
    @pytest.mark.parametrize("name", IDS)
    def test_routes_are_walks_of_estimate_length(self, built, name):
        graph, oracle = built[name]
        pairs = all_pairs(graph, limit=600)
        estimates = oracle.distances(pairs)
        for (s, t), route, estimate in zip(pairs, oracle.routes(pairs), estimates):
            if estimate == -1:
                assert route is None
                continue
            assert route[0] == s and route[-1] == t
            assert len(route) - 1 == estimate
            for a, b in zip(route, route[1:]):
                assert graph.has_edge(a, b)

    def test_trivial_routes(self):
        graph = path_graph(4)
        oracle = build_oracle(graph)
        assert oracle.routes([(2, 2)]) == [[2]]
        assert oracle.routes([(1, 2)]) == [[1, 2]]
