"""Structural invariants of the oracle build: pyramid, covers, tables."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.graphs import (
    Graph,
    bfs_distances_bounded,
    connected_components,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    gnp_fast,
    path_graph,
    torus_graph,
)
from repro.oracle import build_oracle
from repro.oracle.hierarchy import base_level, coarsen_level, component_level

GRAPHS = [
    ("path", path_graph(30)),
    ("cycle", cycle_graph(24)),
    ("grid", grid_graph(7, 9)),
    ("torus", torus_graph(8, 8)),
    ("er", erdos_renyi(80, 0.04, seed=3)),
    ("gnp-sparse", gnp_fast(300, 0.008, seed=5)),
    ("empty-edges", Graph(12)),
]
IDS = [name for name, _ in GRAPHS]


@pytest.fixture(scope="module")
def oracles():
    return {name: build_oracle(graph, seed=11) for name, graph in GRAPHS}


class TestPyramid:
    def test_base_level_partitions(self):
        graph = erdos_renyi(60, 0.06, seed=2)
        level = base_level(graph, k=4, c=4.0, seed=7)
        assert len(level.core_of) == graph.num_vertices
        assert set(level.core_of) == set(range(level.num_cores))
        for j, center in enumerate(level.centers):
            assert level.core_of[center] == j

    def test_coarsen_merges_only_along_edges(self):
        graph = grid_graph(6, 6)
        level = base_level(graph, k=3, c=4.0, seed=7)
        coarse = coarsen_level(graph, level, c=4.0, seed=7, depth=1)
        assert coarse.num_cores <= level.num_cores
        # Coarse cores are unions of fine cores.
        fine_to_coarse = {}
        for v in graph.vertices():
            fine = level.core_of[v]
            coarse_id = coarse.core_of[v]
            assert fine_to_coarse.setdefault(fine, coarse_id) == coarse_id

    def test_component_level_matches_components(self):
        graph = erdos_renyi(50, 0.02, seed=9)
        level = component_level(graph)
        assert level.is_components
        components = connected_components(graph)
        assert level.num_cores == len(components)
        for component in components:
            labels = {level.core_of[v] for v in component}
            assert len(labels) == 1


class TestScaleTables:
    @pytest.mark.parametrize("name", IDS)
    def test_csr_columns_consistent(self, oracles, name):
        oracle = oracles[name]
        n = oracle.graph.num_vertices
        for scale in oracle.scales:
            assert len(scale.indptr) == n + 1
            assert scale.indptr[0] == 0
            assert scale.indptr[n] == scale.entries
            assert len(scale.member_dist) == scale.entries
            assert len(scale.member_parent) == scale.entries
            for v in range(n):
                lo, hi = scale.indptr[v], scale.indptr[v + 1]
                row = scale.member_cluster[lo:hi]
                assert list(row) == sorted(set(row)), "unsorted membership row"
                for slot in range(lo, hi):
                    cluster = scale.member_cluster[slot]
                    assert 0 <= cluster < scale.num_clusters
                    assert 0 <= scale.member_dist[slot] <= scale.ecc[cluster]

    @pytest.mark.parametrize("name", IDS)
    def test_every_vertex_covered_at_every_scale(self, oracles, name):
        oracle = oracles[name]
        for scale in oracle.scales:
            for v in oracle.graph.vertices():
                assert scale.indptr[v + 1] > scale.indptr[v]

    @pytest.mark.parametrize("name", IDS)
    def test_covering_property(self, oracles, name):
        """Every W-ball is inside at least one cluster of the scale."""
        oracle = oracles[name]
        graph = oracle.graph
        for scale in oracle.scales:
            membership = [
                {
                    scale.member_cluster[slot]
                    for slot in range(scale.indptr[v], scale.indptr[v + 1])
                }
                for v in graph.vertices()
            ]
            for v in graph.vertices():
                ball = bfs_distances_bounded(graph, v, scale.radius)
                shared = set(membership[v])
                for u in ball:
                    shared &= membership[u]
                assert shared, f"W={scale.radius}: ball of {v} not covered"

    @pytest.mark.parametrize("name", IDS)
    def test_terminal_scale_is_component_complete(self, oracles, name):
        oracle = oracles[name]
        graph = oracle.graph
        if graph.num_vertices == 0:
            assert oracle.scales == []
            return
        last = oracle.scales[-1]
        assert last.is_components
        # Any same-component pair shares a cluster at the last scale.
        for component in connected_components(graph):
            shared = None
            for v in component:
                mine = {
                    last.member_cluster[slot]
                    for slot in range(last.indptr[v], last.indptr[v + 1])
                }
                shared = mine if shared is None else shared & mine
            assert shared

    @pytest.mark.parametrize("name", IDS)
    def test_center_distances_exact_in_cluster(self, oracles, name):
        """Stored distances match BFS inside the cluster's induced subgraph."""
        oracle = oracles[name]
        graph = oracle.graph
        for scale in oracle.scales[:2]:
            members_of: dict[int, list[int]] = {}
            for v in graph.vertices():
                for slot in range(scale.indptr[v], scale.indptr[v + 1]):
                    members_of.setdefault(scale.member_cluster[slot], []).append(v)
            for cluster, members in members_of.items():
                center = scale.centers[cluster]
                exact = bfs_distances_bounded(
                    graph, center, radius=None, active=set(members)
                )
                for v in members:
                    slot = next(
                        s
                        for s in range(scale.indptr[v], scale.indptr[v + 1])
                        if scale.member_cluster[s] == cluster
                    )
                    assert scale.member_dist[slot] == exact[v]

    @pytest.mark.parametrize("name", IDS)
    def test_parent_pointers_walk_to_center(self, oracles, name):
        oracle = oracles[name]
        graph = oracle.graph
        for scale in oracle.scales:
            for v in graph.vertices():
                for slot in range(scale.indptr[v], scale.indptr[v + 1]):
                    cluster = scale.member_cluster[slot]
                    steps = 0
                    current, at = v, slot
                    while scale.member_parent[at] >= 0:
                        parent = scale.member_parent[at]
                        assert graph.has_edge(current, parent)
                        current = parent
                        steps += 1
                        lo, hi = scale.indptr[current], scale.indptr[current + 1]
                        at = next(
                            s for s in range(lo, hi)
                            if scale.member_cluster[s] == cluster
                        )
                    assert current == scale.centers[cluster]
                    assert steps == scale.member_dist[slot]


class TestBuildPolicy:
    def test_deterministic_given_seed(self):
        graph = erdos_renyi(70, 0.05, seed=4)
        first = build_oracle(graph, seed=21)
        second = build_oracle(graph, seed=21)
        assert len(first.scales) == len(second.scales)
        for a, b in zip(first.scales, second.scales):
            assert a.radius == b.radius
            assert a.centers == b.centers
            assert a.indptr == b.indptr
            assert a.member_cluster == b.member_cluster
            assert a.member_dist == b.member_dist
            assert a.member_parent == b.member_parent

    def test_overlap_budget_skips_saturated_scales(self):
        # A dense-ish graph saturates quickly under a tight budget.
        graph = erdos_renyi(120, 0.12, seed=6)
        tight = build_oracle(graph, seed=3, overlap_budget=1.5)
        assert tight.scales[-1].is_components
        assert tight.stretch_bound >= 1.0

    def test_overlap_budget_validation(self):
        with pytest.raises(ParameterError, match="overlap_budget"):
            build_oracle(path_graph(4), overlap_budget=0.5)

    def test_min_distance_chain_is_monotone(self):
        for name, graph in GRAPHS:
            oracle = build_oracle(graph, seed=13)
            floors = [scale.min_distance for scale in oracle.scales]
            assert floors == sorted(floors)
            if floors:
                assert floors[0] == 2

    def test_empty_graph(self):
        oracle = build_oracle(Graph(0))
        assert oracle.scales == []
        assert oracle.stretch_bound == 1.0

    def test_single_vertex(self):
        oracle = build_oracle(Graph(1))
        assert oracle.num_scales == 1
        assert oracle.distances([(0, 0)]) == [0]
