"""Shared fixtures: a zoo of small graphs exercised across the suite."""

from __future__ import annotations

import pytest

from repro.distributed.async_net import _REGISTRY, live_networks
from repro.graphs import (
    Graph,
    balanced_tree,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_connected,
    random_regular,
    star_graph,
)


@pytest.fixture(autouse=True)
def _async_network_leak_guard():
    """Fail any test that abandons an async engine mid-flight.

    An :class:`~repro.distributed.async_net.AsyncNetwork` left with
    undelivered messages (scheduled events or redelivery buffers) while
    some node is still live is a flakiness hazard: the test passed
    without the protocol actually finishing.  Run the network to
    quiescence, or call ``close()`` on a deliberately-abandoned one.
    """
    _REGISTRY.clear()
    yield
    leaked = [net for net in live_networks() if net.leaked]
    _REGISTRY.clear()
    assert not leaked, (
        f"{len(leaked)} AsyncNetwork(s) abandoned with "
        f"{sum(net.messages_in_flight for net in leaked)} undelivered "
        "message(s): run to quiescence or close() deliberately-abandoned "
        "networks"
    )


@pytest.fixture
def path10() -> Graph:
    return path_graph(10)


@pytest.fixture
def cycle12() -> Graph:
    return cycle_graph(12)


@pytest.fixture
def grid5x5() -> Graph:
    return grid_graph(5, 5)


@pytest.fixture
def k5() -> Graph:
    return complete_graph(5)


@pytest.fixture
def star9() -> Graph:
    return star_graph(9)


@pytest.fixture
def tree_b2h3() -> Graph:
    return balanced_tree(2, 3)


@pytest.fixture
def cube4() -> Graph:
    return hypercube_graph(4)


@pytest.fixture
def er80() -> Graph:
    return erdos_renyi(80, 0.06, seed=8)


@pytest.fixture
def connected60() -> Graph:
    return random_connected(60, 0.02, seed=3)


@pytest.fixture
def regular_exp() -> Graph:
    """A 4-regular 'expander-ish' random graph."""
    return random_regular(50, 4, seed=6)


def graph_zoo() -> list[tuple[str, Graph]]:
    """A deterministic collection of diverse topologies for sweep tests."""
    return [
        ("path", path_graph(17)),
        ("cycle", cycle_graph(16)),
        ("grid", grid_graph(5, 6)),
        ("tree", balanced_tree(2, 4)),
        ("star", star_graph(12)),
        ("complete", complete_graph(8)),
        ("hypercube", hypercube_graph(4)),
        ("er-sparse", erdos_renyi(40, 0.06, seed=1)),
        ("er-dense", erdos_renyi(30, 0.25, seed=2)),
        ("connected", random_connected(35, 0.03, seed=4)),
    ]


@pytest.fixture(params=graph_zoo(), ids=lambda pair: pair[0])
def zoo_graph(request) -> Graph:
    """Parametrised fixture iterating over the whole zoo."""
    return request.param[1]
