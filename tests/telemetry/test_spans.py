"""Span nesting, exception safety, and ambient resolution."""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.telemetry import (
    Telemetry,
    configure,
    maybe_span,
    parse_setting,
    read_trace,
    reset,
    resolve,
    shutdown,
)


@pytest.fixture(autouse=True)
def _isolated_ambient(monkeypatch):
    """Every test starts and ends with no ambient trace and no env."""
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    reset()
    yield
    reset()


class TestSpanNesting:
    def test_paths_and_depths(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("middle"):
                with tel.span("inner"):
                    pass
        paths = [(r["path"], r["depth"]) for r in tel.spans]
        # Close order: innermost first.
        assert paths == [
            ("outer/middle/inner", 2),
            ("outer/middle", 1),
            ("outer", 0),
        ]

    def test_siblings_share_parent_path(self):
        tel = Telemetry()
        with tel.span("run"):
            with tel.span("phase"):
                pass
            with tel.span("phase"):
                pass
        assert [r["path"] for r in tel.spans] == ["run/phase", "run/phase", "run"]

    def test_self_seconds_never_exceed_cumulative(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                sum(range(1000))
        outer = next(r for r in tel.spans if r["name"] == "outer")
        inner = next(r for r in tel.spans if r["name"] == "inner")
        assert 0 <= outer["self_seconds"] <= outer["seconds"]
        assert inner["seconds"] <= outer["seconds"] + 1e-6

    def test_counters_and_attributes(self):
        tel = Telemetry()
        with tel.span("work", label="x") as span:
            span.add("items", 3)
            span.add("items", 2)
            span.annotate(budget=7)
        record = tel.spans[0]
        assert record["counters"] == {"items": 5}
        assert record["attrs"] == {"label": "x", "budget": 7}

    def test_total_seconds_by_name_and_path(self):
        tel = Telemetry()
        with tel.span("build"):
            with tel.span("scale"):
                pass
            with tel.span("scale"):
                pass
        assert tel.total_seconds("scale") == pytest.approx(
            tel.total_seconds("build/scale")
        )
        assert tel.total_seconds("nope") == 0.0


class TestExceptionSafety:
    def test_raising_body_still_closes_the_span(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("doomed"):
                raise ValueError("boom")
        record = tel.spans[0]
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "ValueError"

    def test_stack_is_clean_after_an_exception(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("outer"):
                with tel.span("inner"):
                    raise RuntimeError
        with tel.span("after"):
            pass
        after = next(r for r in tel.spans if r["name"] == "after")
        assert after["depth"] == 0 and after["path"] == "after"

    def test_parent_of_raising_child_is_marked_too(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("outer"):
                with tel.span("inner"):
                    raise ValueError
        statuses = {r["name"]: r["status"] for r in tel.spans}
        assert statuses == {"inner": "error", "outer": "error"}


class TestMaybeSpan:
    def test_disabled_mode_yields_none(self):
        with maybe_span(None, "anything") as span:
            assert span is None

    def test_disabled_mode_swallows_nothing(self):
        with pytest.raises(KeyError):
            with maybe_span(None, "anything"):
                raise KeyError

    def test_name_attribute_does_not_collide(self):
        tel = Telemetry()
        with maybe_span(tel, "experiment", name="spec-name"):
            pass
        assert tel.spans[0]["name"] == "experiment"
        assert tel.spans[0]["attrs"] == {"name": "spec-name"}


class TestCollectorBounds:
    def test_limit_truncates_but_keeps_prefix(self):
        tel = Telemetry(limit=2)
        for index in range(3):
            with tel.span(f"s{index}"):
                pass
        assert [r["name"] for r in tel.spans] == ["s0", "s1"]
        assert tel.truncated

    def test_limit_must_be_positive(self):
        with pytest.raises(ParameterError, match="limit"):
            Telemetry(limit=0)

    def test_block_shape(self):
        tel = Telemetry()
        with tel.span("a"):
            pass
        block = tel.block()
        assert block["version"] == "en16.telemetry.v1"
        assert block["sink"] is None
        assert block["rounds"] == 0 and block["events"] == 0
        assert block["truncated"] is False
        assert block["spans"][0]["span"] == "a"


class TestAmbientResolution:
    def test_parse_setting_off_variants(self):
        for value in ("", "off", "OFF", "0", "false", "none", "  no  "):
            assert parse_setting(value) is None

    def test_parse_setting_mem_and_path(self, tmp_path):
        assert parse_setting("mem").sink is None
        sink_path = tmp_path / "trace.jsonl"
        tel = parse_setting(str(sink_path))
        assert tel.sink is not None and tel.sink.path == sink_path

    def test_explicit_argument_wins(self):
        ambient = configure(Telemetry())
        mine = Telemetry()
        assert resolve(mine) is mine
        assert resolve(None) is ambient

    def test_environment_is_read_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "mem")
        first = resolve(None)
        assert first is not None
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert resolve(None) is first  # cached until reset()
        reset()
        assert resolve(None) is None

    def test_shutdown_flushes_the_ambient_sink(self, tmp_path):
        sink_path = tmp_path / "trace.jsonl"
        configure(parse_setting(str(sink_path)))
        with resolve(None).span("work"):
            pass
        shutdown()
        header, records = read_trace(sink_path)
        assert header["telemetry_version"] == "en16.telemetry.v1"
        kinds = [record["kind"] for record in records]
        assert kinds == ["span", "summary"]
        assert resolve(None) is None

    def test_artifact_block_serializes(self):
        tel = Telemetry()
        with tel.span("a", graph="er:30:0.2") as span:
            span.add("joined", 4)
        assert json.loads(json.dumps(tel.block()))["spans"][0]["counters"] == {
            "joined": 4
        }
