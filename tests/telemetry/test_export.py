"""Chrome trace-event export: mapping, losslessness, schema validation."""

from __future__ import annotations

import json

import pytest

from repro.core.distributed_en import decompose_distributed
from repro.graphs import erdos_renyi
from repro.telemetry import (
    JsonlSink,
    Telemetry,
    chrome_trace,
    read_trace,
    validate_chrome_trace,
)
from repro.telemetry.export import ROUND_TICK_US, export_text


@pytest.fixture()
def traced_run_records(tmp_path):
    """A real trace: seeded distributed-EN run with spans, rounds, hists."""
    path = tmp_path / "run.jsonl"
    tel = Telemetry(sink=JsonlSink(path))
    decompose_distributed(
        erdos_renyi(40, 0.12, seed=5), k=3, seed=2, backend="batch", telemetry=tel
    )
    tel.close()
    _header, records = read_trace(path)
    return records


class TestChromeTraceMapping:
    def test_real_trace_exports_valid_and_complete(self, traced_run_records):
        payload = chrome_trace(traced_run_records)
        validate_chrome_trace(payload)
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert "X" in phases and "C" in phases and "M" in phases
        span_events = [
            e for e in payload["traceEvents"] if e["ph"] == "X"
        ]
        counter_events = [
            e for e in payload["traceEvents"] if e["ph"] == "C"
        ]
        n_spans = sum(1 for r in traced_run_records if r["kind"] == "span")
        n_rounds = sum(1 for r in traced_run_records if r["kind"] == "round")
        assert len(span_events) == n_spans
        assert len(counter_events) == n_rounds

    def test_span_events_carry_real_timeline_and_args(self, traced_run_records):
        payload = chrome_trace(traced_run_records)
        run = next(
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "en.decompose"
        )
        assert run["ts"] >= 0 and run["dur"] >= 0
        assert run["args"]["attrs"]["backend"] == "batch"
        phase = next(
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "en.decompose/phase"
        )
        # Children start within the parent on the shared epoch clock.
        assert run["ts"] <= phase["ts"] <= run["ts"] + run["dur"]

    def test_rounds_chart_on_the_synthetic_round_clock(self, traced_run_records):
        payload = chrome_trace(traced_run_records)
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        rounds = [
            r["round"] for r in traced_run_records if r["kind"] == "round"
        ]
        assert [e["ts"] for e in counters] == sorted(
            r * ROUND_TICK_US for r in rounds
        )
        # Numeric columns chart; the backend label moved to the instant.
        assert "live" in counters[0]["args"]
        assert "backend" not in counters[0]["args"]
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert any(e["args"].get("backend") == "batch" for e in instants)

    def test_hists_and_summary_survive_losslessly(self, traced_run_records):
        payload = chrome_trace(traced_run_records)
        hist_records = {
            r["name"]: r for r in traced_run_records if r["kind"] == "hist"
        }
        assert hist_records  # the round stream fed its histogram
        for name, record in hist_records.items():
            exported = payload["otherData"]["hists"][name]
            assert exported["counts"] == record["counts"]
            assert exported["count"] == record["count"]
        assert payload["otherData"]["summary"]["spans"] == sum(
            1 for r in traced_run_records if r["kind"] == "span"
        )

    def test_unknown_and_truncated_records_are_kept(self):
        payload = chrome_trace([
            {"kind": "truncated", "dropped": 3},
            {"kind": "truncated", "dropped": 4},
            {"kind": "mystery", "value": 1},
        ])
        validate_chrome_trace(payload)
        assert payload["otherData"]["truncated_dropped"] == 7
        assert payload["otherData"]["unknown_records"] == [
            {"kind": "mystery", "value": 1}
        ]

    def test_spans_without_start_lay_out_end_to_end(self):
        # Traces recorded before the epoch field still export.
        payload = chrome_trace([
            {"kind": "span", "name": "a", "path": "a", "seconds": 0.001},
            {"kind": "span", "name": "b", "path": "b", "seconds": 0.002},
        ])
        validate_chrome_trace(payload)
        first, second = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert first["ts"] + first["dur"] < second["ts"]

    def test_per_message_events_become_instants(self):
        payload = chrome_trace([
            {"kind": "event", "round": 2, "event": "send", "node": 1, "peer": 4},
        ])
        validate_chrome_trace(payload)
        instant = next(e for e in payload["traceEvents"] if e["ph"] == "i")
        assert instant["name"] == "send"
        assert instant["ts"] == 2 * ROUND_TICK_US
        assert instant["args"] == {"node": 1, "peer": 4, "round": 2}


class TestCausalFlows:
    def test_causal_msg_rows_become_paired_flow_events(self, traced_run_records):
        payload = chrome_trace(traced_run_records)
        validate_chrome_trace(payload)
        msg_rows = [
            r for r in traced_run_records
            if r["kind"] == "causal" and r["edge"] == "msg"
        ]
        assert msg_rows  # the traced run recorded provenance
        starts = [e for e in payload["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(msg_rows)
        assert len(ends) == len(msg_rows)
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        assert all(e["bp"] == "e" for e in ends)

    def test_flow_events_sit_on_the_round_clock(self):
        payload = chrome_trace([
            {"kind": "causal", "stream": "en.causal", "edge": "msg",
             "send": 3, "send_round": 1, "recv": 7, "recv_round": 2, "count": 1},
            {"kind": "causal", "stream": "en.causal", "edge": "halt",
             "node": 7, "round": 4},
        ])
        validate_chrome_trace(payload)
        start = next(e for e in payload["traceEvents"] if e["ph"] == "s")
        end = next(e for e in payload["traceEvents"] if e["ph"] == "f")
        assert start["ts"] == 1 * ROUND_TICK_US
        assert end["ts"] == 2 * ROUND_TICK_US
        assert start["id"] == end["id"]
        assert start["args"] == {"send": 3, "recv": 7, "count": 1}
        halt = next(
            e for e in payload["traceEvents"]
            if e["ph"] == "i" and e["name"] == "halt"
        )
        assert halt["ts"] == 4 * ROUND_TICK_US
        assert halt["args"] == {"node": 7}

    def test_unpaired_flow_events_are_rejected(self):
        start = {"name": "msg", "ph": "s", "id": 1, "ts": 0, "pid": 2, "tid": 1}
        end = {"name": "msg", "ph": "f", "bp": "e", "id": 1, "ts": 1000,
               "pid": 2, "tid": 1}
        validate_chrome_trace({"traceEvents": [start, end]})
        with pytest.raises(ValueError, match="not paired"):
            validate_chrome_trace({"traceEvents": [start]})
        with pytest.raises(ValueError, match="not paired"):
            validate_chrome_trace({"traceEvents": [end]})
        with pytest.raises(ValueError, match="not paired"):
            validate_chrome_trace(
                {"traceEvents": [start, {**end, "id": 2}]}
            )

    def test_flow_events_need_integer_ids_and_timestamps(self):
        start = {"name": "msg", "ph": "s", "id": 1, "ts": 0, "pid": 2, "tid": 1}
        end = {"name": "msg", "ph": "f", "bp": "e", "id": 1, "ts": 1000,
               "pid": 2, "tid": 1}
        with pytest.raises(ValueError, match="integer id"):
            validate_chrome_trace(
                {"traceEvents": [{**start, "id": "one"}, end]}
            )
        with pytest.raises(ValueError, match="integer id"):
            validate_chrome_trace(
                {"traceEvents": [{**start, "id": True}, end]}
            )
        with pytest.raises(ValueError, match="non-negative integer ts"):
            validate_chrome_trace(
                {"traceEvents": [{**start, "ts": -1000}, end]}
            )


class TestValidation:
    def test_rejects_non_object_payloads(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_malformed_events(self):
        good = {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
        validate_chrome_trace({"traceEvents": [good]})
        for broken in (
            {**good, "ph": "Z"},
            {**good, "ts": -1},
            {**good, "dur": None},
            {**good, "name": 7},
            {**good, "pid": "one"},
            {"name": "i", "ph": "i", "ts": 0, "pid": 1, "tid": 1, "s": "x"},
        ):
            with pytest.raises(ValueError):
                validate_chrome_trace({"traceEvents": [broken]})

    def test_rejects_unserializable_payloads(self):
        event = {
            "name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1,
            "args": {"bad": object()},
        }
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [event]})


class TestExportText:
    def test_chrome_text_is_one_loadable_object(self, traced_run_records):
        text = export_text(traced_run_records, fmt="chrome")
        payload = json.loads(text)
        validate_chrome_trace(payload)
        assert text.endswith("\n")

    def test_jsonl_text_is_one_event_per_line(self, traced_run_records):
        lines = export_text(traced_run_records, fmt="jsonl").strip().split("\n")
        chrome = json.loads(export_text(traced_run_records, fmt="chrome"))
        assert [json.loads(line) for line in lines] == chrome["traceEvents"]

    def test_unknown_format_is_rejected(self, traced_run_records):
        with pytest.raises(ValueError):
            export_text(traced_run_records, fmt="svg")
