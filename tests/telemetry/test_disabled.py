"""Disabled-mode guarantees: no trace, no files, no allocations.

``REPRO_TELEMETRY=off`` (or unset) must make the entire layer vanish:
instrumented call sites reduce to one ``is None`` test, no file is ever
created, and the engine round loop allocates nothing from the telemetry
modules.  The wall-clock side of the contract (< 2% overhead) is gated
separately by ``benchmarks/bench_telemetry.py``.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.distributed_en import decompose_distributed
from repro.graphs import erdos_renyi
from repro.telemetry import reset, resolve


@pytest.fixture(autouse=True)
def _disabled_ambient(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    reset()
    yield
    reset()


class TestDisabledMode:
    def test_unset_environment_resolves_to_none(self):
        assert resolve(None) is None

    @pytest.mark.parametrize("value", ["off", "0", "false", "", "none"])
    def test_off_settings_resolve_to_none(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        reset()
        assert resolve(None) is None

    def test_untraced_run_creates_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        reset()
        decompose_distributed(erdos_renyi(40, 0.1, seed=3), k=3, seed=1)
        assert list(tmp_path.iterdir()) == []

    def test_round_loop_allocates_nothing_from_telemetry(self):
        """The no-op guarantee, measured: an untraced batch run must not
        allocate a single block inside the telemetry modules."""
        import repro.telemetry.core as core
        import repro.telemetry.events as events
        import repro.telemetry.rounds as rounds
        import repro.telemetry.sink as sink

        graph = erdos_renyi(60, 0.1, seed=3)
        resolve(None)  # warm the read-once environment cache
        decompose_distributed(graph, k=3, seed=1, backend="batch")  # warm caches
        filters = [
            tracemalloc.Filter(True, module.__file__)
            for module in (core, events, rounds, sink)
        ]
        tracemalloc.start()
        try:
            decompose_distributed(graph, k=3, seed=1, backend="batch")
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        telemetry_allocations = snapshot.filter_traces(filters).statistics("lineno")
        assert telemetry_allocations == []

    def test_results_identical_with_and_without_ambient_trace(self, monkeypatch):
        graph = erdos_renyi(40, 0.12, seed=9)
        plain = decompose_distributed(graph, k=3, seed=2, backend="batch")
        monkeypatch.setenv("REPRO_TELEMETRY", "mem")
        reset()
        traced = decompose_distributed(graph, k=3, seed=2, backend="batch")
        tel = resolve(None)
        assert tel is not None and tel.rounds  # the trace really was live
        assert traced.stats == plain.stats
        assert traced.rounds_per_phase == plain.rounds_per_phase
        assert (
            traced.decomposition.cluster_index_map()
            == plain.decomposition.cluster_index_map()
        )
