"""Resource snapshots: fields, span annotation, artifact usage block."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.telemetry import (
    ResourceSnapshot,
    Telemetry,
    measure_span,
    snapshot,
    usage_block,
)
from repro.telemetry.resources import delta_block


class TestSnapshot:
    def test_fields_have_the_documented_shapes(self):
        snap = snapshot()
        assert isinstance(snap, ResourceSnapshot)
        assert snap.cpu_user_seconds >= 0
        assert snap.cpu_system_seconds >= 0
        assert snap.gc_collections >= 0
        for field in (snap.rss_kb, snap.peak_rss_kb):
            assert field is None or (isinstance(field, int) and field > 0)

    def test_cpu_seconds_sums_user_and_system(self):
        snap = snapshot()
        assert snap.cpu_seconds == pytest.approx(
            snap.cpu_user_seconds + snap.cpu_system_seconds
        )

    def test_tracemalloc_peak_only_when_tracing(self):
        assert not tracemalloc.is_tracing()
        assert snapshot().tracemalloc_peak_kb is None
        tracemalloc.start()
        try:
            blob = [0] * 50_000  # noqa: F841 -- grow the traced heap
            assert snapshot().tracemalloc_peak_kb > 0
        finally:
            tracemalloc.stop()

    def test_monotone_counters_never_regress(self):
        before = snapshot()
        sum(i * i for i in range(200_000))
        after = snapshot()
        assert after.cpu_seconds >= before.cpu_seconds
        assert after.gc_collections >= before.gc_collections


class TestDeltaBlock:
    def test_deltas_for_counters_absolutes_for_gauges(self):
        before = snapshot()
        sum(i * i for i in range(200_000))
        block = delta_block(before, snapshot())
        assert block["cpu_seconds"] >= 0
        assert block["gc_collections"] >= 0
        if block.get("rss_kb") is not None:
            assert block["rss_kb"] > 0
            assert "rss_delta_kb" in block

    def test_json_serializable(self):
        import json

        json.dumps(delta_block(snapshot(), snapshot()))


class TestMeasureSpan:
    def test_annotates_the_span_with_one_resources_attr(self):
        tel = Telemetry()
        with tel.span("trial") as span, measure_span(span):
            sum(i for i in range(50_000))
        record = tel.spans[-1]
        resources = record["attrs"]["resources"]
        assert resources["cpu_seconds"] >= 0
        assert "gc_collections" in resources

    def test_none_span_is_a_no_op(self):
        with measure_span(None) as span:
            assert span is None

    def test_annotates_even_when_the_body_raises(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("trial") as span, measure_span(span):
                raise RuntimeError("boom")
        record = tel.spans[-1]
        assert record["status"] == "error"
        assert "resources" in record["attrs"]


class TestUsageBlock:
    def test_shape_matches_the_artifact_contract(self):
        block = usage_block()
        assert set(block) == {"peak_rss_kb", "cpu_seconds"}
        assert block["cpu_seconds"] >= 0
        assert block["peak_rss_kb"] is None or block["peak_rss_kb"] > 0
