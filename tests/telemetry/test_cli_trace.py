"""The ``--trace`` flag and the ``repro trace`` reporting commands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.distributed_en import decompose_distributed
from repro.graphs import erdos_renyi
from repro.telemetry import JsonlSink, Telemetry, read_trace, reset


@pytest.fixture(autouse=True)
def _isolated_ambient(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    reset()
    yield
    reset()


@pytest.fixture()
def trace_file(tmp_path):
    """A real trace: a seeded distributed-EN run mirrored to JSONL."""
    path = tmp_path / "run.jsonl"
    tel = Telemetry(sink=JsonlSink(path))
    decompose_distributed(
        erdos_renyi(40, 0.12, seed=5), k=3, seed=2, backend="batch", telemetry=tel
    )
    tel.close()
    return path


class TestTraceFlag:
    def test_traced_command_writes_a_readable_trace(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        assert main(["--trace", str(path), "oracle", "build", "grid:6:6"]) == 0
        capsys.readouterr()
        header, records = read_trace(path)
        assert header["telemetry_version"] == "en16.telemetry.v1"
        names = {r.get("name") for r in records if r.get("kind") == "span"}
        assert "oracle.build" in names and "scale" in names

    def test_trace_off_setting_is_accepted(self, capsys):
        assert main(["--trace", "off", "oracle", "build", "grid:5:5"]) == 0

    def test_oracle_artifact_always_carries_telemetry_block(self, tmp_path, capsys):
        path = tmp_path / "oracle.json"
        argv = [
            "oracle", "query", "er:48:0.08",
            "--pairs", "50", "--json", str(path),
        ]
        assert main(argv) == 0
        payload = json.loads(path.read_text())
        block = payload["telemetry"]
        assert block["version"] == "en16.telemetry.v1"
        spans = {row["span"] for row in block["spans"]}
        assert "oracle.build" in spans
        assert any(span.startswith("oracle.query") for span in spans)


class TestTraceSummarize:
    def test_exits_zero_and_prints_the_tree(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "en.decompose" in out
        assert "phase" in out
        assert "round record(s)" in out

    def test_json_artifact(self, trace_file, tmp_path, capsys):
        artifact = tmp_path / "summary.json"
        argv = ["trace", "summarize", str(trace_file), "--json", str(artifact)]
        assert main(argv) == 0
        payload = json.loads(artifact.read_text())
        assert payload["command"] == "trace summarize"
        paths = [row["span"] for row in payload["spans"]]
        assert "en.decompose" in paths and "en.decompose/phase" in paths

    def test_missing_file_is_a_parameter_error(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceTimeline:
    def test_stream_rows_in_emit_order(self, trace_file, capsys):
        assert main(["trace", "timeline", str(trace_file), "--stream", "en.rounds"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out and "halts" in out

    def test_unknown_stream_lists_available(self, trace_file, capsys):
        code = main(["trace", "timeline", str(trace_file), "--stream", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "en.rounds" in err

    def test_json_rows_reconcile_with_the_run(self, trace_file, tmp_path, capsys):
        artifact = tmp_path / "timeline.json"
        argv = ["trace", "timeline", str(trace_file), "--json", str(artifact)]
        assert main(argv) == 0
        rows = json.loads(artifact.read_text())["rows"]
        assert rows and all(row["stream"] == "en.rounds" for row in rows)
        assert sum(row["halts"] for row in rows) == 40


class TestTraceDiff:
    def test_same_trace_diffs_clean(self, trace_file, tmp_path, capsys):
        artifact = tmp_path / "diff.json"
        argv = [
            "trace", "diff", str(trace_file), "--baseline", str(trace_file),
            "--json", str(artifact),
        ]
        assert main(argv) == 0
        payload = json.loads(artifact.read_text())
        assert payload["command"] == "trace diff"
        assert all(row["status"] == "ok" for row in payload["rows"])

    def test_structural_drift_is_flagged(self, trace_file, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        tel = Telemetry(sink=JsonlSink(other))
        with tel.span("en.decompose"):
            pass
        with tel.span("extra.stage"):
            pass
        tel.close()
        artifact = tmp_path / "drift.json"
        argv = [
            "trace", "diff", str(other), "--baseline", str(trace_file),
            "--json", str(artifact),
        ]
        assert main(argv) == 0
        statuses = {
            row["span"]: row["status"]
            for row in json.loads(artifact.read_text())["rows"]
        }
        assert statuses["extra.stage"] == "added"
        assert statuses["en.decompose/phase"] == "removed"
