"""The ``--trace`` flag and the ``repro trace`` reporting commands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.distributed_en import decompose_distributed
from repro.graphs import erdos_renyi
from repro.telemetry import JsonlSink, Telemetry, read_trace, reset


@pytest.fixture(autouse=True)
def _isolated_ambient(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    reset()
    yield
    reset()


@pytest.fixture()
def trace_file(tmp_path):
    """A real trace: a seeded distributed-EN run mirrored to JSONL."""
    path = tmp_path / "run.jsonl"
    tel = Telemetry(sink=JsonlSink(path))
    decompose_distributed(
        erdos_renyi(40, 0.12, seed=5), k=3, seed=2, backend="batch", telemetry=tel
    )
    tel.close()
    return path


class TestTraceFlag:
    def test_traced_command_writes_a_readable_trace(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        assert main(["--trace", str(path), "oracle", "build", "grid:6:6"]) == 0
        capsys.readouterr()
        header, records = read_trace(path)
        assert header["telemetry_version"] == "en16.telemetry.v1"
        names = {r.get("name") for r in records if r.get("kind") == "span"}
        assert "oracle.build" in names and "scale" in names

    def test_trace_off_setting_is_accepted(self, capsys):
        assert main(["--trace", "off", "oracle", "build", "grid:5:5"]) == 0

    def test_oracle_artifact_always_carries_telemetry_block(self, tmp_path, capsys):
        path = tmp_path / "oracle.json"
        argv = [
            "oracle", "query", "er:48:0.08",
            "--pairs", "50", "--json", str(path),
        ]
        assert main(argv) == 0
        payload = json.loads(path.read_text())
        block = payload["telemetry"]
        assert block["version"] == "en16.telemetry.v1"
        spans = {row["span"] for row in block["spans"]}
        assert "oracle.build" in spans
        assert any(span.startswith("oracle.query") for span in spans)


class TestTraceSummarize:
    def test_exits_zero_and_prints_the_tree(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "en.decompose" in out
        assert "phase" in out
        assert "round record(s)" in out

    def test_header_prints_per_kind_record_counts(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        header = next(
            line for line in out.splitlines() if line.startswith("records:")
        )
        assert "causal=" in header and "round=" in header and "span=" in header

    def test_json_artifact(self, trace_file, tmp_path, capsys):
        artifact = tmp_path / "summary.json"
        argv = ["trace", "summarize", str(trace_file), "--json", str(artifact)]
        assert main(argv) == 0
        payload = json.loads(artifact.read_text())
        assert payload["command"] == "trace summarize"
        paths = [row["span"] for row in payload["spans"]]
        assert "en.decompose" in paths and "en.decompose/phase" in paths

    def test_missing_file_is_a_parameter_error(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceTimeline:
    def test_stream_rows_in_emit_order(self, trace_file, capsys):
        assert main(["trace", "timeline", str(trace_file), "--stream", "en.rounds"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out and "halts" in out

    def test_unknown_stream_lists_available(self, trace_file, capsys):
        code = main(["trace", "timeline", str(trace_file), "--stream", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "en.rounds" in err

    def test_json_rows_reconcile_with_the_run(self, trace_file, tmp_path, capsys):
        artifact = tmp_path / "timeline.json"
        argv = ["trace", "timeline", str(trace_file), "--json", str(artifact)]
        assert main(argv) == 0
        rows = json.loads(artifact.read_text())["rows"]
        assert rows and all(row["stream"] == "en.rounds" for row in rows)
        assert sum(row["halts"] for row in rows) == 40


class TestTraceCausality:
    def test_census_table_and_lag_timeline(self, trace_file, capsys):
        assert main(["trace", "causality", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "en.causal" in out
        assert "lamport" in out
        assert "lag timeline" in out

    def test_json_artifact(self, trace_file, tmp_path, capsys):
        artifact = tmp_path / "causality.json"
        argv = ["trace", "causality", str(trace_file), "--json", str(artifact)]
        assert main(argv) == 0
        payload = json.loads(artifact.read_text())
        assert payload["command"] == "trace causality"
        assert payload["rows"][0]["stream"] == "en.causal"
        assert payload["rows"][0]["edges"] > 0
        assert payload["timeline"]

    def test_unknown_stream_is_a_parameter_error(self, trace_file, capsys):
        argv = ["trace", "causality", str(trace_file), "--stream", "nope"]
        assert main(argv) == 2
        assert "streams present" in capsys.readouterr().err


class TestTraceCriticalPath:
    def test_prints_headline_attribution_and_chain(self, trace_file, capsys):
        assert main(["trace", "critical-path", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "critical path of" in out
        assert "attribution:" in out
        assert "critical-path chain" in out

    def test_json_artifact_carries_the_invariant(
        self, trace_file, tmp_path, capsys
    ):
        artifact = tmp_path / "critical.json"
        argv = [
            "trace", "critical-path", str(trace_file), "--json", str(artifact)
        ]
        assert main(argv) == 0
        payload = json.loads(artifact.read_text())
        assert payload["command"] == "trace critical-path"
        # The fixture run is fault-free batch: zero drift by contract.
        assert payload["drift"] == 0
        assert payload["halted"] is True
        assert payload["chain"]

    def test_node_pin(self, trace_file, capsys):
        assert main(
            ["trace", "critical-path", str(trace_file), "--node", "0"]
        ) == 0
        assert "node 0" in capsys.readouterr().out

    def test_trace_without_causal_rows_is_a_parameter_error(
        self, tmp_path, capsys
    ):
        spans_only = tmp_path / "spans.jsonl"
        spans_only.write_text(
            json.dumps({"kind": "span", "name": "x", "seconds": 0.1}) + "\n"
        )
        assert main(["trace", "critical-path", str(spans_only)]) == 2
        assert "no causal records" in capsys.readouterr().err


class TestTraceDiff:
    def test_same_trace_diffs_clean(self, trace_file, tmp_path, capsys):
        artifact = tmp_path / "diff.json"
        argv = [
            "trace", "diff", str(trace_file), "--baseline", str(trace_file),
            "--json", str(artifact),
        ]
        assert main(argv) == 0
        payload = json.loads(artifact.read_text())
        assert payload["command"] == "trace diff"
        assert all(row["status"] == "ok" for row in payload["rows"])

    def test_structural_drift_is_flagged(self, trace_file, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        tel = Telemetry(sink=JsonlSink(other))
        with tel.span("en.decompose"):
            pass
        with tel.span("extra.stage"):
            pass
        tel.close()
        artifact = tmp_path / "drift.json"
        argv = [
            "trace", "diff", str(other), "--baseline", str(trace_file),
            "--json", str(artifact),
        ]
        assert main(argv) == 0
        statuses = {
            row["span"]: row["status"]
            for row in json.loads(artifact.read_text())["rows"]
        }
        assert statuses["extra.stage"] == "added"
        assert statuses["en.decompose/phase"] == "removed"


class TestTraceSummarizeSort:
    def test_sort_self_prints_full_paths_ordered_by_self_time(
        self, trace_file, tmp_path, capsys
    ):
        artifact = tmp_path / "sorted.json"
        argv = [
            "trace", "summarize", str(trace_file),
            "--sort", "self", "--json", str(artifact),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # Flat mode: the child row keeps its full slash path.
        assert "en.decompose/phase" in out
        rows = json.loads(artifact.read_text())["spans"]
        selfs = [row["self_seconds"] for row in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_sort_count_orders_by_calls(self, trace_file, tmp_path):
        artifact = tmp_path / "counts.json"
        argv = [
            "trace", "summarize", str(trace_file),
            "--sort", "count", "--json", str(artifact),
        ]
        assert main(argv) == 0
        calls = [row["calls"] for row in json.loads(artifact.read_text())["spans"]]
        assert calls == sorted(calls, reverse=True)

    def test_truncation_count_surfaces_in_the_header(self, tmp_path, capsys):
        path = tmp_path / "truncated.jsonl"
        records = [
            {"kind": "span", "name": "a", "path": "a", "depth": 0,
             "status": "ok", "seconds": 0.1, "self_seconds": 0.1,
             "attrs": {}, "counters": {}},
            {"kind": "truncated", "dropped": 7},
        ]
        path.write_text(
            "\n".join(json.dumps(record) for record in records) + "\n",
            encoding="utf8",
        )
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "7 record(s) dropped" in out

    def test_untruncated_header_stays_clean(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        assert "dropped" not in capsys.readouterr().out


class TestTraceExport:
    def test_chrome_export_to_stdout_is_valid(self, trace_file, capsys):
        from repro.telemetry import validate_chrome_trace

        assert main(["trace", "export", str(trace_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_chrome_trace(payload)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "en.decompose" in names

    def test_chrome_export_to_file(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "trace.chrome.json"
        argv = ["trace", "export", str(trace_file), "--out", str(out_path)]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "trace event(s)" in err
        payload = json.loads(out_path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["hists"]

    def test_jsonl_export_one_event_per_line(self, trace_file, capsys):
        argv = ["trace", "export", str(trace_file), "--format", "jsonl"]
        assert main(argv) == 0
        lines = capsys.readouterr().out.strip().split("\n")
        assert all(
            json.loads(line)["ph"] in ("X", "C", "i", "M", "s", "f")
            for line in lines
        )

    def test_missing_file_is_a_parameter_error(self, tmp_path, capsys):
        assert main(["trace", "export", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestProfileFlag:
    @pytest.fixture(autouse=True)
    def _isolated_profile(self, monkeypatch):
        from repro.telemetry import reset_profile

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        reset_profile()
        yield
        reset_profile()

    def test_profiled_command_prints_the_flame_table(self, capsys):
        assert main(["--profile", "500", "oracle", "build", "grid:6:6"]) == 0
        err = capsys.readouterr().err
        assert "profile:" in err and "Hz" in err

    def test_profile_record_lands_in_the_trace_file(self, tmp_path, capsys):
        path = tmp_path / "profiled.jsonl"
        argv = [
            "--trace", str(path), "--profile", "500",
            "oracle", "build", "grid:6:6",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        _header, records = read_trace(path)
        profiles = [r for r in records if r["kind"] == "profile"]
        assert len(profiles) == 1
        assert profiles[0]["hz"] == 500.0

    def test_bad_profile_setting_is_a_parameter_error(self, capsys):
        assert main(["--profile", "warp", "oracle", "build", "grid:5:5"]) == 2
        assert "profile" in capsys.readouterr().err

    def test_env_setting_profiles_too(self, monkeypatch, capsys):
        from repro.telemetry import reset_profile

        monkeypatch.setenv("REPRO_PROFILE", "on")
        reset_profile()
        assert main(["oracle", "build", "grid:6:6"]) == 0
        assert "profile:" in capsys.readouterr().err
