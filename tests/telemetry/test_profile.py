"""The sampling profiler: setting parsing, resolution, span attribution."""

from __future__ import annotations

import time

import pytest

from repro.errors import ParameterError
from repro.telemetry import (
    SamplingProfiler,
    Telemetry,
    configure_profile,
    parse_profile_setting,
    reset_profile,
    resolve_profile,
)
from repro.telemetry.profile import DEFAULT_HZ, MAX_HZ


@pytest.fixture(autouse=True)
def _isolated_profile_ambient(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    reset_profile()
    yield
    reset_profile()


def _burn(seconds: float) -> int:
    """CPU-bound busy work the sampler can catch."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSettingParsing:
    def test_off_settings(self):
        for setting in ("", "off", "0", "false", "NO", "none"):
            assert parse_profile_setting(setting) is None

    def test_on_uses_the_default_rate(self):
        assert parse_profile_setting("on") == DEFAULT_HZ
        assert parse_profile_setting("TRUE") == DEFAULT_HZ

    def test_numeric_rates(self):
        assert parse_profile_setting("250") == 250.0
        assert parse_profile_setting("0.5") == 0.5

    def test_bad_settings_are_rejected(self):
        for setting in ("fast", "-5", str(MAX_HZ * 2)):
            with pytest.raises(ParameterError):
                parse_profile_setting(setting)


class TestAmbientResolution:
    def test_disabled_by_default(self):
        assert resolve_profile() is None

    def test_explicit_beats_configured_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "10")
        reset_profile()
        assert resolve_profile() == 10.0
        configure_profile(50.0)
        assert resolve_profile() == 50.0
        assert resolve_profile(99.0) == 99.0

    def test_env_is_read_once_until_reset(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "10")
        reset_profile()
        assert resolve_profile() == 10.0
        monkeypatch.setenv("REPRO_PROFILE", "20")
        assert resolve_profile() == 10.0  # cached
        reset_profile()
        assert resolve_profile() == 20.0


class TestSamplingProfiler:
    def test_rejects_bad_rates(self):
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=0)
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=MAX_HZ + 1)

    def test_double_start_is_an_error_and_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=50)
        profiler.start()
        with pytest.raises(ParameterError):
            profiler.start()
        profiler.stop()
        profiler.stop()  # idempotent

    def test_samples_attribute_busy_work_to_the_open_span(self):
        tel = Telemetry()
        profiler = SamplingProfiler(hz=500, telemetry=tel)
        with profiler:
            with tel.span("hot"):
                _burn(0.25)
        assert profiler.sample_count > 0
        rows = profiler.flame_table()
        hot = [row for row in rows if row["span"] == "hot"]
        assert hot, f"no samples attributed to the open span: {rows[:5]}"
        # The busy loop lives in this module; its frame should dominate.
        assert any("test_profile" in row["frame"] for row in hot)

    def test_flame_table_self_never_exceeds_cum(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _burn(0.1)
        for row in profiler.flame_table():
            assert 0 <= row["self"] <= row["cum"]
        assert profiler.flame_table() == sorted(
            profiler.flame_table(),
            key=lambda r: (-r["self"], -r["cum"], r["span"], r["frame"]),
        )

    def test_collapsed_lines_sum_to_the_sample_count(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _burn(0.1)
        total = sum(
            int(line.rsplit(" ", 1)[1]) for line in profiler.collapsed()
        )
        assert total == profiler.sample_count

    def test_record_shape(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _burn(0.05)
        record = profiler.record()
        assert record["kind"] == "profile"
        assert record["hz"] == 500.0
        assert record["samples"] == profiler.sample_count
        for row in record["rows"]:
            assert set(row) == {"span", "frame", "self", "cum"}

    def test_sampler_does_not_perturb_results(self):
        # Bit-identity of the profiled workload — the benchmark gate's
        # assert, at test scale.
        from repro.core.distributed_en import decompose_distributed
        from repro.graphs import erdos_renyi

        graph = erdos_renyi(60, 0.08, seed=4)
        plain = decompose_distributed(graph, k=3, seed=2, backend="batch")
        with SamplingProfiler(hz=500):
            profiled = decompose_distributed(graph, k=3, seed=2, backend="batch")
        assert profiled.stats == plain.stats
        assert profiled.phases == plain.phases
