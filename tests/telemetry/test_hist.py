"""LogHistogram: bucket geometry, merge algebra, quantile error bound."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.errors import ParameterError
from repro.telemetry import HIST_SCHEMA, LogHistogram, Telemetry
from repro.telemetry.hist import merge_all


def _dumps(hist: LogHistogram) -> str:
    """Byte-stable serialization — the merge-algebra equality witness."""
    return json.dumps(hist.to_dict(), sort_keys=True)


def _filled(values) -> LogHistogram:
    hist = LogHistogram()
    for value in values:
        hist.record(value)
    return hist


def _exact_quantile(values, q: float) -> float:
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestBucketGeometry:
    def test_boundaries_are_deterministic_functions_of_the_parameters(self):
        hist = LogHistogram(min_value=1e-6, buckets_per_octave=4)
        assert hist.bucket_upper(0) == 1e-6
        assert hist.bucket_upper(4) == pytest.approx(2e-6)
        assert hist.bucket_upper(8) == pytest.approx(4e-6)

    def test_every_value_lands_in_its_own_bucket(self):
        hist = LogHistogram()
        rng = random.Random(7)
        for _ in range(500):
            value = rng.uniform(0, 10) ** 3  # spread over decades
            index = hist.bucket_index(value)
            lower = 0.0 if index == 0 else hist.bucket_upper(index - 1)
            assert lower < value or (index == 0 and value <= hist.min_value)
            assert value <= hist.bucket_upper(index) * (1 + 1e-12)

    def test_values_at_or_below_min_value_take_bucket_zero(self):
        hist = LogHistogram(min_value=1e-3)
        assert hist.bucket_index(0.0) == 0
        assert hist.bucket_index(1e-3) == 0
        assert hist.bucket_index(1.0001e-3) >= 1

    def test_negative_values_and_bad_parameters_are_rejected(self):
        with pytest.raises(ParameterError):
            LogHistogram().record(-1.0)
        with pytest.raises(ParameterError):
            LogHistogram(min_value=0)
        with pytest.raises(ParameterError):
            LogHistogram(buckets_per_octave=0)


class TestMergeAlgebra:
    def test_merge_is_commutative(self):
        rng = random.Random(11)
        a = _filled(rng.expovariate(100) for _ in range(300))
        b = _filled(rng.expovariate(5) for _ in range(200))
        assert _dumps(a.merge(b)) == _dumps(b.merge(a))

    def test_merge_is_associative(self):
        rng = random.Random(13)
        a = _filled(rng.expovariate(1000) for _ in range(150))
        b = _filled(rng.uniform(0, 2) for _ in range(150))
        c = _filled(rng.expovariate(2) for _ in range(150))
        assert _dumps(a.merge(b).merge(c)) == _dumps(a.merge(b.merge(c)))

    def test_merge_equals_recording_the_concatenated_samples(self):
        rng = random.Random(17)
        left = [rng.expovariate(50) for _ in range(250)]
        right = [rng.expovariate(500) for _ in range(250)]
        merged = _filled(left).merge(_filled(right))
        assert _dumps(merged) == _dumps(_filled(left + right))

    def test_incompatible_boundaries_refuse_to_merge(self):
        with pytest.raises(ParameterError):
            LogHistogram(min_value=1e-6).merge(LogHistogram(min_value=1e-7))
        with pytest.raises(ParameterError):
            LogHistogram(buckets_per_octave=4).merge(
                LogHistogram(buckets_per_octave=8)
            )

    def test_merge_all_folds_any_order(self):
        rng = random.Random(19)
        shards = [
            _filled(rng.expovariate(10) for _ in range(80)) for _ in range(5)
        ]
        forward = merge_all(shards)
        backward = merge_all(reversed(shards))
        assert _dumps(forward) == _dumps(backward)
        assert merge_all([]) is None


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        hist = LogHistogram()
        assert hist.quantile(0.5) is None
        assert hist.summary() == {
            "count": 0, "min": None, "max": None,
            "p50": None, "p90": None, "p99": None,
        }

    def test_single_value_histogram(self):
        hist = _filled([0.25])
        assert hist.count == 1
        assert hist.vmin == hist.vmax == 0.25
        for q in (0.0, 0.5, 0.99, 1.0):
            estimate = hist.quantile(q)
            assert 0 <= estimate - 0.25 <= hist.bucket_width(0.25)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_quantile_error_is_at_most_one_bucket_width(self, q):
        rng = random.Random(23)
        values = [rng.expovariate(200) + 1e-6 for _ in range(2000)]
        hist = _filled(values)
        exact = _exact_quantile(values, q)
        estimate = hist.quantile(q)
        assert estimate >= exact * (1 - 1e-12)
        assert estimate - exact <= hist.bucket_width(exact) + 1e-15

    def test_quantile_range_is_validated(self):
        with pytest.raises(ParameterError):
            _filled([1.0]).quantile(1.5)


class TestSerialization:
    def test_round_trip_is_byte_identical(self):
        rng = random.Random(29)
        hist = _filled(rng.expovariate(300) for _ in range(400))
        payload = json.loads(json.dumps(hist.to_dict()))
        assert _dumps(LogHistogram.from_dict(payload)) == _dumps(hist)

    def test_schema_tag_is_enforced(self):
        assert LogHistogram().to_dict()["schema"] == HIST_SCHEMA
        with pytest.raises(ParameterError):
            LogHistogram.from_dict({"schema": "bogus"})

    def test_rebuilt_histograms_stay_mergeable(self):
        a = _filled([0.001, 0.002, 0.004])
        b = LogHistogram.from_dict(json.loads(json.dumps(a.to_dict())))
        assert _dumps(a.merge(b)) == _dumps(b.merge(a))


class TestTelemetryIntegration:
    def test_named_histograms_are_created_once_and_summarized(self):
        tel = Telemetry()
        tel.histogram("lat").record(0.01)
        tel.histogram("lat").record(0.02)
        assert tel.histogram("lat").count == 2
        block = tel.block()
        assert block["hists"]["lat"]["count"] == 2

    def test_oracle_query_histogram_p99_tracks_exact_batch_latency(self):
        # The acceptance bound from the issue: the histogram's p99 of the
        # oracle's batched-query latency agrees with the exact
        # sorted-latency p99 within one bucket width.
        from repro.graphs import erdos_renyi
        from repro.oracle import build_oracle
        from repro.oracle.query import query_details

        tel = Telemetry()
        graph = erdos_renyi(60, 0.08, seed=3)
        oracle = build_oracle(graph, telemetry=tel)
        rng = random.Random(31)
        pairs = [
            (rng.randrange(60), rng.randrange(60)) for _ in range(20)
        ]
        for start in range(0, 20, 4):  # five batches -> five samples
            query_details(oracle, pairs[start:start + 4], telemetry=tel)
        latencies = [
            span["attrs"]["batch_seconds"]
            for span in tel.spans
            if span["name"] == "oracle.query"
        ]
        assert len(latencies) == 5
        hist = tel.hists["oracle.query.batch_seconds"]
        assert hist.count == 5
        exact = _exact_quantile(latencies, 0.99)
        estimate = hist.quantile(0.99)
        # batch_seconds attrs are rounded to 1 ns; allow that slack too.
        assert estimate >= exact - 1e-9
        assert estimate - exact <= hist.bucket_width(exact) + 1e-9
