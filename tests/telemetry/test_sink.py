"""The JSONL sink: header, bounds, torn-tail recovery, event mirroring."""

from __future__ import annotations

import json

import pytest

from repro.distributed.message import Message
from repro.errors import ParameterError
from repro.telemetry import JsonlSink, Telemetry, read_trace
from repro.telemetry.sink import TELEMETRY_VERSION, records_of_kind


class TestJsonlSink:
    def test_header_is_the_first_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"kind": "span", "name": "a"})
        sink.close()
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "header"
        assert first["telemetry_version"] == TELEMETRY_VERSION

    def test_lazy_open_creates_no_file_when_silent(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for index in range(3):
            sink.write({"kind": "round", "round": index})
        sink.close()
        header, records = read_trace(path)
        assert header is not None
        assert [record["round"] for record in records] == [0, 1, 2]

    def test_bound_drops_and_marks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, limit=2)
        for index in range(5):
            sink.write({"kind": "span", "index": index})
        assert sink.truncated and sink.dropped == 3
        sink.close()
        _, records = read_trace(path)
        assert [record["index"] for record in records_of_kind(records, "span")] == [0, 1]
        marker = records_of_kind(records, "truncated")
        assert marker == [{"kind": "truncated", "dropped": 3}]

    def test_limit_must_be_positive(self, tmp_path):
        with pytest.raises(ParameterError, match="limit"):
            JsonlSink(tmp_path / "x.jsonl", limit=0)


class TestTornTailRecovery:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"kind": "span", "name": "kept"})
        sink.close()
        with path.open("a", encoding="utf8") as handle:
            handle.write('{"kind": "span", "name": "to')  # killed mid-write
        header, records = read_trace(path)
        assert header is not None
        assert [record["name"] for record in records] == ["kept"]

    def test_garbage_lines_are_skipped_everywhere(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                [
                    "not json at all",
                    '{"kind": "round", "round": 1}',
                    "[1, 2, 3]",
                    '"just a string"',
                    "",
                    '{"kind": "round", "round": 2}',
                ]
            )
        )
        header, records = read_trace(path)
        assert header is None  # damaged trace stays inspectable
        assert [record["round"] for record in records] == [1, 2]


class TestTelemetrySinkIntegration:
    def test_spans_and_rounds_mirror_to_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sink=JsonlSink(path))
        stream = tel.round_stream("test.rounds", backend="sync")
        with tel.span("run"):
            pass
        from repro.distributed.metrics import NetworkStats

        stats = NetworkStats()
        stats.messages_sent = 4
        stats.words_sent = 8
        stats.messages_delivered = 4
        stream.note_frontier(2)
        stream.end_round(1, stats, live=10)
        tel.close()
        header, records = read_trace(path)
        # The round stream feeds its wall-time histogram, flushed at close.
        assert [record["kind"] for record in records] == [
            "span", "round", "hist", "summary",
        ]
        round_record = records[1]
        assert round_record["stream"] == "test.rounds"
        assert round_record["backend"] == "sync"
        assert round_record["frontier"] == 2 and round_record["messages"] == 4

    def test_event_recorder_mirrors_kept_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sink=JsonlSink(path))
        recorder = tel.event_recorder(limit=2)
        for index in range(4):
            recorder.on_send(Message(index, index + 1, ("ping",), 0, 1))
        tel.close()
        assert recorder.truncated
        assert tel.events == 2  # only *kept* events are mirrored
        _, records = read_trace(path)
        events = records_of_kind(records, "event")
        assert [event["node"] for event in events] == [0, 1]

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sink=JsonlSink(path))
        with tel.span("once"):
            pass
        tel.close()
        tel.close()
        _, records = read_trace(path)
        assert len(records_of_kind(records, "summary")) == 1
