"""Round streams: cross-backend equality and delta consistency.

The acceptance criterion of the telemetry layer: a seeded distributed-EN
run traced on ``backend="sync"`` and ``backend="batch"`` produces round
streams equal on **all shared keys** — only the ``backend`` attribute
the driver stamps may differ.  Same contract for the LS and MPX
baselines, which share the engines.
"""

from __future__ import annotations

import pytest

from repro.baselines.distributed_ls import decompose_distributed as ls_distributed
from repro.baselines.distributed_mpx import partition_distributed
from repro.core.distributed_en import decompose_distributed
from repro.distributed.metrics import NetworkStats
from repro.graphs import erdos_renyi, grid_graph
from repro.telemetry import ROUND_KEYS, Telemetry, reset


@pytest.fixture(autouse=True)
def _isolated_ambient(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    reset()
    yield
    reset()


def _strip_backend(rows):
    return [{k: v for k, v in row.items() if k != "backend"} for row in rows]


def _traced(fn, **kwargs):
    tel = Telemetry()
    fn(telemetry=tel, **kwargs)
    return tel.rounds


class TestCrossBackendEquality:
    @pytest.mark.parametrize("mode", ["toptwo", "full"])
    def test_en_streams_are_row_identical(self, mode):
        graph = erdos_renyi(60, 0.08, seed=5)
        sync_rows = _traced(
            decompose_distributed, graph=graph, k=3, seed=7, mode=mode, backend="sync"
        )
        batch_rows = _traced(
            decompose_distributed, graph=graph, k=3, seed=7, mode=mode, backend="batch"
        )
        assert sync_rows, "traced run emitted no round records"
        assert _strip_backend(sync_rows) == _strip_backend(batch_rows)
        # All shared keys, not just the metric columns.
        assert {key for row in sync_rows for key in row} == {
            key for row in batch_rows for key in row
        }

    def test_en_fixed_budget_streams_match(self):
        graph = grid_graph(7, 7)
        kwargs = dict(graph=graph, k=4, seed=3, adaptive_phase_length=False)
        sync_rows = _traced(decompose_distributed, backend="sync", **kwargs)
        batch_rows = _traced(decompose_distributed, backend="batch", **kwargs)
        assert _strip_backend(sync_rows) == _strip_backend(batch_rows)

    def test_ls_streams_match(self):
        graph = erdos_renyi(48, 0.1, seed=2)
        sync_rows = _traced(ls_distributed, graph=graph, k=3, seed=5, backend="sync")
        batch_rows = _traced(ls_distributed, graph=graph, k=3, seed=5, backend="batch")
        assert sync_rows
        assert _strip_backend(sync_rows) == _strip_backend(batch_rows)

    @pytest.mark.parametrize("mode", ["topone", "full"])
    def test_mpx_streams_match(self, mode):
        graph = erdos_renyi(48, 0.1, seed=4)
        sync_rows = _traced(
            partition_distributed, graph=graph, beta=0.4, seed=6, mode=mode,
            backend="sync",
        )
        batch_rows = _traced(
            partition_distributed, graph=graph, beta=0.4, seed=6, mode=mode,
            backend="batch",
        )
        assert sync_rows
        assert _strip_backend(sync_rows) == _strip_backend(batch_rows)


class TestStreamConsistency:
    def test_schema_and_stat_deltas(self):
        graph = erdos_renyi(60, 0.08, seed=5)
        tel = Telemetry()
        result = decompose_distributed(
            graph, k=3, seed=7, backend="batch", telemetry=tel
        )
        rows = tel.rounds
        for row in rows:
            assert row["kind"] == "round" and row["stream"] == "en.rounds"
            assert all(key in row for key in ROUND_KEYS)
        # Traffic columns are deltas of the engine's own stats — totals
        # must reconcile exactly with the pinned NetworkStats.
        assert sum(row["messages"] for row in rows) == result.stats.messages_sent
        assert sum(row["words"] for row in rows) == result.stats.words_sent
        assert sum(row["delivered"] for row in rows) == result.stats.messages_delivered
        # Every vertex halts exactly once; live counts never increase.
        assert sum(row["halts"] for row in rows) == graph.num_vertices
        lives = [row["live"] for row in rows]
        assert all(a >= b for a, b in zip(lives, lives[1:]))
        assert lives[-1] == 0

    def test_stream_attrs_are_stamped(self):
        graph = grid_graph(5, 5)
        tel = Telemetry()
        decompose_distributed(graph, k=3, seed=1, backend="batch", telemetry=tel)
        assert all(
            row["backend"] == "batch" and row["mode"] == "toptwo"
            for row in tel.rounds
        )

    def test_end_round_is_idempotent(self):
        tel = Telemetry()
        stream = tel.round_stream("x.rounds")
        stats = NetworkStats(messages_sent=3, words_sent=3, messages_delivered=3)
        stream.note_frontier(1)
        stream.end_round(1, stats, live=5)
        stream.end_round(1, stats, live=5)  # the lazy-flush double call
        assert len(tel.rounds) == 1

    def test_round_zero_row_kept_only_with_traffic(self):
        tel = Telemetry()
        silent = tel.round_stream("x.rounds")
        silent.end_round(0, NetworkStats(), live=5)
        assert tel.rounds == []
        noisy = tel.round_stream("y.rounds")
        noisy.note_frontier(2)
        stats = NetworkStats(messages_sent=2, words_sent=2)
        noisy.end_round(0, stats, live=5)
        assert len(tel.rounds) == 1 and tel.rounds[0]["round"] == 0
