"""Causal provenance and critical-path analysis (docs/telemetry.md).

The contracts under test:

* **row identity** — for one ``(graph, seed)`` the causal logs of the
  sync reference, the columnar batch engine and the fault-free FIFO
  async engine are *row-identical* (same dicts, same order) for
  EN/LS/MPX;
* **the headline invariant** — on fault-free FIFO runs the critical
  path's round count equals the driver's reported total and its drift
  is zero, on every backend;
* **adversarial attribution** — delay schedules inflate ``time`` (and
  only ``time``); crash redeliveries show up as ``fault`` rounds;
* **Lamport sanity** — clocks increase along every edge and are a pure
  function of the dependency structure;
* **bookkeeping** — collector/sink integration: the ``causal`` block
  census, the summary record's per-kind counts, truncation.
"""

from __future__ import annotations

import pytest

from repro.baselines import distributed_ls, distributed_mpx
from repro.core.distributed_en import decompose_distributed
from repro.graphs import erdos_renyi
from repro.telemetry import (
    JsonlSink,
    Telemetry,
    causal_records,
    causal_streams,
    critical_path,
    lag_timeline,
    lamport_timestamps,
    node_lag,
    read_trace,
    slack_stats,
)
from repro.telemetry.causality import CausalLog

ALGOS = ("en", "ls", "mpx")
BACKENDS = ("sync", "batch", "async")


def _run(algo: str, graph, seed: int, **kwargs):
    if algo == "en":
        result = decompose_distributed(graph, k=3, seed=seed, **kwargs)
        return result, result.total_rounds
    if algo == "ls":
        result = distributed_ls.decompose_distributed(
            graph, k=3, seed=seed, **kwargs
        )
        return result, result.total_rounds
    result = distributed_mpx.partition_distributed(
        graph, beta=0.4, seed=seed, **kwargs
    )
    return result, result.rounds


def _traced(algo: str, graph, seed: int, **kwargs):
    telemetry = Telemetry()
    _result, rounds = _run(algo, graph, seed, telemetry=telemetry, **kwargs)
    return telemetry.causal, rounds


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(32, 0.15, seed=7)


class TestRowIdentity:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_causal_logs_row_identical_across_backends(self, algo, graph):
        logs = {
            backend: _traced(algo, graph, 11, backend=backend)[0]
            for backend in BACKENDS
        }
        assert logs["sync"]  # provenance was recorded
        assert logs["batch"] == logs["sync"]
        assert logs["async"] == logs["sync"]

    def test_fault_free_logs_carry_no_timing_extras(self, graph):
        rows, _ = _traced("en", graph, 11, backend="async")
        assert all("recv_time" not in row for row in rows)

    def test_adversarial_logs_carry_timing_extras(self, graph):
        rows, _ = _traced(
            "en", graph, 11, backend="async", delivery="random:2"
        )
        msg = [r for r in rows if r["edge"] == "msg"]
        assert msg and all(
            {"send_time", "arrive", "recv_time", "fault"} <= set(row) for row in msg
        )


class TestCriticalPathInvariant:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fault_free_path_length_equals_driver_rounds(
        self, algo, backend, graph
    ):
        rows, rounds = _traced(algo, graph, 11, backend=backend)
        path = critical_path(rows)
        assert path["rounds"] == rounds
        assert path["time"] == rounds
        assert path["drift"] == 0
        assert path["halted"] is True
        assert path["attribution"]["delay"] == 0
        assert path["attribution"]["fault"] == 0

    def test_chain_is_contiguous(self, graph):
        rows, _ = _traced("en", graph, 11)
        chain = critical_path(rows)["chain"]
        assert chain
        for earlier, later in zip(chain, chain[1:]):
            head = (
                earlier["recv"] if earlier["edge"] == "msg" else earlier["node"]
            )
            tail = later["send"] if later["edge"] == "msg" else later["node"]
            assert head == tail

    def test_node_pin_selects_that_nodes_halt(self, graph):
        rows, _ = _traced("en", graph, 11)
        halts = {r["node"]: r["round"] for r in rows if r["edge"] == "halt"}
        node = min(halts)
        path = critical_path(rows, node=node)
        assert path["node"] == node
        assert path["rounds"] == halts[node]
        assert path["halted"] is True

    def test_empty_and_mixed_logs_are_rejected(self, graph):
        with pytest.raises(ValueError, match="no causal records"):
            critical_path([])
        en_rows, _ = _traced("en", graph, 11)
        ls_rows, _ = _traced("ls", graph, 11)
        with pytest.raises(ValueError, match="mixes streams"):
            critical_path(en_rows + ls_rows)
        # Pinning the stream disambiguates.
        path = critical_path(en_rows + ls_rows, stream="ls.causal")
        assert path["stream"] == "ls.causal"


class TestAdversarialAttribution:
    def test_delay_schedule_inflates_time_not_rounds(self, graph):
        fifo_rows, rounds = _traced("en", graph, 11, backend="async")
        rows, adv_rounds = _traced(
            "en", graph, 11, backend="async", delivery="random:2"
        )
        assert adv_rounds == rounds  # logical structure is untouched
        path = critical_path(rows)
        assert path["rounds"] == rounds
        assert path["drift"] > 0
        assert path["time"] == pytest.approx(rounds + path["drift"])
        assert path["attribution"]["delay"] > 0
        assert critical_path(fifo_rows)["drift"] == 0

    def test_crash_redeliveries_are_attributed_as_fault_rounds(self, graph):
        rows, _ = _traced(
            "en",
            graph,
            11,
            backend="async",
            delivery="random:2",
            faults="crash:4@2-7;redeliver",
        )
        redelivered = [
            r for r in rows if r["edge"] == "msg" and r.get("fault", 0) > 0
        ]
        assert redelivered  # the crash window actually buffered traffic
        for row in redelivered:
            assert row["fault"] == max(
                row["recv_round"] - row["send_round"] - 1, 0
            ) or row["fault"] > 0

    def test_slack_is_zero_on_fifo_and_positive_under_delay(self, graph):
        fifo_rows, _ = _traced("en", graph, 11, backend="async")
        assert slack_stats(fifo_rows)["max"] == 0
        rows, _ = _traced(
            "en", graph, 11, backend="async", delivery="random:2"
        )
        stats = slack_stats(rows)
        assert stats["edges"] > 0
        assert stats["max"] > 0
        assert 0 <= stats["min"] <= stats["mean"] <= stats["max"]

    def test_lag_timeline_and_node_lag_shapes(self, graph):
        rows, _ = _traced(
            "en", graph, 11, backend="async", delivery="random:2"
        )
        timeline = lag_timeline(rows)
        assert timeline == sorted(timeline, key=lambda row: row["round"])
        assert sum(row["halts"] for row in timeline) == sum(
            1 for r in rows if r["edge"] == "halt"
        )
        assert any(row["lag"] > 0 for row in timeline)
        per_node = node_lag(rows)
        assert {row["node"] for row in per_node} == {
            r["node"] for r in rows if r["edge"] == "halt"
        } | {r["recv"] for r in rows if r["edge"] == "msg"}
        assert all(row["max_lag"] >= 0 for row in per_node)


class TestLamport:
    def test_clocks_increase_along_every_edge(self, graph):
        rows, _ = _traced("en", graph, 11)
        clocks = lamport_timestamps(rows)
        for row in rows:
            if row["edge"] != "msg":
                continue
            sender_events = [
                clock
                for (node, round_number), clock in clocks.items()
                if node == row["send"] and round_number <= row["send_round"]
            ]
            send_clock = max(sender_events, default=0)
            assert clocks[(row["recv"], row["recv_round"])] > send_clock

    def test_clocks_are_monotone_per_node(self, graph):
        rows, _ = _traced("ls", graph, 11)
        by_node: dict[int, list[tuple[int, int]]] = {}
        for (node, round_number), clock in lamport_timestamps(rows).items():
            by_node.setdefault(node, []).append((round_number, clock))
        for events in by_node.values():
            events.sort()
            for (_, earlier), (_, later) in zip(events, events[1:]):
                assert later > earlier


class TestCollectorIntegration:
    def test_block_census_and_summary_kinds(self, graph, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry(sink=JsonlSink(path))
        _run("en", graph, 11, telemetry=telemetry, backend="batch")
        block = telemetry.block()
        assert block["causal"]["streams"] == ["en.causal"]
        assert block["causal"]["records"] == len(telemetry.causal)
        assert block["causal"]["edges"] + block["causal"]["halts"] == len(
            telemetry.causal
        )
        telemetry.close()
        _header, records = read_trace(path)
        summary = next(r for r in records if r["kind"] == "summary")
        assert summary["causal"] == len(
            [r for r in records if r["kind"] == "causal"]
        )
        assert summary["kinds"]["causal"] == summary["causal"]
        assert summary["kinds"]["round"] == summary["rounds"]

    def test_causal_filters(self, graph):
        en_rows, _ = _traced("en", graph, 11)
        ls_rows, _ = _traced("ls", graph, 11)
        mixed = en_rows + ls_rows
        assert causal_streams(mixed) == ["en.causal", "ls.causal"]
        assert causal_records(mixed, "en.causal") == en_rows
        assert causal_records(mixed, "ls.causal") == ls_rows

    def test_collector_limit_truncates_but_counts(self):
        telemetry = Telemetry(limit=4)
        log = CausalLog(telemetry, "t.causal")
        for i in range(8):
            log.message(i, 1, i + 1, 2)
        assert len(telemetry.causal) == 4
        assert telemetry.truncated is True

    def test_row_values_are_normalized_numbers(self, graph):
        rows, _ = _traced(
            "en", graph, 11, backend="async", delivery="random:2"
        )
        for row in rows:
            for key, value in row.items():
                if isinstance(value, float):
                    assert value == round(value, 6), (key, value)
