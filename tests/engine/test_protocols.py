"""Batch protocols vs the SyncNetwork reference: bit-identical everything.

For flood, BFS tree, convergecast and leader election, the batch port
must reproduce the reference node algorithms exactly: outputs, rounds
executed, the full :class:`NetworkStats` (messages sent *and* delivered,
words, peak per-edge bandwidth) — on every topology shape the reference
engine handles, including disconnected graphs, isolated roots and the
single-vertex graph, and on both primitive backends.
"""

from __future__ import annotations

import random

import pytest

from repro.distributed import (
    BFSTreeNode,
    ConvergecastSumNode,
    FloodNode,
    LeaderElectionNode,
    SyncNetwork,
    run_bfs_tree,
)
from repro.graphs import _kernel
from repro.engine import (
    _backend,
    bfs_tree,
    convergecast_sum,
    flood,
    leader_election,
)
from repro.graphs import (
    Graph,
    balanced_tree,
    cycle_graph,
    gnp_fast,
    path_graph,
    random_connected,
    star_graph,
    torus_graph,
)

GRAPHS = {
    "path": path_graph(7),
    "cycle": cycle_graph(9),
    "star": star_graph(6),
    "tree": balanced_tree(3, 3),
    "torus": torus_graph(4, 5),
    "conn": random_connected(48, 0.05, seed=3),
    "gnp-disconnected": gnp_fast(40, 0.05, seed=7),
    "single": Graph(1),
    "isolated-root": Graph(5, [(1, 2), (2, 3)]),
}


def _roots(graph):
    n = graph.num_vertices
    return [0] if n < 3 else [0, n // 2]


def _reference_flood(graph, root):
    network = SyncNetwork(graph, lambda v: FloodNode(v, root))
    rounds = network.run_until_quiet(graph.num_vertices + 1)
    arrival = {
        v: network.algorithm(v).heard_at
        for v in graph.vertices()
        if network.algorithm(v).heard_at is not None
    }
    return arrival, network.stats, rounds


def _reference_tree(graph, root):
    network = SyncNetwork(graph, lambda v: BFSTreeNode(v, root))
    rounds = network.run_until_quiet(graph.num_vertices + 2)
    parents, depths, children = {}, {}, {}
    for v in graph.vertices():
        node = network.algorithm(v)
        if node.depth is not None:
            parents[v] = node.parent if node.parent is not None else -1
            depths[v] = node.depth
            children[v] = node.children
    return parents, depths, children, network.stats, rounds


def _reference_convergecast(graph, root, values):
    parents, _ = run_bfs_tree(graph, root)
    children = {v: [] for v in parents}
    for v, parent in parents.items():
        if parent >= 0:
            children[parent].append(v)
    network = SyncNetwork(
        graph,
        lambda v: ConvergecastSumNode(
            v,
            values.get(v, 0.0) if v in parents else 0.0,
            parents.get(v),
            children.get(v, ()),
        ),
    )
    rounds = network.run_until_quiet(2 * graph.num_vertices + 4)
    totals = {v: network.algorithm(v).total for v in parents}
    return network.algorithm(root).total, totals, network.stats, rounds


def _reference_leader(graph):
    network = SyncNetwork(graph, lambda v: LeaderElectionNode(v))
    rounds = network.run_until_quiet(graph.num_vertices + 2)
    return (
        {v: network.algorithm(v).leader for v in graph.vertices()},
        network.stats,
        rounds,
    )


@pytest.mark.parametrize("name", sorted(GRAPHS))
class TestEquivalence:
    def test_flood(self, name):
        graph = GRAPHS[name]
        for root in _roots(graph):
            arrival, stats, rounds = _reference_flood(graph, root)
            result = flood(graph, root)
            assert result.arrival == arrival
            assert result.stats == stats
            assert result.rounds == rounds

    def test_bfs_tree(self, name):
        graph = GRAPHS[name]
        for root in _roots(graph):
            parents, depths, children, stats, rounds = _reference_tree(graph, root)
            result = bfs_tree(graph, root)
            assert result.parents == parents
            assert result.depths == depths
            assert result.children == children
            assert result.stats == stats
            assert result.rounds == rounds

    def test_convergecast(self, name):
        graph = GRAPHS[name]
        rng = random.Random(11)
        values = {v: rng.random() * 12 - 4 for v in graph.vertices()}
        for root in _roots(graph):
            total, totals, stats, rounds = _reference_convergecast(graph, root, values)
            result = convergecast_sum(graph, root, values)
            assert result.total == total  # exact float equality, not approx
            assert result.totals == totals
            assert result.stats == stats
            assert result.rounds == rounds

    def test_leader_election(self, name):
        graph = GRAPHS[name]
        leader, stats, rounds = _reference_leader(graph)
        result = leader_election(graph)
        assert result.leader == leader
        assert result.stats == stats
        assert result.rounds == rounds


class TestPurePythonBackend:
    """The primitive backend must not change any protocol result."""

    @pytest.mark.skipif(not _backend.numpy_enabled(), reason="numpy backend inactive")
    def test_leader_and_flood_identical_across_backends(self, monkeypatch):
        graph = gnp_fast(300, 0.02, seed=9)  # wide enough for numpy paths
        with_numpy = (
            flood(graph, 0).arrival,
            flood(graph, 0).stats,
            leader_election(graph).leader,
            leader_election(graph).stats,
        )
        monkeypatch.setattr(_kernel, "USE_NUMPY", False)
        pure = (
            flood(graph, 0).arrival,
            flood(graph, 0).stats,
            leader_election(graph).leader,
            leader_election(graph).stats,
        )
        assert with_numpy == pure


class TestLeaderElectionEmpty:
    def test_empty_graph(self):
        result = leader_election(Graph(0))
        assert result.leader == {}
        assert result.rounds == 0
        assert result.stats.messages_sent == 0
