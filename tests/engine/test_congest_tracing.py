"""CONGEST enforcement and tracing, on both engines (satellite coverage).

Two simulator-level guarantees, pinned on :class:`SyncNetwork` *and* on
the batch engine:

* a ``word_budget`` violation raises :class:`CongestViolation` in the
  **exact** round the offending flush happens — not a round late, not at
  the end of the run — and the two engines report the identical round
  (in fact the identical message, offending edge included);
* an attached :class:`TraceRecorder` sees a consistent event stream:
  send events match ``messages_sent`` one-for-one, rounds are monotone
  within the run's bounds, halt events match the halted set — and the
  batch engine emits the *same* events as the reference.
"""

from __future__ import annotations

import re

import pytest

from repro.core.distributed_en import decompose_distributed
from repro.distributed import (
    Context,
    FloodNode,
    LeaderElectionNode,
    NodeAlgorithm,
    SyncNetwork,
    TraceRecorder,
    run_bfs_tree,
    ConvergecastSumNode,
    BFSTreeNode,
)
from repro.engine import bfs_tree, convergecast_sum, flood, leader_election
from repro.errors import CongestViolation
from repro.graphs import erdos_renyi, path_graph, random_connected, star_graph


def _violation_message(fn) -> str | None:
    try:
        fn()
    except CongestViolation as exc:
        return str(exc)
    return None


def _violation_round(message: str) -> int:
    match = re.search(r"in round (\d+)", message)
    assert match, message
    return int(match.group(1))


class TestExactViolationRound:
    def test_sync_network_reports_the_offending_round(self):
        """A node that widens its sends each round must trip the budget in
        exactly the first round its traffic exceeds it."""

        class Widening(NodeAlgorithm):
            def on_round(self, ctx: Context, inbox) -> None:
                # round r sends r one-word messages across each edge
                for _ in range(ctx.round_number):
                    ctx.broadcast(1)

        network = SyncNetwork(path_graph(2), lambda v: Widening(), word_budget=3)
        message = _violation_message(lambda: network.run_rounds(10))
        assert message is not None
        assert _violation_round(message) == 4  # 4 words first exceeds budget 3

    @pytest.mark.parametrize("mode,budget", [("full", 7), ("full", 4), ("toptwo", 7)])
    def test_en_backends_raise_in_the_same_round(self, mode, budget):
        graph = erdos_renyi(60, 0.08, seed=5)
        for seed in (1, 2, 3):
            sync_message = _violation_message(
                lambda: decompose_distributed(
                    graph, k=5, c=8.0, seed=seed, mode=mode, word_budget=budget
                )
            )
            batch_message = _violation_message(
                lambda: decompose_distributed(
                    graph,
                    k=5,
                    c=8.0,
                    seed=seed,
                    mode=mode,
                    word_budget=budget,
                    backend="batch",
                )
            )
            # Not merely the same round: the identical message, offending
            # edge and word count included.
            assert sync_message == batch_message
        assert sync_message is not None
        assert _violation_round(sync_message) >= 2  # a mid-run flush, not round 1

    def test_flood_violates_at_round_zero_on_both_engines(self):
        graph = star_graph(5)

        def sync_run():
            network = SyncNetwork(graph, lambda v: FloodNode(v, 0), word_budget=1)
            network.run_until_quiet(10)

        sync_message = _violation_message(sync_run)
        batch_message = _violation_message(lambda: flood(graph, 0, word_budget=1))
        assert sync_message == batch_message
        assert _violation_round(sync_message) == 0

    def test_leader_election_within_budget_runs_clean(self):
        graph = random_connected(30, 0.08, seed=2)
        result = leader_election(graph, word_budget=2)  # exactly one 2-word msg/edge/round
        assert set(result.leader.values()) == {0}


def _sync_trace(graph, factory, max_rounds):
    tracer = TraceRecorder()
    network = SyncNetwork(graph, factory, tracer=tracer)
    network.run_until_quiet(max_rounds)
    return tracer, network


class TestTraceInvariants:
    GRAPH = random_connected(36, 0.06, seed=4)

    def _check_invariants(self, tracer, stats, rounds):
        sends = list(tracer.sends())
        assert len(sends) == stats.messages_sent
        assert all(0 <= event.round <= rounds for event in tracer.events)
        grouped = tracer.rounds()
        assert sum(len(events) for events in grouped.values()) == len(tracer.events)

    def test_flood_trace_identical(self):
        reference, network = _sync_trace(
            self.GRAPH, lambda v: FloodNode(v, 0), self.GRAPH.num_vertices + 1
        )
        tracer = TraceRecorder()
        result = flood(self.GRAPH, 0, tracer=tracer)
        assert tracer.events == reference.events
        self._check_invariants(tracer, result.stats, result.rounds)

    def test_bfs_tree_trace_identical(self):
        reference, network = _sync_trace(
            self.GRAPH, lambda v: BFSTreeNode(v, 0), self.GRAPH.num_vertices + 2
        )
        tracer = TraceRecorder()
        result = bfs_tree(self.GRAPH, 0, tracer=tracer)
        assert tracer.events == reference.events
        self._check_invariants(tracer, result.stats, result.rounds)

    def test_leader_trace_identical(self):
        reference, network = _sync_trace(
            self.GRAPH, lambda v: LeaderElectionNode(v), self.GRAPH.num_vertices + 2
        )
        tracer = TraceRecorder()
        result = leader_election(self.GRAPH, tracer=tracer)
        assert tracer.events == reference.events
        self._check_invariants(tracer, result.stats, result.rounds)

    def test_convergecast_trace_identical_including_halts(self):
        graph = self.GRAPH
        values = {v: float(v) for v in graph.vertices()}
        parents, _ = run_bfs_tree(graph, 0)
        children = {v: [] for v in parents}
        for v, parent in parents.items():
            if parent >= 0:
                children[parent].append(v)
        reference, network = _sync_trace(
            graph,
            lambda v: ConvergecastSumNode(
                v,
                values.get(v, 0.0) if v in parents else 0.0,
                parents.get(v),
                children.get(v, ()),
            ),
            2 * graph.num_vertices + 4,
        )
        tracer = TraceRecorder()
        result = convergecast_sum(graph, 0, values, tracer=tracer)
        assert tracer.events == reference.events
        halts = list(tracer.halts())
        # every tree vertex except the root halts, exactly once
        assert sorted(event.node for event in halts) == sorted(
            v for v, parent in parents.items() if parent >= 0
        )
        self._check_invariants(tracer, result.stats, result.rounds)

    def test_trace_limit_respected_by_batch_engine(self):
        tracer = TraceRecorder(limit=5)
        flood(self.GRAPH, 0, tracer=tracer)
        assert len(tracer.events) == 5
        assert tracer.truncated
