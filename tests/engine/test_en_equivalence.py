"""Batch vs sync backends of the distributed EN / LS / MPX drivers.

The acceptance contract of the batch round-engine: for fixed seeds, the
``backend="batch"`` path of every distributed driver reproduces the
``backend="sync"`` reference **bit-identically** — decomposition,
per-phase round counts, and the complete :class:`NetworkStats`
(messages sent and delivered, words, peak per-edge-per-round bandwidth).
Covered across forwarding modes (full / top-two / top-one), adaptive and
fixed phase lengths, a non-Theorem-1 schedule, and both primitive
backends.
"""

from __future__ import annotations

import pytest

from repro.baselines.distributed_ls import decompose_distributed as ls_decompose
from repro.baselines.distributed_mpx import partition_distributed
from repro.core.distributed_en import decompose_distributed
from repro.core.params import Theorem2Schedule
from repro.engine import _backend
from repro.graphs import _kernel
from repro.errors import ParameterError
from repro.graphs import (
    Graph,
    cycle_graph,
    gnp_fast,
    path_graph,
    random_connected,
    torus_graph,
)

GRAPHS = {
    "path": path_graph(12),
    "cycle": cycle_graph(17),
    "torus": torus_graph(5, 6),
    "conn": random_connected(60, 0.04, seed=3),
    "gnp-disconnected": gnp_fast(48, 0.05, seed=7),
    # >= 64 edges AND the highest-numbered vertex isolated: exercises the
    # numpy reduceat paths on a trailing empty CSR row (regression for
    # the segment-start clamping bug).
    "gnp-trailing-isolated": gnp_fast(200, 0.008, seed=6),
    "isolated": Graph(5, [(1, 2), (3, 4)]),
}

assert GRAPHS["gnp-trailing-isolated"].degree(199) == 0
assert GRAPHS["gnp-trailing-isolated"].num_edges >= 64


def _assert_en_equal(sync, batch):
    assert sync.decomposition.cluster_index_map() == batch.decomposition.cluster_index_map()
    assert sync.phases == batch.phases
    assert sync.rounds_per_phase == batch.rounds_per_phase
    assert sync.stats == batch.stats
    assert sync.nominal_phases == batch.nominal_phases
    assert sync.exhausted_within_nominal == batch.exhausted_within_nominal
    assert sync.truncation_events == batch.truncation_events


class TestDistributedEN:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("mode", ["toptwo", "full"])
    def test_bit_identical(self, name, mode):
        graph = GRAPHS[name]
        for seed in (1, 20160217):
            for adaptive in (True, False):
                sync = decompose_distributed(
                    graph, k=3, seed=seed, mode=mode, adaptive_phase_length=adaptive
                )
                batch = decompose_distributed(
                    graph,
                    k=3,
                    seed=seed,
                    mode=mode,
                    adaptive_phase_length=adaptive,
                    backend="batch",
                )
                _assert_en_equal(sync, batch)

    def test_theorem2_schedule(self):
        graph = GRAPHS["conn"]
        schedule = Theorem2Schedule(n=graph.num_vertices, k=3, c=6.0)
        sync = decompose_distributed(graph, schedule=schedule, seed=5)
        batch = decompose_distributed(graph, schedule=schedule, seed=5, backend="batch")
        _assert_en_equal(sync, batch)

    def test_matches_centralized_reference_via_batch(self):
        """Transitivity check: batch == sync == centralized."""
        from repro.core import elkin_neiman

        graph = GRAPHS["conn"]
        batch = decompose_distributed(graph, k=4, seed=11, backend="batch")
        central, _ = elkin_neiman.decompose(graph, k=4, seed=11)
        assert central.cluster_index_map() == batch.decomposition.cluster_index_map()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            decompose_distributed(GRAPHS["path"], k=3, backend="gpu")

    def test_unknown_mode_rejected_before_dispatch(self):
        with pytest.raises(ParameterError, match="mode"):
            decompose_distributed(GRAPHS["path"], k=3, mode="bogus", backend="batch")

    @pytest.mark.skipif(not _backend.numpy_enabled(), reason="numpy backend inactive")
    def test_pure_python_primitives_identical(self, monkeypatch):
        graph = GRAPHS["conn"]
        with_numpy = decompose_distributed(graph, k=3, seed=9, backend="batch")
        monkeypatch.setattr(_kernel, "USE_NUMPY", False)
        pure = decompose_distributed(graph, k=3, seed=9, backend="batch")
        _assert_en_equal(with_numpy, pure)


class TestDistributedLS:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_bit_identical(self, name):
        graph = GRAPHS[name]
        for seed in (1, 20160217):
            for adaptive in (True, False):
                sync = ls_decompose(
                    graph, k=3, seed=seed, adaptive_phase_length=adaptive
                )
                batch = ls_decompose(
                    graph,
                    k=3,
                    seed=seed,
                    adaptive_phase_length=adaptive,
                    backend="batch",
                )
                assert (
                    sync.decomposition.cluster_index_map()
                    == batch.decomposition.cluster_index_map()
                )
                assert sync.phases == batch.phases
                assert sync.rounds_per_phase == batch.rounds_per_phase
                assert sync.stats == batch.stats

    def test_cluster_colors_match(self):
        graph = GRAPHS["torus"]
        sync = ls_decompose(graph, k=2, seed=4)
        batch = ls_decompose(graph, k=2, seed=4, backend="batch")
        assert [c.color for c in sync.decomposition.clusters] == [
            c.color for c in batch.decomposition.clusters
        ]
        assert [c.center for c in sync.decomposition.clusters] == [
            c.center for c in batch.decomposition.clusters
        ]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            ls_decompose(GRAPHS["path"], k=3, backend="gpu")


class TestDistributedMPX:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("mode", ["topone", "full"])
    def test_bit_identical(self, name, mode):
        graph = GRAPHS[name]
        for seed in (3, 20160217):
            for beta in (0.4, 0.9):
                sync = partition_distributed(graph, beta=beta, seed=seed, mode=mode)
                batch = partition_distributed(
                    graph, beta=beta, seed=seed, mode=mode, backend="batch"
                )
                assert sync.center_of == batch.center_of
                assert sync.stats == batch.stats
                assert sync.rounds == batch.rounds
                assert sync.cut_edges == batch.cut_edges
                assert sync.cut_fraction == batch.cut_fraction
                assert (
                    sync.decomposition.cluster_index_map()
                    == batch.decomposition.cluster_index_map()
                )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            partition_distributed(GRAPHS["path"], beta=0.5, backend="gpu")

    def test_unknown_mode_rejected_before_dispatch(self):
        with pytest.raises(ParameterError, match="mode"):
            partition_distributed(GRAPHS["path"], beta=0.5, mode="bogus", backend="batch")
