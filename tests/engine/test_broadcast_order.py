"""Permutation-invariance of the columnar broadcast merge.

``ShiftedFlood._deliver`` promises (its docstring) that its streaming
merges are commutative — any permutation of one round's broadcast
records leaves the decision arrays identical.  That property is what
the asynchronous engine's adversarial schedules lean on, so it gets a
direct property test here rather than only an end-to-end one.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.broadcast import LiveTopology, ShiftedFlood
from repro.engine.core import BatchEngine
from repro.graphs import erdos_renyi
from repro.rng import stream


def _decision_state(flood: ShiftedFlood):
    return (
        list(flood.best_value),
        list(flood.best_origin),
        list(flood.second_value),
        list(flood.num_entries),
        list(flood.min_origin),
        list(flood.min_shifted),
        dict(flood.entries),
    )


def _fresh_flood(graph, policy):
    rng = stream(42, "broadcast-order", policy if policy == "full" else policy)
    values = {v: 1.0 + 3.0 * rng.random() for v in range(graph.num_vertices)}
    caps = {v: int(values[v]) for v in values}
    engine = BatchEngine(graph)
    flood = ShiftedFlood(engine, LiveTopology(graph), values, caps, policy)
    return flood


@pytest.mark.parametrize("policy", ["full", 1, 2])
@pytest.mark.parametrize("permutation_seed", [1, 2, 3])
def test_deliver_is_permutation_invariant(policy, permutation_seed):
    graph = erdos_renyi(30, 0.2, seed=6)
    # One realistic round of traffic: every vertex broadcasts its own
    # value at distance 0 (the epoch's round-1 sends).
    outgoing = [(v, v, 0) for v in range(graph.num_vertices)]
    shuffled = list(outgoing)
    random.Random(permutation_seed).shuffle(shuffled)

    reference = _fresh_flood(graph, policy)
    reference._pending_count = 0
    reference_updated = reference._deliver(outgoing)

    permuted = _fresh_flood(graph, policy)
    permuted._pending_count = 0
    permuted_updated = permuted._deliver(shuffled)

    assert _decision_state(reference) == _decision_state(permuted)
    if policy == "full":
        # The frontier is an ordered record list; only its *content* is
        # order-defined.
        assert sorted(reference_updated) == sorted(permuted_updated)
    else:
        assert reference_updated == permuted_updated  # a set


@pytest.mark.parametrize("policy", ["full", 2])
def test_two_round_epoch_state_permutation_invariant(policy):
    """Permute the *second* round's records too — distances now vary."""
    graph = erdos_renyi(30, 0.2, seed=6)
    round_one = [(v, v, 0) for v in range(graph.num_vertices)]

    def run(perm_seed):
        flood = _fresh_flood(graph, policy)
        flood._pending_count = 0
        flood._deliver(round_one)
        # Second-round traffic: forward every eligible entry (superset of
        # what either policy would send — a harder permutation test).
        n = graph.num_vertices
        second = [
            (v, key % n, dist)
            for key, dist in sorted(flood.entries.items())
            for v in [key // n]
            if dist + 1 <= flood.caps[key % n]
        ]
        if perm_seed:
            random.Random(perm_seed).shuffle(second)
        flood._deliver(second)
        return _decision_state(flood)

    assert run(0) == run(9) == run(23)
