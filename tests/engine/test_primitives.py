"""Unit tests for the engine's neighbour-reduction primitives.

Every primitive is checked against a brute-force reference and — when
numpy is available — pinned bit-identical between the vectorised and
pure-Python backends (monkeypatching ``repro.graphs._kernel.USE_NUMPY``
— the library's single backend switch — flips the dispatch in-process;
CI's ``REPRO_KERNEL=py`` leg covers the env-level switch).
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.engine import _backend
from repro.graphs import _kernel
from repro.engine.primitives import (
    gather_any,
    gather_max,
    gather_min,
    gather_sum,
    live_degrees,
    masked_fill,
    scatter_min,
)
from repro.graphs import Graph, gnp_fast, path_graph, star_graph, torus_graph

def _trailing_isolated_graph() -> Graph:
    """>= 64 edges with the highest-numbered vertices isolated.

    Regression shape for the numpy ``reduceat`` paths: a trailing empty
    CSR row must not steal the final element of the preceding row's
    segment (clamping segment starts does exactly that)."""
    rng = random.Random(1)
    edges = set()
    while len(edges) < 115:
        u, v = rng.randrange(38), rng.randrange(38)  # 38, 39 stay isolated
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(40, sorted(edges))


GRAPHS = {
    "path": path_graph(9),
    "star": star_graph(7),
    "torus": torus_graph(5, 6),
    "gnp": gnp_fast(80, 0.06, seed=3),
    "gnp-wide": gnp_fast(220, 0.04, seed=5),  # >64 senders: numpy scatter path
    "isolated": Graph(6, [(0, 1), (3, 4)]),
    "trailing-isolated": _trailing_isolated_graph(),
    "empty": Graph(4),
}


def _values(n, seed, floats=False):
    rng = random.Random(seed)
    if floats:
        return [rng.random() * 20 - 5 for _ in range(n)]
    return array("l", [rng.randrange(1000) for _ in range(n)])


def _mask(n, seed):
    rng = random.Random(seed)
    return bytearray(1 if rng.random() < 0.6 else 0 for _ in range(n))


def _brute(graph, values, mask, op, default):
    out = []
    for v in graph.vertices():
        vals = [values[u] for u in graph.neighbors(v) if mask is None or mask[u]]
        out.append(op(vals) if vals else default)
    return out


@pytest.mark.parametrize("name", sorted(GRAPHS))
@pytest.mark.parametrize("masked", [False, True])
class TestGathers:
    def test_gather_min_max(self, name, masked):
        graph = GRAPHS[name]
        n = graph.num_vertices
        values = _values(n, seed=1)
        mask = _mask(n, seed=2) if masked else None
        assert gather_min(graph, values, 10**6, mask) == _brute(
            graph, values, mask, min, 10**6
        )
        assert gather_max(graph, values, -1, mask) == _brute(
            graph, values, mask, max, -1
        )

    def test_gather_sum(self, name, masked):
        graph = GRAPHS[name]
        n = graph.num_vertices
        values = _values(n, seed=3)
        mask = _mask(n, seed=4) if masked else None
        assert gather_sum(graph, values, mask) == _brute(graph, values, mask, sum, 0)

    def test_gather_any(self, name, masked):
        graph = GRAPHS[name]
        n = graph.num_vertices
        flags = _mask(n, seed=5)
        mask = _mask(n, seed=6) if masked else None
        expected = bytearray(
            1 if any(flags[u] for u in graph.neighbors(v) if mask is None or mask[u]) else 0
            for v in graph.vertices()
        )
        assert gather_any(graph, flags, mask) == expected


class TestScatterMin:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_matches_dense_gather(self, name):
        graph = GRAPHS[name]
        n = graph.num_vertices
        values = _values(n, seed=7)
        sender_mask = _mask(n, seed=8)
        senders = [v for v in range(n) if sender_mask[v]]
        out = array("l", [10**6]) * n
        scatter_min(graph, senders, values, out)
        assert list(out) == gather_min(graph, values, 10**6, sender_mask)

    def test_empty_senders(self):
        graph = GRAPHS["torus"]
        out = array("l", [5]) * graph.num_vertices
        scatter_min(graph, [], _values(graph.num_vertices, 1), out)
        assert set(out) == {5}


class TestMaskedFill:
    def test_fill(self):
        out = array("l", range(100))
        mask = _mask(100, seed=9)
        masked_fill(out, mask, -7)
        for v in range(100):
            assert out[v] == (-7 if mask[v] else v)

    def test_plain_list_output_is_mutated_in_place(self):
        # Regression: the numpy path must not be taken for a plain list —
        # np.asarray would copy it and the caller's buffer would stay
        # untouched.
        out = [0.0] * 100
        masked_fill(out, bytearray(b"\x01") * 100, 5.0)
        assert out == [5.0] * 100

    def test_scatter_min_into_plain_list(self):
        graph = GRAPHS["gnp-wide"]
        n = graph.num_vertices
        values = _values(n, seed=14)
        out = [10**6] * n
        scatter_min(graph, list(range(n)), values, out)
        assert out == gather_min(graph, values, 10**6)


class TestTrailingIsolatedRows:
    """Pin the reduceat padding fix on the exact failure shape: the last
    unmasked/contributing entry living in the final CSR slot."""

    def test_last_slot_only_unmasked_neighbour(self):
        graph = GRAPHS["trailing-isolated"]
        n = graph.num_vertices
        values = _values(n, seed=15)
        last_row_vertex = max(v for v in range(n) if graph.degree(v))
        mask = bytearray(n)
        mask[graph.neighbors(last_row_vertex)[-1]] = 1
        assert gather_min(graph, values, 10**6, mask) == _brute(
            graph, values, mask, min, 10**6
        )
        assert gather_max(graph, values, -1, mask) == _brute(
            graph, values, mask, max, -1
        )
        assert gather_sum(graph, values, mask) == _brute(graph, values, mask, sum, 0)


class TestUnsignedBuffers:
    """Narrow-dtype inputs must not wrap the out-of-range sentinel."""

    def test_gather_extremes_on_signed_bytes_at_dtype_boundary(self):
        graph = path_graph(70)
        values = array("b", [0] * 70)
        values[0] = -128  # int8 min: sentinel -129 would wrap to +127
        mask = bytearray(b"\x01") * 70
        mask[0] = 0
        assert gather_max(graph, values, 0, mask) == _brute(
            graph, values, mask, max, 0
        )
        values[0] = 127  # int8 max: sentinel +128 would wrap to -128
        assert gather_min(graph, values, 0) == _brute(graph, values, None, min, 0)

    def test_gather_extremes_on_bytearray_values(self):
        graph = path_graph(70)  # wide enough for the numpy path
        flags = bytearray(70)  # all zeros: min-1 would wrap to 255 in uint8
        assert gather_max(graph, flags, 0) == [0] * 70
        assert gather_min(graph, flags, 0) == [0] * 70
        full = bytearray(b"\xff") * 70  # all 255: max+1 would wrap to 0
        assert gather_min(graph, full, 0) == [255] * 70

    def test_masked_gather_on_bytearray_values(self):
        graph = GRAPHS["trailing-isolated"]
        n = graph.num_vertices
        flags = bytearray(n)  # nothing set; masked-out must never win
        mask = _mask(n, seed=16)
        assert gather_max(graph, flags, -1, mask) == _brute(
            graph, list(flags), mask, max, -1
        )


class TestGatherSumFloatDetection:
    def test_mixed_list_starting_with_int_stays_exact(self):
        # Regression: float detection must scan the whole sequence, not
        # just the first element, or the numpy path truncates to int64.
        graph = GRAPHS["gnp-wide"]
        n = graph.num_vertices
        values = [0] + [0.5] * (n - 1)
        expected = _brute(graph, values, None, sum, 0)
        assert gather_sum(graph, values) == expected

    def test_float32_ndarray_not_truncated(self):
        # Regression: np.float32 is not a `float` subclass — the int64
        # fast path must only run on provably integer inputs.
        np = pytest.importorskip("numpy")
        graph = GRAPHS["gnp-wide"]
        n = graph.num_vertices
        values = np.full(n, 0.5, dtype=np.float32)
        expected = _brute(graph, list(values), None, sum, 0)
        assert gather_sum(graph, values) == expected


class TestLiveDegrees:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_full_mask_is_degree(self, name):
        graph = GRAPHS[name]
        live = bytearray(b"\x01") * graph.num_vertices
        assert list(live_degrees(graph, live)) == [
            graph.degree(v) for v in graph.vertices()
        ]

    def test_partial_mask(self):
        graph = GRAPHS["torus"]
        live = _mask(graph.num_vertices, seed=10)
        expected = [
            sum(1 for u in graph.neighbors(v) if live[u]) for v in graph.vertices()
        ]
        assert list(live_degrees(graph, live)) == expected


@pytest.mark.skipif(not _backend.numpy_enabled(), reason="numpy backend inactive")
class TestBackendParity:
    """Vectorised and pure-Python paths must return bit-identical results."""

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_all_primitives_agree(self, name, monkeypatch):
        graph = GRAPHS[name]
        n = graph.num_vertices
        values = _values(n, seed=11)
        fvalues = _values(n, seed=12, floats=True)
        mask = _mask(n, seed=13)
        senders = [v for v in range(n) if mask[v]]

        def snapshot():
            out = array("l", [10**6]) * n
            scatter_min(graph, senders, values, out)
            filled = array("l", range(n))
            masked_fill(filled, mask, -3)
            return (
                gather_min(graph, values, 10**6, mask),
                gather_max(graph, values, -1, None),
                gather_sum(graph, values, mask),
                gather_sum(graph, fvalues, None),
                bytes(gather_any(graph, mask, None)),
                list(out),
                list(filled),
                list(live_degrees(graph, mask)),
            )

        with_numpy = snapshot()
        monkeypatch.setattr(_kernel, "USE_NUMPY", False)
        pure_python = snapshot()
        assert with_numpy == pure_python
