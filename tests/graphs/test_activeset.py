"""ActiveSet semantics: the byte-mask subset type behind the kernel."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import ActiveSet, as_active_mask
from repro.graphs.activeset import blocked_from_active


class TestConstruction:
    def test_empty(self):
        s = ActiveSet(5)
        assert len(s) == 0
        assert not s
        assert list(s) == []

    def test_full(self):
        s = ActiveSet.full(4)
        assert len(s) == 4
        assert list(s) == [0, 1, 2, 3]

    def test_from_iterable_dedupes(self):
        s = ActiveSet.from_iterable(10, [3, 1, 3, 7, 1])
        assert len(s) == 3
        assert list(s) == [1, 3, 7]

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            ActiveSet.from_iterable(3, [5])
        with pytest.raises(GraphError):
            ActiveSet(3).add(-1)

    def test_negative_universe_rejected(self):
        with pytest.raises(GraphError):
            ActiveSet(-1)


class TestSetSurface:
    def test_contains(self):
        s = ActiveSet.from_iterable(6, [0, 2])
        assert 0 in s and 2 in s
        assert 1 not in s
        assert 17 not in s
        assert -1 not in s
        assert True not in s  # bools are not vertices
        assert "x" not in s

    def test_iteration_is_ascending(self):
        s = ActiveSet.from_iterable(100, [40, 3, 99, 7])
        assert list(s) == [3, 7, 40, 99]

    def test_eq_against_set(self):
        s = ActiveSet.from_iterable(8, [1, 5])
        assert s == {1, 5}
        assert s != {1, 4}
        assert s == ActiveSet.from_iterable(8, [5, 1])
        assert s != ActiveSet.from_iterable(9, [1, 5])

    def test_first(self):
        assert ActiveSet(4).first() is None
        assert ActiveSet.from_iterable(9, [6, 2]).first() == 2


class TestMutation:
    def test_add_discard_idempotent(self):
        s = ActiveSet(4)
        s.add(2)
        s.add(2)
        assert len(s) == 1
        s.discard(2)
        s.discard(2)
        assert len(s) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(GraphError):
            ActiveSet(4).remove(1)

    def test_isub_with_set_and_range(self):
        s = ActiveSet.full(10)
        s -= {0, 1, 2}
        assert len(s) == 7
        s -= range(5, 100)  # out-of-range members silently ignored
        assert list(s) == [3, 4]

    def test_copy_is_independent(self):
        s = ActiveSet.full(3)
        t = s.copy()
        t.discard(0)
        assert 0 in s and 0 not in t


class TestAdapters:
    def test_none_passthrough(self):
        assert as_active_mask(4, None) is None
        assert blocked_from_active(4, None) == bytearray(4)

    def test_activeset_mask_copied(self):
        s = ActiveSet.from_iterable(4, [1])
        mask = as_active_mask(4, s)
        assert mask == bytearray([0, 1, 0, 0])
        mask[0] = 1  # mutating the copy must not touch the set
        assert 0 not in s

    def test_container_and_iterables(self):
        assert as_active_mask(4, {1, 3}) == bytearray([0, 1, 0, 1])
        assert as_active_mask(4, [3, 1, 3]) == bytearray([0, 1, 0, 1])
        assert as_active_mask(4, range(2)) == bytearray([1, 1, 0, 0])

    def test_pure_container_probe(self):
        class OddOnly:
            def __contains__(self, v):
                return v % 2 == 1

        assert as_active_mask(5, OddOnly()) == bytearray([0, 1, 0, 1, 0])

    def test_blocked_inverts(self):
        s = ActiveSet.from_iterable(3, [0, 2])
        assert blocked_from_active(3, s) == bytearray([0, 1, 0])

    def test_size_mismatch_raises(self):
        with pytest.raises(GraphError):
            as_active_mask(5, ActiveSet.full(4))
        with pytest.raises(GraphError):
            as_active_mask(5, bytearray(3))
