"""Unit tests for BFS traversal primitives and active-set filtering."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    bfs_distances,
    bfs_distances_bounded,
    component_of,
    connected_components,
    cycle_graph,
    grid_graph,
    is_connected,
    multi_source_bfs,
    path_graph,
    shortest_path,
)


class TestBFSDistances:
    def test_path_distances(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_cycle_distances(self):
        g = cycle_graph(6)
        d = bfs_distances(g, 0)
        assert d[3] == 3
        assert d[5] == 1

    def test_unreachable_absent(self):
        g = Graph(4, [(0, 1), (2, 3)])
        d = bfs_distances(g, 0)
        assert set(d) == {0, 1}

    def test_active_set_restricts_paths(self):
        g = path_graph(5)
        # Removing vertex 2 cuts the path.
        d = bfs_distances(g, 0, active={0, 1, 3, 4})
        assert set(d) == {0, 1}

    def test_active_set_detour(self):
        g = cycle_graph(6)
        # Block one arc; distance must go the long way.
        d = bfs_distances(g, 0, active={0, 2, 3, 4, 5})
        assert d[5] == 1
        assert d[2] == 4  # 0-5-4-3-2

    def test_inactive_source_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            bfs_distances(g, 0, active={1, 2})


class TestBoundedBFS:
    def test_radius_zero(self):
        g = path_graph(5)
        assert bfs_distances_bounded(g, 2, 0) == {2: 0}

    def test_radius_negative_empty(self):
        g = path_graph(3)
        assert bfs_distances_bounded(g, 0, -1) == {}

    def test_radius_cuts(self):
        g = path_graph(10)
        d = bfs_distances_bounded(g, 0, 3)
        assert set(d) == {0, 1, 2, 3}

    def test_radius_none_unbounded(self):
        g = path_graph(10)
        assert len(bfs_distances_bounded(g, 0, None)) == 10

    def test_matches_full_bfs_within_radius(self, zoo_graph):
        full = bfs_distances(zoo_graph, 0)
        bounded = bfs_distances_bounded(zoo_graph, 0, 2)
        for v, dist in bounded.items():
            assert full[v] == dist
        assert set(bounded) == {v for v, dist in full.items() if dist <= 2}


class TestMultiSourceBFS:
    def test_two_sources_on_path(self):
        g = path_graph(7)
        d = multi_source_bfs(g, [0, 6])
        assert d[3] == 3
        assert d[1] == 1
        assert d[5] == 1

    def test_duplicate_sources_ok(self):
        g = path_graph(3)
        assert multi_source_bfs(g, [0, 0]) == {0: 0, 1: 1, 2: 2}

    def test_empty_sources(self):
        assert multi_source_bfs(path_graph(3), []) == {}

    def test_inactive_source_rejected(self):
        with pytest.raises(GraphError):
            multi_source_bfs(path_graph(3), [0], active={1, 2})


class TestComponents:
    def test_connected_graph_single_component(self):
        comps = connected_components(grid_graph(3, 3))
        assert len(comps) == 1
        assert comps[0] == list(range(9))

    def test_two_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert comps == [[0, 1], [2, 3], [4]]

    def test_active_filter_splits(self):
        g = path_graph(5)
        comps = connected_components(g, active={0, 1, 3, 4})
        assert comps == [[0, 1], [3, 4]]

    def test_universe_subset(self):
        g = path_graph(5)
        comps = connected_components(g, active={3, 4}, universe=[3, 4])
        assert comps == [[3, 4]]

    def test_component_of(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert component_of(g, 3) == [2, 3]

    def test_is_connected(self):
        assert is_connected(grid_graph(2, 3))
        assert not is_connected(Graph(3, [(0, 1)]))
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))

    def test_is_connected_active(self):
        g = path_graph(5)
        assert is_connected(g, active={1, 2, 3})
        assert not is_connected(g, active={0, 2})
        assert is_connected(g, active=set())


class TestShortestPath:
    def test_trivial(self):
        assert shortest_path(path_graph(3), 1, 1) == [1]

    def test_simple_path(self):
        g = path_graph(5)
        assert shortest_path(g, 0, 3) == [0, 1, 2, 3]

    def test_unreachable(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert shortest_path(g, 0, 3) is None

    def test_respects_active(self):
        g = cycle_graph(6)
        path = shortest_path(g, 0, 3, active={0, 1, 2, 3})
        assert path == [0, 1, 2, 3]

    def test_target_inactive(self):
        assert shortest_path(path_graph(3), 0, 2, active={0, 1}) is None

    def test_length_matches_bfs(self, zoo_graph):
        distances = bfs_distances(zoo_graph, 0)
        for target, dist in distances.items():
            path = shortest_path(zoo_graph, 0, target)
            assert path is not None
            assert len(path) == dist + 1
            # Consecutive path vertices are adjacent.
            for a, b in zip(path, path[1:]):
                assert zoo_graph.has_edge(a, b)
