"""Unit tests for exact metric computations (diameter, strong/weak)."""

from __future__ import annotations

import math

import pytest

from repro.graphs import (
    Graph,
    all_pairs_distances,
    average_distance,
    complete_graph,
    cycle_graph,
    diameter,
    eccentricity,
    grid_graph,
    path_graph,
    radius,
    star_graph,
    strong_diameter,
    weak_diameter,
)


class TestEccentricity:
    def test_path_center_vs_end(self):
        g = path_graph(7)
        assert eccentricity(g, 0) == 6
        assert eccentricity(g, 3) == 3

    def test_disconnected_is_inf(self):
        g = Graph(3, [(0, 1)])
        assert math.isinf(eccentricity(g, 0))

    def test_active_subset(self):
        g = path_graph(5)
        assert eccentricity(g, 1, active={0, 1, 2}) == 1


class TestDiameterRadius:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(9), 8),
            (cycle_graph(10), 5),
            (complete_graph(7), 1),
            (star_graph(6), 2),
            (grid_graph(3, 7), 8),
        ],
    )
    def test_diameter_known(self, graph, expected):
        assert diameter(graph) == expected

    def test_diameter_trivial(self):
        assert diameter(Graph(0)) == 0
        assert diameter(Graph(1)) == 0

    def test_diameter_disconnected(self):
        assert math.isinf(diameter(Graph(3, [(0, 1)])))

    def test_diameter_active(self):
        g = cycle_graph(8)
        assert diameter(g, active={0, 1, 2, 3}) == 3

    def test_radius_path(self):
        assert radius(path_graph(9)) == 4

    def test_radius_star(self):
        assert radius(star_graph(8)) == 1

    def test_radius_le_diameter_le_twice_radius(self, zoo_graph):
        d = diameter(zoo_graph)
        r = radius(zoo_graph)
        if math.isinf(d):
            assert math.isinf(r) or True
        else:
            assert r <= d <= 2 * r


class TestStrongWeakDiameter:
    def test_connected_cluster_equal(self):
        g = path_graph(6)
        cluster = [1, 2, 3]
        assert strong_diameter(g, cluster) == 2
        assert weak_diameter(g, cluster) == 2

    def test_disconnected_cluster(self):
        g = path_graph(5)
        cluster = [0, 4]  # connected in G through 1,2,3 but not induced
        assert math.isinf(strong_diameter(g, cluster))
        assert weak_diameter(g, cluster) == 4

    def test_weak_le_strong(self, zoo_graph):
        # On any vertex subset, weak diameter <= strong diameter.
        cluster = [v for v in zoo_graph.vertices() if v % 2 == 0]
        if cluster:
            assert weak_diameter(zoo_graph, cluster) <= strong_diameter(
                zoo_graph, cluster
            )

    def test_singleton(self):
        g = path_graph(4)
        assert strong_diameter(g, [2]) == 0
        assert weak_diameter(g, [2]) == 0

    def test_empty(self):
        g = path_graph(4)
        assert strong_diameter(g, []) == 0
        assert weak_diameter(g, []) == 0

    def test_weak_inf_across_components(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert math.isinf(weak_diameter(g, [0, 2]))


class TestAverageDistance:
    def test_path(self):
        g = path_graph(3)
        # pairs: (0,1)=1 (0,2)=2 (1,2)=1 -> mean over ordered pairs = 8/6
        assert average_distance(g) == pytest.approx(8 / 6)

    def test_complete(self):
        assert average_distance(complete_graph(5)) == 1.0

    def test_no_pairs(self):
        assert average_distance(Graph(1)) == 0.0


class TestAllPairs:
    def test_symmetry(self, zoo_graph):
        apd = all_pairs_distances(zoo_graph)
        for u in zoo_graph.vertices():
            for v, d in apd[u].items():
                assert apd[v][u] == d

    def test_triangle_inequality(self):
        g = grid_graph(4, 4)
        apd = all_pairs_distances(g)
        verts = list(g.vertices())
        for u in verts[:6]:
            for v in verts[:6]:
                for w in verts[:6]:
                    assert apd[u][v] <= apd[u][w] + apd[w][v]
