"""Unit tests for induced subgraphs, quotient graphs and transforms."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, ParameterError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    diameter,
    grid_graph,
    induced_subgraph,
    line_graph,
    path_graph,
    power_graph,
    quotient_graph,
    relabel,
    star_graph,
)


class TestInducedSubgraph:
    def test_path_middle(self):
        g = path_graph(5)
        sub, mapping = induced_subgraph(g, [1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_drops_external_edges(self):
        g = complete_graph(4)
        sub, _ = induced_subgraph(g, [0, 2])
        assert sub.num_edges == 1

    def test_empty_selection(self):
        sub, mapping = induced_subgraph(path_graph(3), [])
        assert sub.num_vertices == 0
        assert mapping == {}

    def test_duplicates_collapsed(self):
        sub, _ = induced_subgraph(path_graph(3), [1, 1, 2])
        assert sub.num_vertices == 2


class TestQuotientGraph:
    def test_contract_path_pairs(self):
        g = path_graph(4)
        q = quotient_graph(g, {0: 0, 1: 0, 2: 1, 3: 1}, 2)
        assert q.num_vertices == 2
        assert q.num_edges == 1

    def test_no_self_loops(self):
        g = complete_graph(3)
        q = quotient_graph(g, {0: 0, 1: 0, 2: 0}, 1)
        assert q.num_edges == 0

    def test_parallel_edges_collapse(self):
        g = cycle_graph(4)
        q = quotient_graph(g, {0: 0, 1: 1, 2: 0, 3: 1}, 2)
        assert q.num_edges == 1

    def test_partial_mapping_rejected(self):
        with pytest.raises(GraphError):
            quotient_graph(path_graph(3), {0: 0, 1: 0}, 1)

    def test_out_of_range_cluster_rejected(self):
        with pytest.raises(GraphError):
            quotient_graph(path_graph(2), {0: 0, 1: 5}, 2)


class TestRelabel:
    def test_reverse_path(self):
        g = path_graph(4)
        h = relabel(g, [3, 2, 1, 0])
        assert h == g  # a path reversed is the same labelled path here

    def test_star_recentre(self):
        g = star_graph(4)
        h = relabel(g, [1, 0, 2, 3])
        assert h.degree(1) == 3
        assert h.degree(0) == 1

    def test_invalid_permutation(self):
        with pytest.raises(GraphError):
            relabel(path_graph(3), [0, 0, 1])

    def test_preserves_structure(self, zoo_graph):
        n = zoo_graph.num_vertices
        perm = [(v * 7 + 3) % n for v in range(n)]
        if len(set(perm)) != n:
            perm = list(reversed(range(n)))
        h = relabel(zoo_graph, perm)
        assert h.num_edges == zoo_graph.num_edges
        assert sorted(h.degree(v) for v in h.vertices()) == sorted(
            zoo_graph.degree(v) for v in zoo_graph.vertices()
        )


class TestLineGraph:
    def test_path_line_is_path(self):
        g = path_graph(4)  # 3 edges in a row
        lg, edges = line_graph(g)
        assert lg.num_vertices == 3
        assert lg.num_edges == 2
        assert diameter(lg) == 2
        assert edges == [(0, 1), (1, 2), (2, 3)]

    def test_star_line_is_complete(self):
        g = star_graph(5)
        lg, _ = line_graph(g)
        assert lg.num_vertices == 4
        assert lg.num_edges == 6  # K4

    def test_triangle_line_is_triangle(self):
        g = complete_graph(3)
        lg, _ = line_graph(g)
        assert lg.num_vertices == 3
        assert lg.num_edges == 3

    def test_edge_count_formula(self, zoo_graph):
        # |E(L(G))| = sum_v C(deg(v), 2)
        lg, _ = line_graph(zoo_graph)
        expected = sum(
            zoo_graph.degree(v) * (zoo_graph.degree(v) - 1) // 2
            for v in zoo_graph.vertices()
        )
        assert lg.num_edges == expected

    def test_empty_graph(self):
        lg, edges = line_graph(Graph(3))
        assert lg.num_vertices == 0
        assert edges == []


class TestPowerGraph:
    def test_square_of_path(self):
        g = path_graph(5)
        g2 = power_graph(g, 2)
        assert g2.has_edge(0, 2)
        assert not g2.has_edge(0, 3)

    def test_power_one_is_same(self, zoo_graph):
        assert power_graph(zoo_graph, 1) == zoo_graph

    def test_large_power_is_component_clique(self):
        g = path_graph(4)
        g3 = power_graph(g, 3)
        assert g3.num_edges == 6

    def test_invalid_power(self):
        with pytest.raises(ParameterError):
            power_graph(path_graph(3), 0)
