"""Hypothesis property tests for the graph substrate."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    GraphBuilder,
    bfs_distances,
    bfs_distances_bounded,
    connected_components,
    diameter,
    induced_subgraph,
    quotient_graph,
    relabel,
)


@st.composite
def graphs(draw, max_n: int = 24, max_extra_edges: int = 40):
    """Random simple graphs with up to ``max_n`` vertices."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        edges = draw(
            st.lists(st.sampled_from(possible), max_size=max_extra_edges)
        )
    else:
        edges = []
    builder = GraphBuilder(n)
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build()


@st.composite
def graphs_with_vertex(draw):
    g = draw(graphs())
    v = draw(st.integers(min_value=0, max_value=g.num_vertices - 1))
    return g, v


@given(graphs())
def test_handshake_lemma(g: Graph):
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(graphs_with_vertex())
def test_bfs_distances_are_metric_like(pair):
    g, source = pair
    distances = bfs_distances(g, source)
    assert distances[source] == 0
    # Every non-source reached vertex has a neighbour one step closer.
    for v, d in distances.items():
        if v == source:
            continue
        assert any(distances.get(w) == d - 1 for w in g.neighbors(v))


@given(graphs_with_vertex(), st.integers(min_value=0, max_value=6))
def test_bounded_bfs_is_prefix_of_bfs(pair, radius):
    g, source = pair
    full = bfs_distances(g, source)
    bounded = bfs_distances_bounded(g, source, radius)
    assert bounded == {v: d for v, d in full.items() if d <= radius}


@given(graphs())
def test_components_partition_vertices(g: Graph):
    comps = connected_components(g)
    flat = [v for comp in comps for v in comp]
    assert sorted(flat) == list(g.vertices())
    # No edge crosses two different components.
    index = {v: i for i, comp in enumerate(comps) for v in comp}
    for u, v in g.edges():
        assert index[u] == index[v]


@given(graphs_with_vertex())
def test_bfs_symmetry(pair):
    g, source = pair
    distances = bfs_distances(g, source)
    for v, d in distances.items():
        back = bfs_distances(g, v)
        assert back[source] == d


@given(graphs())
def test_induced_subgraph_of_everything_is_isomorphic(g: Graph):
    sub, mapping = induced_subgraph(g, list(g.vertices()))
    assert sub.num_vertices == g.num_vertices
    assert sub.num_edges == g.num_edges
    assert mapping == {v: v for v in g.vertices()}


@given(graphs())
def test_quotient_by_identity_preserves_adjacency(g: Graph):
    q = quotient_graph(g, {v: v for v in g.vertices()}, g.num_vertices)
    assert q == g


@given(graphs())
def test_quotient_by_components_is_edgeless(g: Graph):
    comps = connected_components(g)
    cluster_of = {v: i for i, comp in enumerate(comps) for v in comp}
    q = quotient_graph(g, cluster_of, len(comps))
    assert q.num_edges == 0


@given(graphs(), st.randoms(use_true_random=False))
def test_relabel_preserves_degree_multiset(g: Graph, rnd):
    perm = list(g.vertices())
    rnd.shuffle(perm)
    h = relabel(g, perm)
    assert sorted(h.degree(v) for v in h.vertices()) == sorted(
        g.degree(v) for v in g.vertices()
    )


@given(graphs())
@settings(max_examples=40)
def test_diameter_invariant_under_relabel(g: Graph):
    perm = list(reversed(range(g.num_vertices)))
    assert diameter(relabel(g, perm)) == diameter(g)
