"""Unit tests for topology generators: sizes, structure, determinism."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.graphs import (
    balanced_tree,
    barabasi_albert,
    barbell_graph,
    binary_tree,
    caterpillar_graph,
    cluster_graph,
    complete_graph,
    cycle_graph,
    diameter,
    empty_graph,
    erdos_renyi,
    gnp_fast,
    grid_graph,
    hypercube_graph,
    is_connected,
    lollipop_graph,
    path_graph,
    random_connected,
    random_regular,
    random_tree,
    star_graph,
    torus_graph,
    watts_strogatz,
)


class TestDeterministicFamilies:
    def test_empty(self):
        g = empty_graph(4)
        assert (g.num_vertices, g.num_edges) == (4, 0)

    def test_path(self):
        g = path_graph(6)
        assert g.num_edges == 5
        assert diameter(g) == 5
        assert g.degree(0) == 1 and g.degree(3) == 2

    def test_path_trivial(self):
        assert path_graph(1).num_edges == 0
        assert path_graph(0).num_vertices == 0

    def test_cycle(self):
        g = cycle_graph(8)
        assert g.num_edges == 8
        assert all(g.degree(v) == 2 for v in g.vertices())
        assert diameter(g) == 4

    def test_cycle_too_small(self):
        with pytest.raises(ParameterError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert diameter(g) == 1

    def test_star(self):
        g = star_graph(7)
        assert g.num_edges == 6
        assert g.degree(0) == 6
        assert diameter(g) == 2

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert diameter(g) == (3 - 1) + (4 - 1)

    def test_grid_single(self):
        assert grid_graph(1, 1).num_edges == 0

    def test_torus(self):
        g = torus_graph(4, 4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_torus_too_small(self):
        with pytest.raises(ParameterError):
            torus_graph(2, 5)

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_vertices == 15  # 1 + 2 + 4 + 8
        assert g.num_edges == 14
        assert is_connected(g)
        assert diameter(g) == 6

    def test_balanced_tree_height_zero(self):
        g = balanced_tree(3, 0)
        assert g.num_vertices == 1

    def test_binary_tree(self):
        g = binary_tree(7)
        assert g.num_edges == 6
        assert g.degree(0) == 2

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert g.num_vertices == 8
        assert g.num_edges == 12
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert diameter(g) == 3

    def test_hypercube_dim_zero(self):
        assert hypercube_graph(0).num_vertices == 1

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.num_vertices == 12
        assert g.num_edges == 3 + 8
        assert is_connected(g)

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert g.num_vertices == 7
        assert g.num_edges == 6 + 3
        assert is_connected(g)

    def test_barbell(self):
        g = barbell_graph(3, 2)
        assert g.num_vertices == 8
        assert g.num_edges == 3 + 3 + 3  # two triangles + bridge of 3 edges
        assert is_connected(g)


class TestRandomFamilies:
    def test_er_determinism(self):
        assert erdos_renyi(30, 0.2, seed=5) == erdos_renyi(30, 0.2, seed=5)

    def test_er_seed_sensitivity(self):
        assert erdos_renyi(30, 0.2, seed=5) != erdos_renyi(30, 0.2, seed=6)

    def test_er_extremes(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=1).num_edges == 45

    def test_er_bad_p(self):
        with pytest.raises(ParameterError):
            erdos_renyi(10, 1.5)

    def test_gnp_fast_determinism_and_seed_sensitivity(self):
        assert gnp_fast(200, 0.03, seed=5) == gnp_fast(200, 0.03, seed=5)
        assert gnp_fast(200, 0.03, seed=5) != gnp_fast(200, 0.03, seed=6)

    def test_gnp_fast_is_a_distinct_family(self):
        # Deliberately NOT the same instance as er: for a shared seed —
        # the skip-sampled stream is new, so seeded er: graphs (and the
        # golden-decomposition contract behind them) are untouched.
        assert gnp_fast(60, 0.1, seed=5) != erdos_renyi(60, 0.1, seed=5)

    def test_gnp_fast_extremes(self):
        assert gnp_fast(10, 0.0, seed=1).num_edges == 0
        assert gnp_fast(10, 1.0, seed=1).num_edges == 45
        assert gnp_fast(0, 0.5, seed=1).num_vertices == 0
        assert gnp_fast(1, 0.5, seed=1).num_edges == 0

    def test_gnp_fast_edge_count_tracks_expectation(self):
        n, p = 400, 0.05
        expected = p * n * (n - 1) / 2
        total = sum(
            gnp_fast(n, p, seed=seed).num_edges for seed in range(5)
        ) / 5
        assert 0.85 * expected < total < 1.15 * expected

    def test_gnp_fast_edges_are_valid_and_simple(self):
        g = gnp_fast(120, 0.04, seed=9)
        edges = list(g.edges())
        assert len(set(edges)) == len(edges) == g.num_edges
        assert all(0 <= u < v < 120 for u, v in edges)

    def test_gnp_fast_bad_p(self):
        with pytest.raises(ParameterError):
            gnp_fast(10, -0.1)
        with pytest.raises(ParameterError):
            gnp_fast(10, 1.5)

    def test_random_tree(self):
        g = random_tree(25, seed=3)
        assert g.num_edges == 24
        assert is_connected(g)

    def test_barabasi_albert(self):
        g = barabasi_albert(40, 3, seed=2)
        assert g.num_vertices == 40
        assert is_connected(g)
        # each of the n - attach - 1 later vertices adds exactly `attach` edges
        assert g.num_edges == 3 + (40 - 4) * 3

    def test_barabasi_albert_validation(self):
        with pytest.raises(ParameterError):
            barabasi_albert(3, 3)
        with pytest.raises(ParameterError):
            barabasi_albert(10, 0)

    def test_watts_strogatz(self):
        g = watts_strogatz(30, 4, 0.1, seed=4)
        assert g.num_vertices == 30
        assert g.num_edges <= 60
        assert g.num_edges >= 50  # rewiring only drops duplicates

    def test_watts_strogatz_no_rewire(self):
        g = watts_strogatz(20, 4, 0.0, seed=1)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_watts_strogatz_validation(self):
        with pytest.raises(ParameterError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ParameterError):
            watts_strogatz(4, 4, 0.1)  # n <= k

    def test_random_regular(self):
        g = random_regular(30, 4, seed=7)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_random_regular_zero_degree(self):
        assert random_regular(5, 0, seed=1).num_edges == 0

    def test_random_regular_validation(self):
        with pytest.raises(ParameterError):
            random_regular(5, 3)  # odd product
        with pytest.raises(ParameterError):
            random_regular(4, 4)  # degree >= n

    def test_cluster_graph(self):
        g = cluster_graph(3, 10, 0.8, 0.02, seed=9)
        assert g.num_vertices == 30
        internal = sum(
            1 for u, v in g.edges() if u // 10 == v // 10
        )
        external = g.num_edges - internal
        assert internal > external

    def test_random_connected_always_connected(self):
        for seed in range(5):
            assert is_connected(random_connected(40, 0.01, seed=seed))

    def test_random_connected_validation(self):
        with pytest.raises(ParameterError):
            random_connected(0, 0.1)
        with pytest.raises(ParameterError):
            random_connected(5, 2.0)


class TestNetworkxCrossCheck:
    """Our generators against networkx reference computations."""

    def test_grid_diameter_matches_networkx(self):
        import networkx as nx

        from repro.graphs import to_networkx

        g = grid_graph(4, 5)
        assert diameter(g) == nx.diameter(to_networkx(g))

    def test_hypercube_matches_networkx(self):
        import networkx as nx

        from repro.graphs import to_networkx

        g = hypercube_graph(4)
        nxg = to_networkx(g)
        assert nx.diameter(nxg) == 4
        assert nx.number_of_edges(nxg) == g.num_edges
