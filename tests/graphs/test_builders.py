"""Unit tests for graph construction helpers and networkx interop."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    from_adjacency,
    from_edge_list,
    from_networkx,
    parse_edge_list_text,
    path_graph,
    to_networkx,
)


class TestFromEdgeList:
    def test_basic(self):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        assert g == path_graph(4)

    def test_duplicates_ignored(self):
        g = from_edge_list(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1


class TestFromAdjacency:
    def test_mapping_one_directional(self):
        g = from_adjacency({0: [1], 1: [2]})
        assert g == path_graph(3)

    def test_mapping_bidirectional(self):
        g = from_adjacency({0: [1], 1: [0, 2], 2: [1]})
        assert g == path_graph(3)

    def test_sequence_form(self):
        g = from_adjacency([[1], [0, 2], [1]])
        assert g == path_graph(3)

    def test_isolated_key_extends_range(self):
        g = from_adjacency({5: []})
        assert g.num_vertices == 6
        assert g.num_edges == 0


class TestParseEdgeListText:
    def test_basic_document(self):
        text = """
        # a comment
        0 1
        1 2

        2 3
        """
        g = parse_edge_list_text(text)
        assert g == path_graph(4)

    def test_bad_token_count(self):
        with pytest.raises(GraphError, match="two endpoints"):
            parse_edge_list_text("0 1 2")

    def test_non_integer(self):
        with pytest.raises(GraphError, match="non-integer"):
            parse_edge_list_text("0 x")

    def test_negative_vertex(self):
        with pytest.raises(GraphError, match="negative"):
            parse_edge_list_text("0 -1")

    def test_empty_document(self):
        g = parse_edge_list_text("# nothing\n")
        assert g.num_vertices == 0


class TestNetworkxInterop:
    def test_round_trip(self, zoo_graph):
        nxg = to_networkx(zoo_graph)
        back, labels = from_networkx(nxg)
        assert back == zoo_graph
        assert labels == {v: v for v in zoo_graph.vertices()}

    def test_from_networkx_relabels(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("b", "a")
        nxg.add_edge("b", "c")
        g, labels = from_networkx(nxg)
        assert g.num_vertices == 3
        assert labels == {"a": 0, "b": 1, "c": 2}
        assert g.degree(labels["b"]) == 2

    def test_from_networkx_drops_self_loops(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g, _ = from_networkx(nxg)
        assert g.num_edges == 1


class TestLargeErSpecGuard:
    """The er: spec warns at n >= 5e4 and points at gnp_fast: (the
    sampling itself is untouched — the golden fixtures pin its stream)."""

    def test_large_er_spec_warns_and_mentions_gnp_fast(self, monkeypatch):
        from repro.graphs import builders, generators

        calls = {}

        def stub(n, p, seed):
            calls["args"] = (n, p, seed)
            return path_graph(2)

        # Stub the generator: actually sampling er:50000 is O(n²) slow,
        # and the guard must fire before generation starts.
        monkeypatch.setattr(generators, "erdos_renyi", stub)
        with pytest.warns(RuntimeWarning, match="gnp_fast:50000"):
            builders.parse_graph_spec("er:50000:0.0001", seed=3)
        assert calls["args"] == (50000, 0.0001, 3)

    def test_small_er_spec_does_not_warn(self):
        import warnings

        from repro.graphs import builders

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            graph = builders.parse_graph_spec("er:30:0.1", seed=3)
        assert graph.num_vertices == 30
