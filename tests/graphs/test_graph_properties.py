"""Tests for structural graph property measurements."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import (
    core_numbers,
    degeneracy,
    density,
    global_clustering_coefficient,
    local_clustering_coefficient,
    triangle_count,
)


class TestCoreNumbers:
    def test_path_is_1_degenerate(self):
        assert degeneracy(path_graph(10)) == 1
        assert set(core_numbers(path_graph(10)).values()) == {1}

    def test_cycle_is_2_core(self):
        assert degeneracy(cycle_graph(8)) == 2

    def test_complete_graph(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_star_is_1_degenerate(self):
        cores = core_numbers(star_graph(8))
        assert cores[0] == 1
        assert all(cores[v] == 1 for v in range(1, 8))

    def test_empty(self):
        assert degeneracy(Graph(5)) == 0
        assert degeneracy(Graph(0)) == 0

    def test_clique_with_tail(self):
        # K4 with a pendant path: core numbers 3 inside, 1 on the tail.
        g = Graph(6, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
        cores = core_numbers(g)
        assert cores[0] == cores[1] == cores[2] == cores[3] == 3
        assert cores[4] == cores[5] == 1

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graphs import to_networkx

        g = erdos_renyi(40, 0.15, seed=3)
        ours = core_numbers(g)
        theirs = nx.core_number(to_networkx(g))
        assert ours == theirs


class TestTriangles:
    def test_known_counts(self):
        assert triangle_count(complete_graph(4)) == 4
        assert triangle_count(complete_graph(5)) == 10
        assert triangle_count(cycle_graph(5)) == 0
        assert triangle_count(path_graph(6)) == 0

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graphs import to_networkx

        g = erdos_renyi(40, 0.2, seed=4)
        assert triangle_count(g) == sum(nx.triangles(to_networkx(g)).values()) // 3


class TestClustering:
    def test_complete_graph_is_one(self):
        assert global_clustering_coefficient(complete_graph(5)) == 1.0
        assert local_clustering_coefficient(complete_graph(5), 0) == 1.0

    def test_triangle_free_is_zero(self):
        assert global_clustering_coefficient(grid_graph(4, 4)) == 0.0

    def test_low_degree_local(self):
        assert local_clustering_coefficient(path_graph(3), 0) == 0.0

    def test_matches_networkx_transitivity(self):
        import networkx as nx

        from repro.graphs import to_networkx

        g = erdos_renyi(35, 0.2, seed=5)
        ours = global_clustering_coefficient(g)
        theirs = nx.transitivity(to_networkx(g))
        assert ours == pytest.approx(theirs)


class TestDensity:
    def test_complete(self):
        assert density(complete_graph(6)) == 1.0

    def test_empty(self):
        assert density(Graph(6)) == 0.0
        assert density(Graph(1)) == 0.0

    def test_path(self):
        assert density(path_graph(5)) == pytest.approx(4 / 10)
