"""Tests for graph serialisation (edge lists, DOT export)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    grid_graph,
    path_graph,
    read_edge_list,
    to_dot,
    write_edge_list,
)


class TestEdgeListRoundTrip:
    def test_round_trip(self, tmp_path, zoo_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(zoo_graph, path)
        assert read_edge_list(path) == zoo_graph

    def test_isolated_vertices_preserved(self, tmp_path):
        g = Graph(5, [(0, 1)])  # vertices 2..4 isolated
        path = tmp_path / "iso.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_empty_graph(self, tmp_path):
        g = Graph(3)
        path = tmp_path / "empty.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_plain_edge_list_without_header(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n")
        assert read_edge_list(path) == path_graph(3)

    def test_inconsistent_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# n = 2\n0 3\n")
        with pytest.raises(GraphError, match="header declares"):
            read_edge_list(path)

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("# n = abc\n0 1\n")
        with pytest.raises(GraphError, match="vertex-count header"):
            read_edge_list(path)


class TestDotExport:
    def test_structure(self):
        g = path_graph(3)
        dot = to_dot(g)
        assert dot.startswith("graph G {")
        assert "0 -- 1;" in dot
        assert "1 -- 2;" in dot
        assert dot.rstrip().endswith("}")

    def test_cluster_colors(self):
        from repro.core import elkin_neiman

        g = grid_graph(3, 3)
        decomposition, _ = elkin_neiman.decompose(g, k=2, seed=1)
        dot = to_dot(g, decomposition.cluster_index_map())
        assert "fillcolor" in dot
        # Every vertex line carries a colour.
        assert dot.count("fillcolor") == g.num_vertices

    def test_custom_name(self):
        assert to_dot(path_graph(2), name="My").startswith("graph My {")

    def test_valid_dot_vertex_count(self):
        g = path_graph(4)
        dot = to_dot(g)
        assert dot.count(";") >= g.num_vertices + g.num_edges
