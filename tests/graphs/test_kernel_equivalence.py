"""CSR kernel ≡ reference kernel: randomized equivalence property tests.

The reference implementations below are deliberately naive (adjacency
dicts, deque BFS, per-edge ``in active`` probes) — the shape of the
pre-CSR kernel.  Every traversal primitive must agree with them exactly,
on both the numpy-accelerated and the pure-Python backend, for plain
``set`` actives and for :class:`ActiveSet` masks alike.
"""

from __future__ import annotations

import random
from collections import deque

import pytest

import repro.graphs._kernel as kernel
from repro.graphs import (
    ActiveSet,
    Graph,
    bfs_distances,
    bfs_distances_bounded,
    connected_components,
    erdos_renyi,
    grid_graph,
    is_connected,
    multi_source_bfs,
    random_tree,
    shortest_path,
    watts_strogatz,
)


# ----------------------------------------------------------------------
# Reference implementations (pre-CSR shape)
# ----------------------------------------------------------------------
def ref_bfs(graph: Graph, sources, active=None, radius=None) -> dict[int, int]:
    distances = {}
    frontier = deque()
    for s in sorted(set(sources)):
        distances[s] = 0
        frontier.append(s)
    while frontier:
        u = frontier.popleft()
        du = distances[u]
        if radius is not None and du >= radius:
            continue
        for w in graph.neighbors(u):
            if w not in distances and (active is None or w in active):
                distances[w] = du + 1
                frontier.append(w)
    return distances


def ref_components(graph: Graph, active=None) -> list[list[int]]:
    seen: set[int] = set()
    components = []
    for start in graph.vertices():
        if start in seen or not (active is None or start in active):
            continue
        component = sorted(ref_bfs(graph, [start], active=active))
        seen.update(component)
        components.append(component)
    components.sort(key=lambda comp: comp[0])
    return components


def random_cases():
    rng = random.Random(20160217)
    graphs = [
        erdos_renyi(60, 0.05, seed=5),
        erdos_renyi(120, 0.02, seed=9),   # sparse, disconnected
        erdos_renyi(40, 0.25, seed=3),    # dense
        grid_graph(9, 11),
        random_tree(80, seed=7),
        watts_strogatz(90, 4, 0.2, seed=11),
        Graph(5),                          # edgeless
        Graph(1),                          # single vertex
    ]
    cases = []
    for graph in graphs:
        n = graph.num_vertices
        actives = [None]
        if n > 1:
            actives.append(set(rng.sample(range(n), max(1, n // 2))))
            actives.append(set(rng.sample(range(n), max(1, (3 * n) // 4))))
        cases.append((graph, actives))
    return cases


@pytest.fixture(params=["auto", "py"], ids=["backend-auto", "backend-py"])
def kernel_backend(request, monkeypatch):
    if request.param == "py":
        monkeypatch.setattr(kernel, "USE_NUMPY", False)
    return request.param


def _active_variants(graph, active):
    """Both accepted spellings of one active subset."""
    if active is None:
        return [None]
    return [active, ActiveSet.from_iterable(graph.num_vertices, active)]


class TestEquivalence:
    def test_bfs_distances(self, kernel_backend):
        for graph, actives in random_cases():
            for active in actives:
                members = range(graph.num_vertices) if active is None else sorted(active)
                sources = list(members)[:3]
                for source in sources:
                    want = ref_bfs(graph, [source], active=active)
                    for spelled in _active_variants(graph, active):
                        assert bfs_distances(graph, source, active=spelled) == want

    def test_bfs_bounded(self, kernel_backend):
        for graph, actives in random_cases():
            for active in actives:
                members = range(graph.num_vertices) if active is None else sorted(active)
                source = next(iter(members), None)
                if source is None:
                    continue
                for radius in (0, 1, 2, 5):
                    want = ref_bfs(graph, [source], active=active, radius=radius)
                    for spelled in _active_variants(graph, active):
                        got = bfs_distances_bounded(graph, source, radius, active=spelled)
                        assert got == want

    def test_multi_source(self, kernel_backend):
        rng = random.Random(7)
        for graph, actives in random_cases():
            for active in actives:
                members = list(range(graph.num_vertices)) if active is None else sorted(active)
                if not members:
                    continue
                sources = rng.sample(members, min(4, len(members)))
                want = ref_bfs(graph, sources, active=active)
                for spelled in _active_variants(graph, active):
                    assert multi_source_bfs(graph, sources, active=spelled) == want

    def test_connected_components(self, kernel_backend):
        for graph, actives in random_cases():
            for active in actives:
                want = ref_components(graph, active=active)
                for spelled in _active_variants(graph, active):
                    assert connected_components(graph, active=spelled) == want
                    assert is_connected(graph, active=spelled) == (len(want) <= 1)

    def test_shortest_path_valid(self, kernel_backend):
        for graph, actives in random_cases():
            for active in actives:
                members = list(range(graph.num_vertices)) if active is None else sorted(active)
                if not members:
                    continue
                source = members[0]
                want = ref_bfs(graph, [source], active=active)
                for target in members[:5]:
                    path = shortest_path(graph, source, target, active=active)
                    if target not in want:
                        assert path is None
                        continue
                    assert path is not None
                    assert path[0] == source and path[-1] == target
                    assert len(path) == want[target] + 1
                    for a, b in zip(path, path[1:]):
                        assert graph.has_edge(a, b)
                        assert active is None or (a in active and b in active)


class TestBackendsAgree:
    """numpy path and pure-Python path must be bit-identical (incl. order)."""

    @pytest.mark.skipif(not kernel.numpy_enabled(), reason="numpy not available")
    def test_identical_dicts_and_order(self, monkeypatch):
        graph = erdos_renyi(150, 0.03, seed=4)
        active = ActiveSet.from_iterable(150, range(0, 150, 2))
        fast = bfs_distances(graph, 0, active=active)
        comps_fast = connected_components(graph, active=active)
        monkeypatch.setattr(kernel, "USE_NUMPY", False)
        slow = bfs_distances(graph, 0, active=active)
        comps_slow = connected_components(graph, active=active)
        assert fast == slow
        assert list(fast.items()) == list(slow.items())  # same emission order
        assert comps_fast == comps_slow


class TestActiveSetNotCorrupted:
    def test_traversal_leaves_active_intact(self, kernel_backend):
        graph = grid_graph(6, 6)
        active = ActiveSet.from_iterable(36, range(0, 36, 3))
        before = list(active)
        bfs_distances(graph, 0, active=active)
        connected_components(graph, active=active)
        assert list(active) == before

    def test_carve_scratch_restored(self, kernel_backend):
        # carve_block shares one scratch mask across broadcasts; a second
        # call with the same active set must see pristine state.
        from repro.core.carving import carve_block

        graph = grid_graph(5, 5)
        active = ActiveSet.full(25)
        radii = {v: 1.5 for v in range(25)}
        first = carve_block(graph, active, radii)
        second = carve_block(graph, active, radii)
        assert first.block == second.block
        assert first.center_of == second.center_of
