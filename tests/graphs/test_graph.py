"""Unit tests for the Graph kernel (construction, accessors, invariants)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import Graph, GraphBuilder


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_isolated_vertices(self):
        g = Graph(5)
        assert g.num_vertices == 5
        assert all(g.degree(v) == 0 for v in g.vertices())

    def test_simple_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_edges == 3
        assert g.neighbors(0) == (1, 2)
        assert g.neighbors(1) == (0, 2)

    def test_edges_normalised(self):
        g = Graph(3, [(2, 0), (1, 0)])
        assert list(g.edges()) == [(0, 1), (0, 2)]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            Graph(2, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(2, [(0, 2)])

    def test_non_int_vertex_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, "1")])  # type: ignore[list-item]

    def test_bool_vertex_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, True)])


class TestGraphAccessors:
    def test_neighbors_sorted(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert Graph(0).max_degree() == 0
        assert Graph(3).max_degree() == 0

    def test_has_edge(self):
        g = Graph(5, [(0, 1), (2, 4)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.has_edge(4, 2)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(3, 3)

    def test_has_edge_large_adjacency(self):
        edges = [(0, i) for i in range(1, 30)]
        g = Graph(30, edges)
        for i in range(1, 30):
            assert g.has_edge(0, i)
        assert not g.has_edge(1, 2)

    def test_len(self):
        assert len(Graph(7)) == 7

    def test_vertices_range(self):
        assert list(Graph(3).vertices()) == [0, 1, 2]

    def test_neighbor_of_invalid_vertex(self):
        with pytest.raises(GraphError):
            Graph(3).neighbors(5)


class TestGraphEquality:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_vertex_count(self):
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])

    def test_unequal_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(1, 2)])

    def test_not_equal_other_type(self):
        assert Graph(1) != "graph"

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"


class TestGraphBuilder:
    def test_builder_dedupes(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        g = b.build()
        assert g.num_edges == 1

    def test_builder_rejects_self_loop(self):
        b = GraphBuilder(3)
        with pytest.raises(GraphError):
            b.add_edge(2, 2)

    def test_builder_rejects_out_of_range(self):
        b = GraphBuilder(2)
        with pytest.raises(GraphError):
            b.add_edge(0, 2)

    def test_builder_has_edge(self):
        b = GraphBuilder(3)
        b.add_edge(0, 2)
        assert b.has_edge(2, 0)
        assert not b.has_edge(0, 1)

    def test_builder_num_edges(self):
        b = GraphBuilder(4)
        assert b.num_edges == 0
        b.add_edge(0, 1)
        b.add_edge(2, 3)
        assert b.num_edges == 2

    def test_builder_negative_count(self):
        with pytest.raises(GraphError):
            GraphBuilder(-2)

    def test_build_deterministic(self):
        b1, b2 = GraphBuilder(4), GraphBuilder(4)
        for u, v in [(3, 1), (0, 2), (1, 0)]:
            b1.add_edge(u, v)
        for u, v in [(0, 2), (1, 0), (3, 1)]:
            b2.add_edge(u, v)
        assert b1.build() == b2.build()


class TestHandshakeInvariant:
    def test_degree_sum_is_twice_edges(self, zoo_graph):
        total = sum(zoo_graph.degree(v) for v in zoo_graph.vertices())
        assert total == 2 * zoo_graph.num_edges

    def test_edges_iter_count(self, zoo_graph):
        assert sum(1 for _ in zoo_graph.edges()) == zoo_graph.num_edges

    def test_adjacency_symmetry(self, zoo_graph):
        for u, v in zoo_graph.edges():
            assert u in zoo_graph.neighbors(v)
            assert v in zoo_graph.neighbors(u)
