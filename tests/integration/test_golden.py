"""Golden regression tests: exact pinned outputs for fixed seeds.

These freeze the byte-level behaviour of the randomized algorithms.  Any
change to RNG stream derivation, carving order, tie-breaking or phase
scheduling will flip one of these — deliberately: all recorded experiment
tables depend on this determinism.

If a change is *intentional* (e.g. an algorithmic fix), regenerate the
constants with the snippets in each test's docstring and say so in the
commit message.
"""

from __future__ import annotations

import pytest

from repro.baselines import linial_saks, mpx
from repro.core import elkin_neiman
from repro.core.shifts import sample_radius
from repro.graphs import erdos_renyi, grid_graph


class TestRadiusStream:
    def test_pinned_draws(self):
        """`[round(sample_radius(1, t, v, 0.5), 6) for t, v in ...]`"""
        values = [
            round(sample_radius(1, t, v, 0.5), 6)
            for t, v in [(1, 0), (1, 1), (2, 0), (3, 7)]
        ]
        assert values == [0.597151, 4.122135, 2.797975, 1.268464]


class TestGoldenEN:
    def test_er_graph_fingerprint(self):
        """Fingerprint: (num clusters, num colours, block sizes of first 5 phases)."""
        g = erdos_renyi(60, 0.08, seed=3)
        decomposition, trace = elkin_neiman.decompose(g, k=3, seed=11)
        fingerprint = (
            decomposition.num_clusters,
            decomposition.num_colors,
            tuple(p.block_size for p in trace.phases[:5]),
        )
        assert fingerprint == (53, 19, (5, 10, 6, 6, 2))

    def test_grid_cluster_of_vertex_zero(self):
        g = grid_graph(6, 6)
        decomposition, _ = elkin_neiman.decompose(g, k=3, seed=5)
        cluster = decomposition.cluster_of(0)
        assert sorted(cluster.vertices) == [0]
        assert cluster.color == 2
        assert cluster.center == 0


class TestGoldenLS:
    def test_er_graph_fingerprint(self):
        g = erdos_renyi(60, 0.08, seed=3)
        decomposition, trace = linial_saks.decompose(g, k=3, seed=11)
        assert (decomposition.num_clusters, decomposition.num_colors, trace.phases) == (
            51,
            13,
            14,
        )


class TestGoldenMPX:
    def test_center_histogram(self):
        g = grid_graph(5, 5)
        result = mpx.partition(g, beta=0.5, seed=13)
        sizes = tuple(sorted((len(c) for c in result.decomposition.clusters), reverse=True))
        assert sizes == (14, 8, 3)
        assert result.cut_edges == 8
