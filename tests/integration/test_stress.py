"""Stress sweep: every invariant, every topology, many seeds.

A broad parametrised net over the full pipeline — slower than the unit
tests but the closest thing to "run it in anger".  Every case checks the
complete contract: partition, proper colouring, connectivity, diameter
(conditional on Lemma 1, exactly as stated), and exhaustion bookkeeping.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import linial_saks
from repro.core import elkin_neiman, staged
from repro.graphs import (
    balanced_tree,
    barbell_graph,
    caterpillar_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    random_regular,
    strong_diameter,
    torus_graph,
    watts_strogatz,
)

TOPOLOGIES = [
    ("cycle", cycle_graph(40)),
    ("grid", grid_graph(7, 8)),
    ("torus", torus_graph(6, 6)),
    ("tree", balanced_tree(3, 3)),
    ("hypercube", hypercube_graph(5)),
    ("caterpillar", caterpillar_graph(12, 2)),
    ("lollipop", lollipop_graph(8, 10)),
    ("barbell", barbell_graph(6, 4)),
    ("regular", random_regular(40, 4, seed=1)),
    ("smallworld", watts_strogatz(48, 4, 0.2, seed=2)),
    ("er", erdos_renyi(60, 0.06, seed=3)),
]


@pytest.mark.parametrize("name,graph", TOPOLOGIES, ids=[t[0] for t in TOPOLOGIES])
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestTheorem1Everywhere:
    def test_full_contract(self, name, graph, seed):
        k = 3
        decomposition, trace = elkin_neiman.decompose(graph, k=k, seed=seed)
        decomposition.validate()
        # Clusters always connected, regardless of Lemma-1 events.
        for cluster in decomposition.clusters:
            assert not math.isinf(strong_diameter(graph, cluster.vertices))
        # The 2k-2 bound, conditional on no truncation event (the paper's
        # exact statement).
        if not trace.had_truncation_event:
            assert decomposition.max_strong_diameter() <= 2 * k - 2
        # Bookkeeping is coherent.
        assert sum(p.block_size for p in trace.phases) == graph.num_vertices
        assert decomposition.num_colors <= trace.total_phases


@pytest.mark.parametrize("name,graph", TOPOLOGIES[:6], ids=[t[0] for t in TOPOLOGIES[:6]])
class TestVariantsAgreeOnInvariants:
    def test_staged_contract(self, name, graph):
        decomposition, trace = staged.decompose(graph, k=3, c=6.0, seed=9)
        decomposition.validate()
        if not trace.had_truncation_event:
            assert decomposition.max_strong_diameter() <= 4

    def test_ls_weak_contract(self, name, graph):
        decomposition, _ = linial_saks.decompose(graph, k=3, seed=9)
        decomposition.validate(max_diameter=4, strong=False)


class TestGapThresholdAblationUnit:
    """Unit-level version of experiment E16."""

    def test_threshold_one_is_default(self):
        from repro.core.carving import carve_block
        from repro.core.shifts import sample_phase_radii

        graph = erdos_renyi(50, 0.08, seed=4)
        active = set(graph.vertices())
        radii = sample_phase_radii(5, 1, active, 1.0)
        assert (
            carve_block(graph, active, radii).block
            == carve_block(graph, active, radii, gap_threshold=1.0).block
        )

    def test_smaller_threshold_joins_more(self):
        from repro.core.carving import carve_block
        from repro.core.shifts import sample_phase_radii

        graph = erdos_renyi(50, 0.08, seed=4)
        active = set(graph.vertices())
        radii = sample_phase_radii(5, 1, active, 1.0)
        loose = carve_block(graph, active, radii, gap_threshold=0.25).block
        paper = carve_block(graph, active, radii, gap_threshold=1.0).block
        tight = carve_block(graph, active, radii, gap_threshold=1.75).block
        assert tight <= paper <= loose

    def test_sub_unit_threshold_breaks_center_purity_somewhere(self):
        from repro.core.carving import carve_block
        from repro.core.shifts import sample_phase_radii
        from repro.graphs import connected_components

        broken = 0
        for seed in range(8):
            graph = erdos_renyi(60, 0.06, seed=seed)
            active = set(graph.vertices())
            radii = sample_phase_radii(seed, 1, active, 1.0)
            outcome = carve_block(graph, active, radii, gap_threshold=0.25)
            for component in connected_components(
                graph, active=outcome.block, universe=sorted(outcome.block)
            ):
                if len({outcome.center_of[v] for v in component}) > 1:
                    broken += 1
        assert broken > 0
