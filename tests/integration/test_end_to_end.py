"""End-to-end integration: the paper's full story on one graph.

Each test walks a complete pipeline — decompose, verify every guarantee,
run an application on top — the way a downstream user would.
"""

from __future__ import annotations

import math

import pytest

from repro import decompose, decompose_distributed
from repro.analysis import report
from repro.applications import run_coloring, run_mis
from repro.applications.verify import (
    is_maximal_independent_set,
    is_proper_vertex_coloring,
)
from repro.baselines import linial_saks, mpx
from repro.core import elkin_neiman, high_radius, staged, theorem1_bounds
from repro.graphs import erdos_renyi, grid_graph, random_connected, watts_strogatz


class TestFullPipelineEN:
    def test_decompose_verify_solve(self):
        graph = random_connected(70, 0.03, seed=42)
        k, c, seed = 3, 4.0, 42
        decomposition, trace = decompose(graph, k=k, c=c, seed=seed)

        # 1. Structural guarantees.
        decomposition.validate()
        bounds = theorem1_bounds(graph.num_vertices, k, c)
        if not trace.had_truncation_event:
            assert decomposition.max_strong_diameter() <= bounds.diameter
        if trace.exhausted_within_nominal:
            assert decomposition.num_colors <= math.ceil(bounds.colors)

        # 2. Distributed run agrees bit-for-bit.
        distributed = decompose_distributed(graph, k=k, c=c, seed=seed)
        assert (
            distributed.decomposition.cluster_index_map()
            == decomposition.cluster_index_map()
        )

        # 3. Applications on top.
        mis = run_mis(graph, decomposition)
        assert is_maximal_independent_set(graph, mis.independent_set)
        coloring = run_coloring(graph, decomposition)
        assert is_proper_vertex_coloring(
            graph, coloring.colors, max_colors=graph.max_degree() + 1
        )

        # 4. O(D·chi) round claim, exactly.
        chi = decomposition.num_colors
        diameter = int(decomposition.max_strong_diameter())
        assert mis.app.rounds == chi * (diameter + 2)

    def test_three_theorems_tradeoff_on_one_graph(self):
        """Small k -> small diameter, many colours; Theorem 3 inverts."""
        graph = erdos_renyi(150, 0.04, seed=7)
        d_small_k, _ = elkin_neiman.decompose(graph, k=2, seed=7)
        d_big_k, _ = elkin_neiman.decompose(graph, k=6, seed=7)
        d_lambda, t_lambda = high_radius.decompose(graph, lam=2, seed=7)

        assert d_small_k.max_strong_diameter() <= d_big_k.max_strong_diameter() + 4
        if t_lambda.exhausted_within_nominal:
            assert d_lambda.num_colors <= 2
        # Fewer colours costs diameter.
        assert d_lambda.num_colors <= d_small_k.num_colors

    def test_theorem2_vs_theorem1_colors_measured(self):
        graph = erdos_renyi(200, 0.03, seed=8)
        d1, _ = elkin_neiman.decompose(graph, k=2, c=6.0, seed=8)
        d2, _ = staged.decompose(graph, k=2, c=6.0, seed=8)
        # Theorem 2's staged rates should not be much worse, and its
        # nominal budget is provably smaller; both must be valid.
        d1.validate()
        d2.validate()


class TestStrongVsWeakStory:
    """The paper's headline: same (O(log n), O(log n)) but strong."""

    def test_en_strong_where_ls_weak(self):
        strong_wins = 0
        for seed in range(6):
            graph = erdos_renyi(80, 0.06, seed=seed)
            k = 4
            en, en_trace = elkin_neiman.decompose(graph, k=k, seed=seed)
            ls, _ = linial_saks.decompose(graph, k=k, seed=seed)

            en_q = report(en)
            ls_q = report(ls)
            # Both are valid decompositions with the same weak-diameter cap.
            assert en_q.is_valid_partition and ls_q.is_valid_partition
            assert ls_q.max_weak_diameter <= 2 * k - 2
            if not en_trace.had_truncation_event:
                assert en_q.max_strong_diameter <= 2 * k - 2
            # EN is *always* strongly bounded; LS sometimes is not.
            assert en_q.num_disconnected_clusters == 0
            if ls_q.num_disconnected_clusters > 0:
                strong_wins += 1
        assert strong_wins > 0  # the phenomenon actually occurs

    def test_mpx_is_single_shot_padded_not_decomposition(self):
        graph = watts_strogatz(100, 4, 0.1, seed=9)
        result = mpx.partition(graph, beta=0.4, seed=9)
        q = report(result.decomposition)
        assert q.num_disconnected_clusters == 0  # strong clusters
        # But the colour count is the cluster count: no chi guarantee.
        assert result.decomposition.num_colors == result.decomposition.num_clusters


class TestScaleSanity:
    def test_medium_graph_runs_fast_enough(self):
        graph = erdos_renyi(400, 0.01, seed=10)
        k = math.ceil(math.log(400))
        decomposition, trace = decompose(graph, k=k, seed=10)
        decomposition.validate()
        if not trace.had_truncation_event:
            assert decomposition.max_strong_diameter() <= 2 * k - 2

    def test_grid_distributed_full_run(self):
        graph = grid_graph(10, 10)
        result = decompose_distributed(graph, k=4, seed=11, word_budget=16)
        result.decomposition.validate()
        assert result.stats.max_words_per_edge_round <= 16
