"""Maximal matching via network decomposition (paper §1.1).

Uses the classical reduction *maximal matching(G) = MIS(L(G))*: build the
line graph, decompose it with the paper's algorithm, and run the MIS
application on it.  Every step of a line-graph protocol is simulable on
``G`` with constant overhead (a line vertex ``(u, v)`` lives at ``u`` and
``v``; line-graph neighbours share an endpoint, one hop away in ``G``),
so the round complexity carries over up to a constant factor — we report
the line-graph rounds directly.

A subtlety the reduction surfaces: matching needs a decomposition of
``L(G)``, whose size is ``Σ deg²``; for bounded-degree graphs this is
linear and the ``O(log²)`` bounds are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import elkin_neiman
from ..core.decomposition import NetworkDecomposition
from ..graphs.graph import Edge, Graph
from ..graphs.transforms import line_graph
from ..rng import DEFAULT_SEED
from .mis import MISResult, run_mis
from .scheduling import RelayMode

__all__ = ["MatchingResult", "run_matching", "matching_via_decomposition"]


@dataclass
class MatchingResult:
    """A maximal-matching run.

    ``matching`` holds host-graph edges; ``line_mis`` is the underlying
    MIS run on the line graph (for cost accounting).
    """

    matching: set[Edge]
    line_graph_vertices: int
    line_mis: MISResult


def run_matching(
    graph: Graph,
    k: float = 3,
    c: float = 4.0,
    relay_mode: RelayMode = "strong",
    seed: int = DEFAULT_SEED,
    line_decomposition: NetworkDecomposition | None = None,
) -> MatchingResult:
    """Compute a maximal matching of ``graph`` via MIS on its line graph.

    Parameters
    ----------
    graph:
        Host graph.
    k, c:
        Elkin–Neiman parameters for decomposing the line graph (ignored
        when ``line_decomposition`` is given).
    relay_mode, seed:
        Passed through to the MIS application.
    line_decomposition:
        Optional pre-computed decomposition of ``L(G)``.

    Returns
    -------
    MatchingResult
        ``matching`` is maximal: every edge of ``graph`` has a matched
        endpoint (verified by
        :func:`repro.applications.verify.is_maximal_matching` in tests).
    """
    lgraph, edges = line_graph(graph)
    if line_decomposition is None:
        line_decomposition, _trace = elkin_neiman.decompose(lgraph, k=k, c=c, seed=seed)
    mis_result = run_mis(lgraph, line_decomposition, relay_mode=relay_mode, seed=seed)
    matching = {edges[i] for i in mis_result.independent_set}
    return MatchingResult(
        matching=matching,
        line_graph_vertices=lgraph.num_vertices,
        line_mis=mis_result,
    )


def matching_via_decomposition(
    graph: Graph, line_decomposition: NetworkDecomposition
) -> set[Edge]:
    """Centralized reference: MIS-via-decomposition on the line graph."""
    from .mis import mis_via_decomposition

    lgraph, edges = line_graph(graph)
    if line_decomposition.graph != lgraph:
        raise ValueError("line_decomposition must decompose line_graph(graph)")
    chosen = mis_via_decomposition(lgraph, line_decomposition)
    return {edges[i] for i in chosen}
