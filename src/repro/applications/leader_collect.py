"""The paper's literal naive algorithm: collect / solve / disseminate.

§1.1 narrates the application recipe as: *"The naive algorithm collects
the entire cluster's topology into a central vertex, solves the problem
locally, and disseminates the solution to all vertices of the given
cluster."*  This module implements that exact protocol (the flooding
scheduler in :mod:`repro.applications.scheduling` is the symmetric
variant), as a second independent implementation to cross-validate:

Per colour phase, with diameter bound ``D`` (common knowledge):

* step 1 — boundary exchange: every vertex announces its decision state;
* steps 2..D+2 — the cluster leader floods a BFS-tree token through the
  cluster; members record parent and depth;
* steps D+3..2D+2 — convergecast: a member at depth ``δ`` sends its
  aggregated records to its parent at step ``D+3+(D−δ)``, so parents
  always hear all children first;
* step 2D+3 — the leader solves the cluster subproblem canonically;
* steps 2D+4..3D+3 — the solution is disseminated down the tree.

Total: ``χ·(3D+4)`` rounds — the same ``O(D·χ)`` as the paper claims,
with a ~3× constant against the flooding scheduler (measured in the E9
benchmark family).  Requires connected clusters (strong diameter): the
whole point of the paper.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..core.decomposition import NetworkDecomposition
from ..distributed.message import Message
from ..distributed.network import SyncNetwork
from ..distributed.node import Context, NodeAlgorithm
from ..errors import DecompositionError, ParameterError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from .scheduling import AppRunResult, ClusterTask

__all__ = ["LeaderCollectNode", "run_leader_collect_app"]

_HELLO = "hello"
_STATE = "state"
_TREE = "tree"
_UP = "up"
_DOWN = "down"


class LeaderCollectNode(NodeAlgorithm):
    """One vertex of the collect-at-leader protocol."""

    def __init__(
        self,
        vertex: int,
        cluster_index: int,
        color: int,
        is_leader: bool,
        task: ClusterTask,
        color_order: Sequence[int],
        diameter: int,
    ) -> None:
        if diameter < 0:
            raise ParameterError(f"diameter must be >= 0, got {diameter}")
        self.vertex = vertex
        self.cluster_index = cluster_index
        self.color = color
        self.is_leader = is_leader
        self.task = task
        self.color_order = list(color_order)
        self.diameter = diameter
        self.phase_length = 3 * diameter + 4
        self.decision: Any = None
        self.decided = False
        self.neighbor_cluster: dict[int, int] = {}
        self.cluster_neighbors: tuple[int, ...] = ()
        # Per-phase protocol state.
        self._neighbor_states: dict[int, Any] = {}
        self._parent: int | None = None
        self._depth: int | None = None
        self._records: dict[int, tuple[tuple[int, ...], Any]] = {}
        self._sent_up = False

    # ------------------------------------------------------------------
    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_HELLO, self.cluster_index, self.color))

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        phase_index = (ctx.round_number - 1) // self.phase_length
        step = (ctx.round_number - 1) % self.phase_length + 1
        if phase_index >= len(self.color_order):
            return
        mine = self.color == self.color_order[phase_index] and not self.decided
        tree_arrivals: list[tuple[int, int]] = []
        down_decisions: dict[int, Any] | None = None
        for message in inbox:
            payload = message.payload
            tag = payload[0]
            if tag == _HELLO:
                self.neighbor_cluster[message.sender] = payload[1]
            elif tag == _STATE:
                self._neighbor_states[message.sender] = payload[1]
            elif tag == _TREE and mine and payload[1] == self.cluster_index:
                tree_arrivals.append((message.sender, payload[2]))
            elif tag == _UP and mine and payload[1] == self.cluster_index:
                for vertex, nbrs, summary in payload[2]:
                    self._records[vertex] = (tuple(nbrs), summary)
            elif tag == _DOWN and mine and payload[1] == self.cluster_index:
                if message.sender == self._parent:
                    down_decisions = dict(payload[2])

        if step == 1:
            self._begin_phase()
            ctx.broadcast((_STATE, self.task.boundary_payload(self.decision)))
            return
        if not mine:
            return
        if step == 2:
            if not self.cluster_neighbors and self.neighbor_cluster:
                self.cluster_neighbors = tuple(
                    sorted(
                        w
                        for w, cluster in self.neighbor_cluster.items()
                        if cluster == self.cluster_index
                    )
                )
            summary = self.task.boundary_summary(self._neighbor_states)
            self._records[self.vertex] = (self.cluster_neighbors, summary)
            if self.is_leader:
                self._parent = -1
                self._depth = 0
                for neighbor in self.cluster_neighbors:
                    ctx.send(neighbor, (_TREE, self.cluster_index, 1))
            return
        if step <= self.diameter + 2:
            if self._parent is None and tree_arrivals:
                sender, depth = min(tree_arrivals, key=lambda pair: pair[0])
                self._parent = sender
                self._depth = depth
                for neighbor in self.cluster_neighbors:
                    if neighbor != sender:
                        ctx.send(neighbor, (_TREE, self.cluster_index, depth + 1))
        # Convergecast: depth delta sends at step D+3+(D-delta).
        if (
            not self._sent_up
            and not self.is_leader
            and self._parent is not None
            and self._depth is not None
            and step == self.diameter + 3 + (self.diameter - self._depth)
        ):
            self._sent_up = True
            bundle = tuple(
                (vertex, record[0], record[1])
                for vertex, record in sorted(self._records.items())
            )
            ctx.send(self._parent, (_UP, self.cluster_index, bundle))
        if self.is_leader and step == 2 * self.diameter + 3:
            decisions = self.task.solve(self._records)
            self.decision = decisions.get(self.vertex)
            self.decided = True
            payload = (_DOWN, self.cluster_index, tuple(sorted(decisions.items())))
            for neighbor in self.cluster_neighbors:
                ctx.send(neighbor, payload)
        if down_decisions is not None and not self.decided:
            self.decision = down_decisions.get(self.vertex)
            self.decided = True
            payload = (_DOWN, self.cluster_index, tuple(sorted(down_decisions.items())))
            for neighbor in self.cluster_neighbors:
                if neighbor != self._parent:
                    ctx.send(neighbor, payload)

    # ------------------------------------------------------------------
    def _begin_phase(self) -> None:
        self._neighbor_states = {}
        self._parent = None
        self._depth = None
        self._records = {}
        self._sent_up = False


def run_leader_collect_app(
    graph: Graph,
    decomposition: NetworkDecomposition,
    task_factory,
    seed: int = DEFAULT_SEED,
    diameter_override: int | None = None,
) -> AppRunResult:
    """Run a :class:`ClusterTask` with the paper's collect-at-leader recipe.

    Same contract as :func:`repro.applications.scheduling.run_scheduled_app`
    but leader-based and strong-diameter-only; runs exactly
    ``χ·(3D + 4)`` rounds.
    """
    if diameter_override is not None:
        diameter = float(diameter_override)
    else:
        diameter = decomposition.max_strong_diameter()
    if math.isinf(diameter):
        raise DecompositionError(
            "leader-collect needs connected clusters (strong diameter)"
        )
    diameter_int = int(diameter)
    color_order = decomposition.colors
    algorithms = []
    for v in graph.vertices():
        cluster = decomposition.cluster_of(v)
        leader = (
            cluster.center
            if cluster.center is not None and cluster.center in cluster.vertices
            else min(cluster.vertices)
        )
        algorithms.append(
            LeaderCollectNode(
                vertex=v,
                cluster_index=cluster.index,
                color=cluster.color,
                is_leader=(v == leader),
                task=task_factory(),
                color_order=color_order,
                diameter=diameter_int,
            )
        )
    network = SyncNetwork(graph, algorithms, seed=seed)
    network.start()
    phase_length = 3 * diameter_int + 4
    total_rounds = len(color_order) * phase_length
    network.run_rounds(total_rounds)
    decisions: dict[int, Any] = {}
    for v in graph.vertices():
        algorithm = network.algorithm(v)
        assert isinstance(algorithm, LeaderCollectNode)
        if not algorithm.decided:
            raise DecompositionError(f"vertex {v} never decided (protocol bug?)")
        decisions[v] = algorithm.decision
    return AppRunResult(
        decisions=decisions,
        rounds=total_rounds,
        stats=network.stats,
        phase_length=phase_length,
        num_color_phases=len(color_order),
        diameter_used=diameter_int,
        relay_messages_nonmember=0,
    )
