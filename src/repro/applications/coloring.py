"""(Δ+1)-vertex-colouring via network decomposition (paper §1.1).

Colour class by colour class, members learn the colours of their decided
neighbours (the *forbidden* palette), flood the cluster, and greedily
first-fit colour the cluster canonically.  A vertex of degree ``d`` sees
at most ``d`` forbidden colours, so palettes never exceed ``Δ + 1``.

Decision values are colour integers in ``[0, Δ]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.decomposition import NetworkDecomposition
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from .local_solvers import solve_coloring
from .scheduling import AppRunResult, ClusterTask, RelayMode, run_scheduled_app

__all__ = ["ColoringTask", "ColoringResult", "run_coloring", "coloring_via_decomposition"]


class ColoringTask(ClusterTask):
    """(Δ+1)-colouring plugged into the colour-class scheduler."""

    def boundary_payload(self, decision: Any) -> Any:
        # The vertex's colour, or None while undecided; 1 word.
        return decision

    def boundary_summary(self, neighbor_states: Mapping[int, Any]) -> Any:
        # Colours already taken by decided neighbours, as a sorted tuple
        # (O(Δ) words — still LOCAL-friendly; the round count is what the
        # paper's O(D·χ) claim is about).
        return tuple(sorted({s for s in neighbor_states.values() if s is not None}))

    def solve(
        self, records: Mapping[int, tuple[tuple[int, ...], Any]]
    ) -> dict[int, Any]:
        members = sorted(records)
        adjacency = {
            v: [w for w in records[v][0] if w in records] for v in members
        }
        forbidden = {v: set(records[v][1]) for v in members}
        return solve_coloring(members, adjacency, forbidden)


@dataclass
class ColoringResult:
    """A colouring run: the colour assignment and the scheduling costs."""

    colors: dict[int, int]
    app: AppRunResult

    @property
    def num_colors_used(self) -> int:
        """Number of distinct colours in the assignment."""
        return len(set(self.colors.values()))


def run_coloring(
    graph: Graph,
    decomposition: NetworkDecomposition,
    relay_mode: RelayMode = "strong",
    seed: int = DEFAULT_SEED,
    diameter_override: int | None = None,
) -> ColoringResult:
    """Distributed (Δ+1)-colouring of ``graph`` using ``decomposition``."""
    app = run_scheduled_app(
        graph,
        decomposition,
        ColoringTask,
        relay_mode=relay_mode,
        seed=seed,
        diameter_override=diameter_override,
    )
    return ColoringResult(colors=dict(app.decisions), app=app)


def coloring_via_decomposition(
    graph: Graph, decomposition: NetworkDecomposition
) -> dict[int, int]:
    """Centralized reference of the identical colour-ordered computation."""
    assigned: dict[int, int] = {}
    for color in decomposition.colors:
        for cluster in decomposition.clusters:
            if cluster.color != color:
                continue
            members = sorted(cluster.vertices)
            adjacency = {
                v: [w for w in graph.neighbors(v) if w in cluster.vertices]
                for v in members
            }
            forbidden = {
                v: {
                    assigned[w]
                    for w in graph.neighbors(v)
                    if w in assigned and w not in cluster.vertices
                }
                for v in members
            }
            assigned.update(solve_coloring(members, adjacency, forbidden))
    return assigned
