"""Applications of network decomposition (the paper's §1.1 motivation).

Given a ``(D, χ)`` decomposition, the classic symmetry-breaking problems
are solved colour class by colour class in ``O(D·χ)`` rounds:

* :mod:`~repro.applications.scheduling` — the generic colour-class
  scheduler (flood each cluster, solve canonically);
* :mod:`~repro.applications.mis` — maximal independent set;
* :mod:`~repro.applications.coloring` — (Δ+1)-vertex-colouring;
* :mod:`~repro.applications.matching` — maximal matching via MIS on the
  line graph;
* :mod:`~repro.applications.verify` — independent output verifiers;
* :mod:`~repro.applications.local_solvers` — the canonical per-cluster
  solvers shared by distributed and centralized paths.
"""

from .coloring import (
    ColoringResult,
    ColoringTask,
    coloring_via_decomposition,
    run_coloring,
)
from .covers import NeighborhoodCover, build_cover
from .leader_collect import LeaderCollectNode, run_leader_collect_app
from .local_solvers import solve_coloring, solve_matching, solve_mis
from .matching import MatchingResult, matching_via_decomposition, run_matching
from .mis import MISResult, MISTask, mis_via_decomposition, run_mis
from .scheduling import (
    AppRunResult,
    ClusterTask,
    ScheduledAppNode,
    run_scheduled_app,
)
from .spanner import SpannerResult, build_spanner, max_edge_stretch
from .verify import (
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_vertex_coloring,
)

__all__ = [
    "AppRunResult",
    "ClusterTask",
    "ColoringResult",
    "ColoringTask",
    "LeaderCollectNode",
    "MISResult",
    "MISTask",
    "MatchingResult",
    "NeighborhoodCover",
    "ScheduledAppNode",
    "SpannerResult",
    "build_cover",
    "build_spanner",
    "max_edge_stretch",
    "run_leader_collect_app",
    "coloring_via_decomposition",
    "is_independent_set",
    "is_matching",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "is_proper_vertex_coloring",
    "matching_via_decomposition",
    "mis_via_decomposition",
    "run_coloring",
    "run_matching",
    "run_mis",
    "run_scheduled_app",
    "solve_coloring",
    "solve_matching",
    "solve_mis",
]
