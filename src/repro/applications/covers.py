"""Neighborhood covers from network decompositions (paper §1.1).

The paper notes that network decompositions are *"closely related to
neighborhood covers, which are used extensively for routing and
synchronization"*, citing Awerbuch–Berger–Cowen–Peleg (PODC 1992) for the
relationship.  This module implements the classical direction of that
relationship:

Given a radius ``W``, decompose the power graph ``G^{2W+1}`` with the
paper's algorithm into a ``(D, χ)`` decomposition ``P``, and return the
collection

.. math::  \\mathcal{C} = \\{\\, N_W[C] : C \\in P \\,\\}

where ``N_W[C]`` is the set of vertices within ``G``-distance ``W`` of
``C``.  The result is a **W-neighborhood cover**:

* **covering** — for every vertex ``v``, the entire ball ``B_G(v, W)``
  is contained in the cover cluster grown from ``v``'s own cluster;
* **low overlap** — each vertex belongs to at most ``χ`` cover clusters:
  two same-coloured clusters are non-adjacent in ``G^{2W+1}``, i.e. at
  ``G``-distance ``≥ 2W + 2``, so no vertex is within ``W`` of both;
* **low diameter** — each cover cluster has weak diameter at most
  ``(2W + 1)·D + 2W`` (cluster diameter measured in ``G^{2W+1}``
  re-expanded to ``G``, plus the two ``W``-fringes).

All three properties are verified exactly by the test suite.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass

from ..core import elkin_neiman
from ..core.decomposition import NetworkDecomposition
from ..errors import ParameterError
from ..graphs.graph import Graph
from ..graphs.metrics import weak_diameter
from ..graphs.transforms import power_graph
from ..graphs.traversal import bfs_distances_bounded, bfs_levels
from ..rng import DEFAULT_SEED

__all__ = ["NeighborhoodCover", "build_cover"]


@dataclass
class NeighborhoodCover:
    """A W-neighborhood cover and its measured parameters.

    ``clusters[i]`` is a vertex set; ``colors[i]`` its colour inherited
    from the power-graph decomposition.  ``overlap_bound`` is the χ of
    that decomposition.
    """

    radius: int
    clusters: list[frozenset[int]]
    colors: list[int]
    overlap_bound: int
    diameter_bound: float
    base: NetworkDecomposition

    @property
    def num_clusters(self) -> int:
        """Number of cover clusters."""
        return len(self.clusters)

    def max_overlap(self, graph: Graph) -> int:
        """Measured maximum number of cover clusters containing one vertex."""
        count = {v: 0 for v in graph.vertices()}
        for cluster in self.clusters:
            for v in cluster:
                count[v] += 1
        return max(count.values(), default=0)

    def covers_all_balls(self, graph: Graph) -> bool:
        """Exact check of the covering property (every W-ball inside a cluster)."""
        for v in graph.vertices():
            ball = set(bfs_distances_bounded(graph, v, self.radius))
            if not any(ball <= cluster for cluster in self.clusters):
                return False
        return True

    def max_weak_diameter(self, graph: Graph) -> float:
        """Measured maximum weak diameter over cover clusters."""
        return max(
            (weak_diameter(graph, cluster) for cluster in self.clusters),
            default=0.0,
        )

    def membership_columns(self) -> tuple[array, array]:
        """Vertex→cluster membership as flat CSR columns.

        Returns ``(indptr, cluster_ids)`` — both ``array('l')`` — where
        ``cluster_ids[indptr[v]:indptr[v+1]]`` lists, ascending, the
        indices into :attr:`clusters` of every cover cluster containing
        ``v``.  This is the columnar form consumed by batched engines
        (the same vertex-major layout as the oracle's
        :class:`~repro.oracle.tables.ScaleTables`): row lengths are the
        per-vertex overlap, so ``max(row length) ≤ overlap_bound``
        whenever the χ bound holds.
        """
        n = self.base.graph.num_vertices
        rows: list[list[int]] = [[] for _ in range(n)]
        for index, cluster in enumerate(self.clusters):
            for v in cluster:
                rows[v].append(index)
        word = array("l").itemsize
        indptr = array("l", bytes(word * (n + 1)))
        cluster_ids = array("l", bytes(word * sum(len(row) for row in rows)))
        position = 0
        for v in range(n):
            for index in rows[v]:
                cluster_ids[position] = index
                position += 1
            indptr[v + 1] = position
        return indptr, cluster_ids


def build_cover(
    graph: Graph,
    radius: int,
    k: float = 3,
    c: float = 4.0,
    seed: int = DEFAULT_SEED,
) -> NeighborhoodCover:
    """Build a ``radius``-neighborhood cover of ``graph``.

    Parameters
    ----------
    graph:
        Host graph.
    radius:
        Cover radius ``W ≥ 0``; ``W = 0`` degenerates to the decomposition
        itself (clusters cover the 0-balls, overlap 1 per colour... i.e. 1).
    k, c, seed:
        Elkin–Neiman parameters for decomposing ``G^{2W+1}``.

    Returns
    -------
    NeighborhoodCover
        With ``overlap_bound = χ`` of the power-graph decomposition and
        ``diameter_bound = (2W+1)·D + 2W``.
    """
    if radius < 0:
        raise ParameterError(f"radius must be >= 0, got {radius}")
    power = power_graph(graph, 2 * radius + 1) if radius > 0 else graph
    decomposition, _ = elkin_neiman.decompose(power, k=k, c=c, seed=seed)
    clusters: list[frozenset[int]] = []
    colors: list[int] = []
    for cluster in decomposition.clusters:
        # One multi-source bounded BFS grows the whole fringe N_W[C].
        levels = bfs_levels(graph, cluster.vertices, radius=radius)
        clusters.append(frozenset(v for level in levels for v in level))
        colors.append(cluster.color)
    strong = decomposition.max_strong_diameter()
    diameter_bound = (2 * radius + 1) * strong + 2 * radius
    return NeighborhoodCover(
        radius=radius,
        clusters=clusters,
        colors=colors,
        overlap_bound=decomposition.num_colors,
        diameter_bound=diameter_bound,
        base=decomposition,
    )
