"""Independent verifiers for the applications' outputs.

Each verifier checks its property from first principles against the host
graph, with no reference to how the solution was produced — the test
suite runs them on every application result.
"""

from __future__ import annotations

from typing import Collection, Iterable, Mapping

from ..graphs.graph import Edge, Graph

__all__ = [
    "is_independent_set",
    "is_maximal_independent_set",
    "is_proper_vertex_coloring",
    "is_matching",
    "is_maximal_matching",
]


def is_independent_set(graph: Graph, vertices: Collection[int]) -> bool:
    """No two selected vertices are adjacent."""
    selected = set(vertices)
    return not any(u in selected and v in selected for u, v in graph.edges())


def is_maximal_independent_set(graph: Graph, vertices: Collection[int]) -> bool:
    """Independent, and every unselected vertex has a selected neighbour."""
    selected = set(vertices)
    if not is_independent_set(graph, selected):
        return False
    for v in graph.vertices():
        if v in selected:
            continue
        if not any(w in selected for w in graph.neighbors(v)):
            return False
    return True


def is_proper_vertex_coloring(
    graph: Graph, colors: Mapping[int, int], max_colors: int | None = None
) -> bool:
    """Every vertex coloured, no monochromatic edge, palette optionally bounded."""
    for v in graph.vertices():
        if v not in colors:
            return False
    if any(colors[u] == colors[v] for u, v in graph.edges()):
        return False
    if max_colors is not None and len(set(colors.values())) > max_colors:
        return False
    return True


def is_matching(graph: Graph, edges: Iterable[Edge]) -> bool:
    """All pairs are real edges and no vertex is matched twice."""
    used: set[int] = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return True


def is_maximal_matching(graph: Graph, edges: Iterable[Edge]) -> bool:
    """A matching that cannot be extended: every edge touches a matched vertex."""
    edge_list = list(edges)
    if not is_matching(graph, edge_list):
        return False
    matched = {u for u, _ in edge_list} | {v for _, v in edge_list}
    return all(u in matched or v in matched for u, v in graph.edges())
