"""Maximal independent set via network decomposition (paper §1.1).

Given a ``(D, χ)`` decomposition, MIS is solved colour class by colour
class in ``O(D·χ)`` rounds: members of the current class learn which of
their neighbours already entered the set (those members are *blocked*),
flood their cluster, and run the canonical greedy MIS locally.

The decision values are booleans: ``True`` = in the independent set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.decomposition import NetworkDecomposition
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from .local_solvers import solve_mis
from .scheduling import AppRunResult, ClusterTask, RelayMode, run_scheduled_app

__all__ = ["MISTask", "MISResult", "run_mis", "mis_via_decomposition"]


class MISTask(ClusterTask):
    """MIS plugged into the colour-class scheduler."""

    def boundary_payload(self, decision: Any) -> Any:
        # True / False / None (undecided); 1 word.
        return decision

    def boundary_summary(self, neighbor_states: Mapping[int, Any]) -> Any:
        # Blocked iff some decided neighbour is already in the set.
        return any(state is True for state in neighbor_states.values())

    def solve(
        self, records: Mapping[int, tuple[tuple[int, ...], Any]]
    ) -> dict[int, Any]:
        members = sorted(records)
        adjacency = {
            v: [w for w in records[v][0] if w in records] for v in members
        }
        blocked = {v for v in members if records[v][1]}
        chosen = solve_mis(members, adjacency, blocked)
        return {v: (v in chosen) for v in members}


@dataclass
class MISResult:
    """An MIS run: the set and the scheduling costs."""

    independent_set: set[int]
    app: AppRunResult


def run_mis(
    graph: Graph,
    decomposition: NetworkDecomposition,
    relay_mode: RelayMode = "strong",
    seed: int = DEFAULT_SEED,
    diameter_override: int | None = None,
) -> MISResult:
    """Compute an MIS of ``graph`` distributedly using ``decomposition``.

    Takes exactly ``χ·(D + 2)`` rounds (see
    :func:`repro.applications.scheduling.run_scheduled_app`).
    """
    app = run_scheduled_app(
        graph,
        decomposition,
        MISTask,
        relay_mode=relay_mode,
        seed=seed,
        diameter_override=diameter_override,
    )
    chosen = {v for v, decision in app.decisions.items() if decision is True}
    return MISResult(independent_set=chosen, app=app)


def mis_via_decomposition(
    graph: Graph, decomposition: NetworkDecomposition
) -> set[int]:
    """Centralized reference of the same colour-ordered computation.

    Processes colour classes in ascending colour order and clusters in
    index order, applying the identical canonical greedy — the simulated
    protocol must produce exactly this set (used for cross-validation).
    """
    chosen: set[int] = set()
    for color in decomposition.colors:
        for cluster in decomposition.clusters:
            if cluster.color != color:
                continue
            members = sorted(cluster.vertices)
            adjacency = {
                v: [w for w in graph.neighbors(v) if w in cluster.vertices]
                for v in members
            }
            blocked = {
                v
                for v in members
                if any(w in chosen for w in graph.neighbors(v))
            }
            chosen |= solve_mis(members, adjacency, blocked)
    return chosen
