"""Colour-class scheduling: solving symmetry-breaking via a decomposition.

This is the paper's §1.1 recipe, executed as a real protocol on the
simulator: given a ``(D, χ)`` network decomposition, the clusters of colour
class 1 solve their local subproblems in parallel, then colour class 2
extends the solution, and so on.  Clusters within a colour class are
non-adjacent, so they never conflict, and each class costs ``O(D)``
rounds — ``O(D·χ)`` in total.

Instead of the paper's collect-at-a-leader-and-disseminate narration we
use the standard symmetric variant: every member floods its local record
through the cluster for ``D`` rounds, after which all members know the
entire cluster (topology + boundary constraints) and run the *same
canonical deterministic solver* — so they reach identical decisions with
no dissemination step.

Each colour phase takes ``T = D + 2`` rounds:

* step 1 — every vertex tells its neighbours its current decision state;
* step 2 — members of the phase's clusters assemble their record (their
  member-neighbour list plus a boundary summary distilled from the
  neighbour states) and start flooding it;
* steps 3..T−1 — records are relayed (a record from a member at cluster
  distance ``d`` arrives at step ``d + 2 ≤ D + 2``);
* end of step T — members solve and fix their decisions.

Relay modes make the strong-vs-weak distinction concrete (experiment E10):

* ``strong`` — records travel only over intra-cluster edges.  Requires
  every cluster to be connected with strong diameter ≤ D; the relay load
  on non-members is zero by construction.
* ``weak`` — records are relayed by *every* vertex (members of other
  clusters included) with the phase length sized by the weak diameter.
  This is the only way to run disconnected (weak-diameter) clusters, and
  its non-member relay load is the overhead that strong diameter saves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Literal, Mapping, Sequence

from ..core.decomposition import NetworkDecomposition
from ..distributed.message import Message
from ..distributed.metrics import NetworkStats
from ..distributed.network import SyncNetwork
from ..distributed.node import Context, NodeAlgorithm
from ..errors import DecompositionError, ParameterError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED

__all__ = ["ClusterTask", "ScheduledAppNode", "AppRunResult", "run_scheduled_app"]

RelayMode = Literal["strong", "weak"]

_HELLO = "hello"
_STATE = "state"
_ITEM = "item"


class ClusterTask:
    """Strategy object defining one application over the scheduler.

    Subclasses (MIS, colouring, ...) define what a vertex's *decision*
    looks like, what it tells its neighbours, how boundary information is
    summarised into the flooded record, and how a cluster's records are
    solved canonically.
    """

    def boundary_payload(self, decision: Any) -> Any:
        """What a vertex announces to neighbours in the state round."""
        return decision

    def boundary_summary(self, neighbor_states: Mapping[int, Any]) -> Any:
        """Distil received neighbour states into this vertex's record."""
        raise NotImplementedError

    def solve(
        self,
        records: Mapping[int, tuple[tuple[int, ...], Any]],
    ) -> dict[int, Any]:
        """Canonical solver: ``vertex -> (member neighbours, summary)`` to decisions.

        Must be a deterministic function of its argument — every member of
        the cluster evaluates it on identical input.
        """
        raise NotImplementedError


class ScheduledAppNode(NodeAlgorithm):
    """One vertex of the colour-class scheduled protocol."""

    def __init__(
        self,
        vertex: int,
        cluster_index: int,
        color: int,
        task: ClusterTask,
        color_order: Sequence[int],
        phase_length: int,
        relay_mode: RelayMode,
    ) -> None:
        if phase_length < 2:
            raise ParameterError(f"phase_length must be >= 2, got {phase_length}")
        self.vertex = vertex
        self.cluster_index = cluster_index
        self.color = color
        self.task = task
        self.color_order = list(color_order)
        self.phase_length = phase_length
        self.relay_mode: RelayMode = relay_mode
        self.decision: Any = None
        self.decided = False
        # Learned in the hello exchange.
        self.neighbor_cluster: dict[int, int] = {}
        self.cluster_neighbors: tuple[int, ...] = ()
        # Per-phase state.
        self._neighbor_states: dict[int, Any] = {}
        self._records: dict[int, tuple[tuple[int, ...], Any]] = {}
        self._seen_items: set[tuple[int, int]] = set()
        self.items_relayed_for_others = 0

    # ------------------------------------------------------------------
    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_HELLO, self.cluster_index, self.color))

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        phase_index = (ctx.round_number - 1) // self.phase_length
        step = (ctx.round_number - 1) % self.phase_length + 1
        if phase_index >= len(self.color_order):
            return
        current_color = self.color_order[phase_index]
        mine = self.color == current_color
        new_items: list[tuple[int, int, tuple[int, ...], Any]] = []
        for message in inbox:
            payload = message.payload
            tag = payload[0]
            if tag == _HELLO:
                self.neighbor_cluster[message.sender] = payload[1]
            elif tag == _STATE:
                self._neighbor_states[message.sender] = payload[1]
            elif tag == _ITEM:
                _t, cluster_index, origin, nbrs, summary = payload
                key = (cluster_index, origin)
                if key in self._seen_items:
                    continue
                self._seen_items.add(key)
                if mine and cluster_index == self.cluster_index:
                    self._records[origin] = (tuple(nbrs), summary)
                new_items.append((cluster_index, origin, tuple(nbrs), summary))
        if step == 1:
            self._begin_phase()
            ctx.broadcast((_STATE, self.task.boundary_payload(self.decision)))
        elif step == 2:
            if self.cluster_neighbors == () and self.neighbor_cluster:
                self.cluster_neighbors = tuple(
                    sorted(
                        w
                        for w, cluster in self.neighbor_cluster.items()
                        if cluster == self.cluster_index
                    )
                )
            if mine and not self.decided:
                summary = self.task.boundary_summary(self._neighbor_states)
                record = (self.cluster_neighbors, summary)
                self._records[self.vertex] = record
                self._seen_items.add((self.cluster_index, self.vertex))
                self._send_item(
                    ctx, self.cluster_index, self.vertex, record[0], record[1]
                )
        elif step < self.phase_length:
            for cluster_index, origin, nbrs, summary in new_items:
                self._send_item(ctx, cluster_index, origin, nbrs, summary)
        if step == self.phase_length and mine and not self.decided:
            decisions = self.task.solve(self._records)
            self.decision = decisions.get(self.vertex)
            self.decided = True

    # ------------------------------------------------------------------
    def _begin_phase(self) -> None:
        self._neighbor_states = {}
        self._records = {}
        self._seen_items = set()

    def _send_item(
        self,
        ctx: Context,
        cluster_index: int,
        origin: int,
        nbrs: tuple[int, ...],
        summary: Any,
    ) -> None:
        payload = (_ITEM, cluster_index, origin, nbrs, summary)
        if self.relay_mode == "strong":
            if cluster_index != self.cluster_index:
                return
            targets: Sequence[int] = self.cluster_neighbors
        else:
            targets = ctx.neighbors
        if cluster_index != self.cluster_index:
            self.items_relayed_for_others += len(targets)
        for neighbor in targets:
            ctx.send(neighbor, payload)


@dataclass
class AppRunResult:
    """Outcome of one scheduled-application run.

    ``relay_messages_nonmember`` counts item messages forwarded by
    vertices on behalf of clusters they do not belong to — zero in strong
    mode, the weak-diameter overhead otherwise.
    """

    decisions: dict[int, Any]
    rounds: int
    stats: NetworkStats
    phase_length: int
    num_color_phases: int
    diameter_used: int
    relay_messages_nonmember: int


def run_scheduled_app(
    graph: Graph,
    decomposition: NetworkDecomposition,
    task_factory,
    relay_mode: RelayMode = "strong",
    seed: int = DEFAULT_SEED,
    diameter_override: int | None = None,
) -> AppRunResult:
    """Run a :class:`ClusterTask` application over ``decomposition``.

    Parameters
    ----------
    graph:
        Host graph (also the communication network).
    decomposition:
        A valid network decomposition of ``graph``.
    task_factory:
        Zero-argument callable returning a fresh :class:`ClusterTask` per
        node (tasks are stateless; sharing would also be safe).
    relay_mode:
        ``"strong"`` floods inside clusters only (requires connected
        clusters); ``"weak"`` floods through everyone, sized by the weak
        diameter — required for e.g. Linial–Saks decompositions.
    diameter_override:
        Phase-sizing diameter ``D`` (e.g. the theorem bound ``2k − 2``).
        Defaults to the decomposition's measured max strong (resp. weak)
        diameter.

    Returns
    -------
    AppRunResult
        Runs exactly ``χ·(D + 2)`` rounds — the paper's ``O(D·χ)``.
    """
    if relay_mode not in ("strong", "weak"):
        raise ParameterError(f"relay_mode must be 'strong' or 'weak', got {relay_mode!r}")
    if diameter_override is not None:
        diameter = float(diameter_override)
    elif relay_mode == "strong":
        diameter = decomposition.max_strong_diameter()
    else:
        diameter = decomposition.max_weak_diameter()
    if math.isinf(diameter):
        raise DecompositionError(
            "decomposition has a cluster of infinite diameter for relay mode "
            f"{relay_mode!r} (disconnected cluster in strong mode?)"
        )
    phase_length = int(diameter) + 2
    color_order = decomposition.colors
    algorithms = []
    for v in graph.vertices():
        cluster = decomposition.cluster_of(v)
        algorithms.append(
            ScheduledAppNode(
                vertex=v,
                cluster_index=cluster.index,
                color=cluster.color,
                task=task_factory(),
                color_order=color_order,
                phase_length=phase_length,
                relay_mode=relay_mode,
            )
        )
    network = SyncNetwork(graph, algorithms, seed=seed)
    network.start()
    total_rounds = len(color_order) * phase_length
    network.run_rounds(total_rounds)
    decisions: dict[int, Any] = {}
    relayed = 0
    for v in graph.vertices():
        algorithm = network.algorithm(v)
        assert isinstance(algorithm, ScheduledAppNode)
        if not algorithm.decided:
            raise DecompositionError(
                f"vertex {v} never decided; the decomposition is inconsistent"
            )
        decisions[v] = algorithm.decision
        relayed += algorithm.items_relayed_for_others
    return AppRunResult(
        decisions=decisions,
        rounds=total_rounds,
        stats=network.stats,
        phase_length=phase_length,
        num_color_phases=len(color_order),
        diameter_used=int(diameter),
        relay_messages_nonmember=relayed,
    )
