"""Canonical per-cluster solvers.

The naive per-cluster algorithm of the paper's §1.1 collects the cluster
topology at one vertex, solves the subproblem locally and disseminates the
answer.  Our scheduling framework uses the symmetric variant: *every*
member collects the same information and runs the same **canonical,
deterministic** solver, so all members compute identical answers and no
dissemination step is needed.

These solvers are that canonical computation.  They operate on plain data
(member lists, adjacency dicts, boundary constraints) so they can run both
inside simulated nodes and in centralized reference implementations.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["solve_mis", "solve_coloring", "solve_matching"]


def solve_mis(
    members: Iterable[int],
    adjacency: Mapping[int, Iterable[int]],
    blocked: Iterable[int] = (),
) -> set[int]:
    """Greedy MIS over ``members`` in ascending id order.

    ``blocked`` members (those with a neighbour already chosen into the
    global MIS during an earlier colour phase) are never selected; the
    remaining members are scanned in id order, selecting every vertex with
    no previously selected neighbour.

    Returns the selected subset.  The result is maximal *within the
    cluster given the constraints*: every unselected, unblocked member has
    a selected neighbour.
    """
    blocked_set = set(blocked)
    chosen: set[int] = set()
    for v in sorted(members):
        if v in blocked_set:
            continue
        if any(w in chosen for w in adjacency.get(v, ())):
            continue
        chosen.add(v)
    return chosen


def solve_coloring(
    members: Iterable[int],
    adjacency: Mapping[int, Iterable[int]],
    forbidden: Mapping[int, Iterable[int]] | None = None,
) -> dict[int, int]:
    """Greedy first-fit colouring of ``members`` in ascending id order.

    ``forbidden[v]`` lists colours already taken by ``v``'s decided
    neighbours outside the cluster.  Every member receives the smallest
    colour not used by a decided or earlier-in-order neighbour; with a
    palette of ``Δ + 1`` colours this always succeeds (a vertex of degree
    ``d`` sees at most ``d`` conflicts).
    """
    forbidden = forbidden or {}
    assigned: dict[int, int] = {}
    for v in sorted(members):
        taken = set(forbidden.get(v, ()))
        for w in adjacency.get(v, ()):
            if w in assigned:
                taken.add(assigned[w])
        color = 0
        while color in taken:
            color += 1
        assigned[v] = color
    return assigned


def solve_matching(
    members: Iterable[int],
    adjacency: Mapping[int, Iterable[int]],
    unavailable: Iterable[int] = (),
) -> set[tuple[int, int]]:
    """Greedy maximal matching on the induced subgraph of ``members``.

    ``unavailable`` members (already matched in earlier phases) are
    skipped.  Edges are scanned in lexicographic order.  Used as a
    centralized reference; the distributed matching application reduces to
    MIS on the line graph instead (see :mod:`repro.applications.matching`).
    """
    unavailable_set = set(unavailable)
    member_set = set(members)
    matched: set[int] = set()
    result: set[tuple[int, int]] = set()
    for v in sorted(member_set):
        if v in unavailable_set or v in matched:
            continue
        for w in sorted(adjacency.get(v, ())):
            if w in member_set and w not in unavailable_set and w not in matched and w != v:
                result.add((v, w) if v < w else (w, v))
                matched.add(v)
                matched.add(w)
                break
    return result
