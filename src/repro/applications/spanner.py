"""Sparse spanners from strong-diameter decompositions (paper §1.1).

The paper's introduction lists spanner construction (Dubhashi et al.,
JCSS 2005) among the applications of network decomposition.  The classic
cluster-spanner construction needs exactly the property this paper
provides — **strong** diameter:

* inside every cluster, keep a BFS tree of the *induced* cluster subgraph
  rooted at the cluster center (possible only because clusters are
  connected!);
* between every pair of adjacent clusters, keep one (lexicographically
  smallest) connecting edge.

Size: at most ``n − (#clusters)`` tree edges plus one edge per supergraph
edge.  Stretch: an intra-cluster edge is replaced by a tree path of
length ``≤ 2D``; an inter-cluster edge ``(u, v)`` routes through its
clusters' connecting edge for length ``≤ 2D + 1 + 2D`` — so the spanner
has stretch ``≤ 4D + 1`` where ``D`` is the decomposition's strong
diameter.  With the paper's ``(O(log n), O(log n))`` decomposition this
is an ``O(log n)``-stretch spanner with ``n·(1 + o(1)) + |E(G(P))|``
edges.

A weak-diameter decomposition cannot run this construction at all — the
"tree" of a disconnected cluster does not exist — which is precisely the
kind of downstream win the paper's abstract promises.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..core.decomposition import NetworkDecomposition
from ..errors import DecompositionError
from ..graphs.graph import Edge, Graph
from ..graphs.traversal import bfs_distances

__all__ = ["SpannerResult", "build_spanner", "max_edge_stretch"]


@dataclass
class SpannerResult:
    """A spanner and its measured guarantees.

    ``stretch_bound`` is the a-priori ``4D + 1``; ``max_stretch`` is the
    exact measured worst edge stretch (``≤`` the bound).
    """

    spanner: Graph
    tree_edges: int
    connector_edges: int
    stretch_bound: float
    max_stretch: float

    @property
    def num_edges(self) -> int:
        """Total spanner size in edges."""
        return self.spanner.num_edges


def _cluster_tree_edges(graph: Graph, members: frozenset[int], root: int) -> list[Edge]:
    """BFS-tree edges of the induced cluster subgraph, rooted at ``root``."""
    parent: dict[int, int] = {root: -1}
    frontier = deque([root])
    edges: list[Edge] = []
    while frontier:
        u = frontier.popleft()
        for w in graph.neighbors(u):
            if w in members and w not in parent:
                parent[w] = u
                edges.append((u, w) if u < w else (w, u))
                frontier.append(w)
    if len(parent) != len(members):
        raise DecompositionError(
            "cluster is disconnected: spanner construction requires strong "
            "diameter (use the paper's algorithm, not a weak baseline)"
        )
    return edges


def build_spanner(graph: Graph, decomposition: NetworkDecomposition) -> SpannerResult:
    """Build the cluster spanner of ``graph`` over ``decomposition``.

    Raises :class:`DecompositionError` if any cluster is disconnected
    (weak-diameter decompositions cannot support intra-cluster trees).
    """
    spanner_edges: set[Edge] = set()
    tree_count = 0
    for cluster in decomposition.clusters:
        root = (
            cluster.center
            if cluster.center is not None and cluster.center in cluster.vertices
            else min(cluster.vertices)
        )
        tree = _cluster_tree_edges(graph, cluster.vertices, root)
        tree_count += len(tree)
        spanner_edges.update(tree)
    # One connecting edge per adjacent cluster pair (lexicographically
    # smallest, hence deterministic).
    cluster_of = decomposition.cluster_index_map()
    connector: dict[tuple[int, int], Edge] = {}
    for u, v in graph.edges():
        cu, cv = cluster_of[u], cluster_of[v]
        if cu == cv:
            continue
        key = (cu, cv) if cu < cv else (cv, cu)
        edge = (u, v)
        if key not in connector or edge < connector[key]:
            connector[key] = edge
    spanner_edges.update(connector.values())
    spanner = Graph(graph.num_vertices, sorted(spanner_edges))
    diameter = decomposition.max_strong_diameter()
    if math.isinf(diameter):
        raise DecompositionError("decomposition has infinite strong diameter")
    bound = 4.0 * diameter + 1.0
    return SpannerResult(
        spanner=spanner,
        tree_edges=tree_count,
        connector_edges=len(connector),
        stretch_bound=bound,
        max_stretch=max_edge_stretch(graph, spanner),
    )


def max_edge_stretch(graph: Graph, spanner: Graph) -> float:
    """Exact worst stretch of a host edge inside ``spanner``.

    The stretch of a spanner equals its worst stretch over *edges* (any
    shortest path is a concatenation of edges).  Returns ``inf`` if some
    edge's endpoints are disconnected in the spanner, 1.0 for edgeless
    hosts.
    """
    if graph.num_vertices != spanner.num_vertices:
        raise DecompositionError("spanner must be on the same vertex set")
    worst = 1.0
    for u in graph.vertices():
        if graph.degree(u) == 0:
            continue
        distances = bfs_distances(spanner, u)
        for v in graph.neighbors(u):
            if v < u:
                continue
            if v not in distances:
                return math.inf
            worst = max(worst, float(distances[v]))
    return worst
