"""Baseline decomposition algorithms the paper is measured against.

* :mod:`~repro.baselines.linial_saks` / :mod:`~repro.baselines.distributed_ls`
  — the LS93 randomized **weak**-diameter decomposition (the algorithm whose
  strong-diameter analogue the paper provides);
* :mod:`~repro.baselines.mpx` / :mod:`~repro.baselines.distributed_mpx`
  — the Miller–Peng–Xu exponential-shift padded partition (the technique
  the paper adapts);
* :mod:`~repro.baselines.ball_carving` — deterministic sequential
  region-growing (sanity anchor for the ``(2k−2, ·)`` regime).
"""

from . import ball_carving, linial_saks, mpx
from .ball_carving import BallCarvingTrace, greedy_color
from .distributed_ls import DistributedLSResult, LSNodeAlgorithm
from .distributed_ls import decompose_distributed as ls_decompose_distributed
from .distributed_mpx import (
    DistributedMPXResult,
    MPXNodeAlgorithm,
    partition_distributed,
)
from .linial_saks import LSTrace, sample_ls_radius
from .mpx import MPXResult, sample_shifts

__all__ = [
    "BallCarvingTrace",
    "DistributedLSResult",
    "DistributedMPXResult",
    "LSNodeAlgorithm",
    "LSTrace",
    "MPXNodeAlgorithm",
    "MPXResult",
    "ball_carving",
    "greedy_color",
    "linial_saks",
    "ls_decompose_distributed",
    "mpx",
    "partition_distributed",
    "sample_ls_radius",
    "sample_shifts",
]
