"""The Linial–Saks weak-diameter network decomposition (baseline).

Linial and Saks ("Decomposing graphs into regions of small diameter",
Combinatorica 1993) gave the classic randomized distributed algorithm
computing a *weak* ``(O(log n), O(log n))`` decomposition in ``O(log² n)``
rounds — for 23 years the only polylogarithmic construction, and the one
whose strong-diameter analogue the Elkin–Neiman paper finally provides.

The construction, as summarised in §1.2 of the paper being reproduced:

* phases carve blocks out of the shrinking graph :math:`G_t`;
* in a phase every live vertex ``v`` draws an integer radius ``r_v`` from a
  capped geometric distribution (``Pr[r = j] = (1−p)pʲ`` for ``j < k``,
  remaining mass on ``k``) with ``p = n^{-1/k}``, and broadcasts its
  **ID** and ``r_v`` to distance ``r_v``;
* a vertex ``x`` considers the broadcasts that reached it
  (``d_{G_t}(x, v) ≤ r_v``) and selects the *minimum-ID* vertex ``v*``
  among them; ``x`` joins the block iff it is strictly inside the ball:
  ``d_{G_t}(x, v*) < r_{v*}``;
* the cluster of ``x`` is the set of vertices that selected the same
  center ``v*``.

Clusters have **weak** diameter ``≤ 2k−2`` (all members sit strictly
inside the center's radius-``≤ k`` ball *in* :math:`G_t`), but are frequently
*disconnected* as induced subgraphs — their strong diameter is unbounded
(infinite).  Experiment E10 measures exactly this.

Same-coloured clusters are never adjacent: if adjacent ``x, y`` joined the
same block with centers ``v_x ≠ v_y`` and ``v_x < v_y``, then ``v_x``'s
ball covers ``y`` too (``d(y, v_x) ≤ d(x, v_x) + 1 ≤ r_{v_x}``), so ``y``'s
minimum-ID selection would have been ``≤ v_x`` — contradiction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..core.decomposition import Cluster, NetworkDecomposition
from ..errors import ParameterError, SimulationError
from ..graphs.activeset import ActiveSet
from ..graphs.graph import Graph
from ..graphs.traversal import bfs_distances_bounded
from ..rng import DEFAULT_SEED, stream

__all__ = ["LSTrace", "sample_ls_radius", "ls_phase", "decompose"]


@dataclass
class LSTrace:
    """Run record of a Linial–Saks decomposition.

    ``nominal_phases`` is the ``O(n^{1/k}·log n)`` budget within which the
    graph empties in expectation; the driver continues past it if needed
    (``exhausted_within_nominal`` records whether it had to).
    """

    phases: int = 0
    nominal_phases: int = 0
    exhausted_within_nominal: bool = True
    survivors: list[int] = field(default_factory=list)
    block_sizes: list[int] = field(default_factory=list)
    max_radius_per_phase: list[int] = field(default_factory=list)


def sample_ls_radius(seed: int, phase: int, vertex: int, p: float, k: int) -> int:
    """Draw the capped geometric radius of ``vertex`` at ``phase``.

    ``Pr[r = j] = (1 − p)·pʲ`` for ``0 ≤ j < k`` and ``Pr[r = k] = pᵏ``
    (all remaining mass on the cap).  A block member sits strictly inside
    its center's ball, so its distance to the center is ``≤ k − 1`` and
    every cluster has weak diameter ``≤ 2k − 2`` — the same bound the
    paper's strong-diameter algorithm achieves, making the comparison in
    experiment E4 like-for-like.
    """
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    u = stream(seed, "ls-radius", phase, vertex).random()
    # Invert the geometric CDF: radius = max j with u < p^j, capped at k.
    radius = 0
    survive = p  # Pr[r > radius] before the cap
    while radius < k and u < survive:
        radius += 1
        survive *= p
    return radius


def ls_phase(
    graph: Graph,
    active: "set[int] | ActiveSet",
    radii: Mapping[int, int],
) -> tuple[set[int], dict[int, int]]:
    """One Linial–Saks phase: block membership and chosen centers.

    Returns ``(block, center_of)`` where ``center_of[x]`` is ``x``'s
    minimum-ID reaching vertex ``v*`` for every ``x`` in the block.
    """
    best_center: dict[int, tuple[int, int]] = {}  # x -> (center id, distance)
    for v in sorted(radii):
        if v not in active:
            raise ParameterError(f"radius given for inactive vertex {v}")
        reach = radii[v]
        for x, distance in bfs_distances_bounded(graph, v, reach, active=active).items():
            # Minimum ID wins; sorted iteration means the first writer is
            # the smallest ID, so never overwrite.
            if x not in best_center:
                best_center[x] = (v, distance)
    block: set[int] = set()
    center_of: dict[int, int] = {}
    for x, (center, distance) in best_center.items():
        if distance < radii[center]:
            block.add(x)
            center_of[x] = center
    return block, center_of


def decompose(
    graph: Graph,
    k: int,
    seed: int = DEFAULT_SEED,
    p: float | None = None,
    max_phases: int | None = None,
) -> tuple[NetworkDecomposition, LSTrace]:
    """Compute a weak ``(2k−2, O(n^{1/k}·log n))`` decomposition (LS93).

    Parameters
    ----------
    graph:
        Input graph.
    k:
        Radius parameter (integer, ``k ≥ 1``); radii are capped at ``k``
        and members are strictly inside their center's ball, so every
        cluster has weak diameter at most ``2k − 2``.
    seed:
        Root seed for the per-``(phase, vertex)`` radius streams.
    p:
        Geometric parameter; defaults to ``n^{-1/k}``.
    max_phases:
        Hard safety cap; defaults to ``10 × nominal + 100``.

    Returns
    -------
    (NetworkDecomposition, LSTrace)
        Clusters are *center classes* (not connected components!) so the
        result faithfully exhibits the weak-diameter behaviour; colour =
        phase − 1.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    if p is None:
        p = float(max(n, 2)) ** (-1.0 / k)
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    nominal = max(1, math.ceil(2.0 * max(n, 2) ** (1.0 / k) * math.log(max(n, 2)) / max(1.0 - p, 1e-9)))
    if max_phases is None:
        max_phases = 10 * nominal + 100
    active = ActiveSet.full(graph.num_vertices)
    trace = LSTrace(nominal_phases=nominal)
    clusters: list[Cluster] = []
    phase = 0
    while active:
        phase += 1
        if phase > max_phases:
            raise SimulationError(
                f"LS did not exhaust the graph within {max_phases} phases"
            )
        radii = {v: sample_ls_radius(seed, phase, v, p, k) for v in active}
        block, center_of = ls_phase(graph, active, radii)
        by_center: dict[int, list[int]] = {}
        for x, center in center_of.items():
            by_center.setdefault(center, []).append(x)
        for center in sorted(by_center):
            clusters.append(
                Cluster(
                    index=len(clusters),
                    color=phase - 1,
                    vertices=frozenset(by_center[center]),
                    center=center,
                )
            )
        active -= block
        trace.survivors.append(len(active))
        trace.block_sizes.append(len(block))
        trace.max_radius_per_phase.append(max(radii.values(), default=0))
    trace.phases = phase
    trace.exhausted_within_nominal = phase <= nominal
    return NetworkDecomposition(graph, clusters), trace
