"""Distributed Linial–Saks protocol on the synchronous simulator.

Message-passing implementation of the LS93 weak-diameter decomposition
(see :mod:`repro.baselines.linial_saks` for the algorithm).  The phase
structure mirrors the Elkin–Neiman protocol
(:mod:`repro.core.distributed_en`): ``B_t`` broadcast rounds, one decision
point, one announce round.  Differences:

* broadcasts carry ``(ID, radius, distance)`` and the *ID* is load-bearing
  (minimum-ID wins), unlike Elkin–Neiman where IDs only dedupe;
* radii are integers from the capped geometric distribution, so ``B_t``
  is at most ``k``;
* every newly heard value is forwarded (``full`` mode).  LS93's own
  CONGEST-ness relies on a counting argument we do not replicate; the
  measured per-edge bandwidth of this protocol versus Elkin–Neiman's
  top-two mode is part of experiment E8's story.

Runs are cross-validated against the centralized reference: both draw
radii from the same ``(seed, phase, vertex)`` streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..core.decomposition import Cluster, NetworkDecomposition
from ..distributed.message import Message
from ..distributed.metrics import NetworkStats
from ..distributed.node import Context, NodeAlgorithm
from ..distributed.synchronizer import build_network
from ..errors import ParameterError, SimulationError
from ..graphs.activeset import ActiveSet
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from ..telemetry import maybe_span, resolve
from .linial_saks import sample_ls_radius

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

__all__ = ["LSNodeAlgorithm", "DistributedLSResult", "decompose_distributed"]

_BCAST = "b"
_LEFT = "left"


class LSNodeAlgorithm(NodeAlgorithm):
    """Node-local state machine of the Linial–Saks protocol."""

    def __init__(self, vertex: int, seed: int, p: float, k: int) -> None:
        self.vertex = vertex
        self.seed = seed
        self.p = p
        self.k = k
        self.active_neighbors: set[int] | None = None
        self.joined_phase: int | None = None
        self.center: int | None = None
        # Per-phase state.
        self.phase = 0
        self.radius = 0
        self.broadcast_rounds = 0
        self.round_in_phase = 0
        self.entries: dict[int, tuple[int, int]] = {}  # origin -> (radius, dist)
        self._new_origins: list[int] = []

    def begin_phase(self, phase: int, broadcast_rounds: int) -> None:
        """Arm the node for ``phase`` (control plane, see distributed_en)."""
        self.phase = phase
        self.radius = sample_ls_radius(self.seed, phase, self.vertex, self.p, self.k)
        self.broadcast_rounds = broadcast_rounds
        self.round_in_phase = 0
        self.entries = {self.vertex: (self.radius, 0)}
        self._new_origins = [self.vertex]

    def on_start(self, ctx: Context) -> None:
        self.active_neighbors = set(ctx.neighbors)

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        self.round_in_phase += 1
        assert self.active_neighbors is not None
        for message in inbox:
            payload = message.payload
            if payload[0] == _LEFT:
                self.active_neighbors.discard(message.sender)
                continue
            _tag, origin, radius, distance = payload
            known = self.entries.get(origin)
            if known is None or distance < known[1]:
                self.entries[origin] = (radius, distance)
                self._new_origins.append(origin)
        if self.round_in_phase <= self.broadcast_rounds:
            outgoing = [
                origin
                for origin in self._new_origins
                if self.entries[origin][1] + 1 <= self.entries[origin][0]
            ]
            self._new_origins = []
            for origin in outgoing:
                radius, distance = self.entries[origin]
                for neighbor in sorted(self.active_neighbors):
                    ctx.send(neighbor, (_BCAST, origin, radius, distance + 1))
        if self.round_in_phase == self.broadcast_rounds + 1:
            self._decide()
        elif self.round_in_phase == self.broadcast_rounds + 2:
            if self.joined_phase == self.phase:
                for neighbor in sorted(self.active_neighbors):
                    ctx.send(neighbor, (_LEFT,))
                ctx.halt()

    def _decide(self) -> None:
        winner = min(self.entries)  # minimum ID among broadcasts that reached us
        radius, distance = self.entries[winner]
        if distance < radius:
            self.joined_phase = self.phase
            self.center = winner


@dataclass
class DistributedLSResult:
    """Outcome of a distributed Linial–Saks run."""

    decomposition: NetworkDecomposition
    stats: NetworkStats
    phases: int
    rounds_per_phase: list[int] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        """Total communication rounds."""
        return sum(self.rounds_per_phase)


class _SyncLSPhases:
    """Reference phase executor (one :class:`LSNodeAlgorithm` per vertex),
    on :class:`SyncNetwork` or — with ``backend="async"`` — the
    α-synchronized :class:`~repro.distributed.async_net.AsyncNetwork`."""

    def __init__(
        self, graph: Graph, seed: int, p: float, k: int, word_budget, rounds=None,
        causal=None, backend: str = "sync", delivery: str = "fifo", faults=None,
    ) -> None:
        self._network = build_network(
            graph,
            [LSNodeAlgorithm(v, seed, p, k) for v in range(graph.num_vertices)],
            seed=seed,
            word_budget=word_budget,
            rounds=rounds,
            causal=causal,
            backend=backend,
            delivery=delivery,
            faults=faults,
        )
        self._network.start()

    @property
    def stats(self) -> NetworkStats:
        return self._network.stats

    @property
    def async_stats(self):
        """Adversary counters (``None`` on the sync engine)."""
        return getattr(self._network, "async_stats", None)

    def finish(self) -> None:
        self._network.finish_rounds()

    def run_phase(self, phase, budget, radii):
        for v in radii:
            algorithm = self._network.algorithm(v)
            assert isinstance(algorithm, LSNodeAlgorithm)
            algorithm.begin_phase(phase, budget)
        self._network.run_rounds(budget + 2)
        joined: dict[int, int] = {}
        for v in radii:
            algorithm = self._network.algorithm(v)
            assert isinstance(algorithm, LSNodeAlgorithm)
            if algorithm.joined_phase == phase:
                assert algorithm.center is not None
                joined[v] = algorithm.center
        return joined


def decompose_distributed(
    graph: Graph,
    k: int,
    seed: int = DEFAULT_SEED,
    p: float | None = None,
    adaptive_phase_length: bool = True,
    word_budget: int | None = None,
    max_phases: int | None = None,
    backend: str = "sync",
    delivery: str = "fifo",
    faults: str | None = None,
    telemetry: "Telemetry | None" = None,
) -> DistributedLSResult:
    """Run the distributed LS protocol to completion.

    Parameters mirror :func:`repro.baselines.linial_saks.decompose`;
    ``adaptive_phase_length`` chooses ``B_t = max r_v`` (driver-computed)
    instead of the fixed worst case ``k``.  ``backend="batch"`` runs the
    identical protocol on the columnar round engine
    (:class:`repro.engine.ls.BatchLSPhases`) — bit-identical outputs and
    stats, engine-speed execution.  ``backend="async"`` steps the node
    algorithms on the α-synchronized asynchronous engine under a
    ``delivery`` schedule and optional ``faults`` plan (``docs/async.md``)
    — bit-identical to ``"sync"`` for fault-free FIFO runs.
    ``telemetry`` (or the ambient trace) enables phase spans and the
    ``ls.rounds`` metrics stream.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if backend not in ("sync", "batch", "async"):
        raise ParameterError(
            f"backend must be 'sync', 'batch' or 'async', got {backend!r}"
        )
    if backend != "async" and (delivery != "fifo" or faults not in (None, "", "none")):
        raise ParameterError(
            f"delivery/faults require backend='async', got backend={backend!r}"
        )
    n = graph.num_vertices
    if p is None:
        p = float(max(n, 2)) ** (-1.0 / k)
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    nominal = max(
        1, math.ceil(2.0 * max(n, 2) ** (1.0 / k) * math.log(max(n, 2)) / max(1.0 - p, 1e-9))
    )
    if max_phases is None:
        max_phases = 10 * nominal + 100
    tel = resolve(telemetry)
    rounds = (
        tel.round_stream("ls.rounds", backend=backend) if tel is not None else None
    )
    causal = tel.causal_log("ls.causal") if tel is not None else None
    if backend in ("sync", "async"):
        runner = _SyncLSPhases(
            graph, seed, p, k, word_budget, rounds, causal,
            backend=backend, delivery=delivery, faults=faults,
        )
    else:
        from ..engine.ls import BatchLSPhases

        runner = BatchLSPhases(graph, word_budget, rounds=rounds, causal=causal)
    active = ActiveSet.full(n)
    clusters: list[Cluster] = []
    rounds_per_phase: list[int] = []
    phase = 0
    span_attrs = {"backend": backend, "n": n, "k": k}
    if backend == "async":
        span_attrs["delivery"] = delivery
        span_attrs["faults"] = faults or "none"
    phase_hist = tel.histogram("ls.phase_seconds") if tel is not None else None
    with maybe_span(tel, "ls.decompose", **span_attrs) as run_span:
        while active:
            phase += 1
            if phase > max_phases:
                raise SimulationError(
                    f"LS protocol did not exhaust the graph within {max_phases} phases"
                )
            radii = {v: sample_ls_radius(seed, phase, v, p, k) for v in active}
            budget = max(radii.values(), default=0) if adaptive_phase_length else k
            with maybe_span(tel, "phase", phase=phase) as phase_span:
                joined = runner.run_phase(phase, budget, radii)
                if phase_span is not None:
                    phase_span.annotate(budget=budget)
                    phase_span.add("joined", len(joined))
            if phase_span is not None:
                phase_hist.record(phase_span.seconds)
            rounds_per_phase.append(budget + 2)
            by_center: dict[int, list[int]] = {}
            for v, center in joined.items():
                by_center.setdefault(center, []).append(v)
            for center in sorted(by_center):
                clusters.append(
                    Cluster(
                        index=len(clusters),
                        color=phase - 1,
                        vertices=frozenset(by_center[center]),
                        center=center,
                    )
                )
            active -= joined.keys()
        if tel is not None:
            runner.finish()
            run_span.add("phases", phase)
            run_span.add("rounds", sum(rounds_per_phase))
            async_stats = getattr(runner, "async_stats", None)
            if async_stats is not None:
                run_span.annotate(**async_stats.as_dict())
    return DistributedLSResult(
        decomposition=NetworkDecomposition(graph, clusters),
        stats=runner.stats,
        phases=phase,
        rounds_per_phase=rounds_per_phase,
    )
