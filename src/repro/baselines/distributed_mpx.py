"""Distributed Miller–Peng–Xu partition on the synchronous simulator.

One-shot shifted-BFS competition: every vertex injects ``δ_v ~ Exp(β)``
and the network floods shifted values for ``B = max ⌊δ_v⌋`` rounds; each
vertex is assigned to the origin of the largest shifted value it heard
(its own included, so everyone is assigned).

Forwarding modes:

* ``full`` — forward every newly heard value;
* ``topone`` — forward only the current best value.  This suffices for
  assignment: if ``x`` suppresses origin ``o`` because it holds a larger
  shifted value ``m'``, then anything downstream of ``x`` would receive a
  value at least as large as ``o``'s via ``x``'s best, so ``o`` can never
  win downstream of ``x`` — the classical argument MPX's parallel
  implementation rests on.  Messages are then O(1) words per edge per
  round.

Cross-validated bit-for-bit against :func:`repro.baselines.mpx.partition`
(both draw shifts from the ``(seed, "mpx-shift", vertex)`` streams).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Sequence

from ..core.decomposition import Cluster, NetworkDecomposition
from ..distributed.message import Message
from ..distributed.metrics import NetworkStats
from ..distributed.node import Context, NodeAlgorithm
from ..distributed.synchronizer import build_network
from ..errors import ParameterError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED, stream
from ..telemetry import maybe_span, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

__all__ = ["MPXNodeAlgorithm", "DistributedMPXResult", "partition_distributed"]

_BCAST = "b"


class MPXNodeAlgorithm(NodeAlgorithm):
    """Node-local logic of the one-shot MPX competition."""

    def __init__(
        self, vertex: int, seed: int, beta: float, mode: Literal["full", "topone"]
    ) -> None:
        if mode not in ("full", "topone"):
            raise ParameterError(f"mode must be 'full' or 'topone', got {mode!r}")
        self.vertex = vertex
        self.seed = seed
        self.beta = beta
        self.mode = mode
        self.shift = 0.0
        self.broadcast_rounds = 0
        self.entries: dict[int, tuple[float, int]] = {}
        self._new_origins: list[int] = []
        self._sent_origins: set[int] = set()
        self.center: int | None = None

    def configure(self, broadcast_rounds: int) -> None:
        """Set the flood length ``B`` (common-knowledge parameter)."""
        self.broadcast_rounds = broadcast_rounds

    def on_start(self, ctx: Context) -> None:
        self.shift = stream(self.seed, "mpx-shift", self.vertex).expovariate(self.beta)
        self.entries = {self.vertex: (self.shift, 0)}
        self._new_origins = [self.vertex]

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        for message in inbox:
            _tag, origin, shift, distance = message.payload
            known = self.entries.get(origin)
            if known is None or distance < known[1]:
                self.entries[origin] = (shift, distance)
                self._new_origins.append(origin)
        if ctx.round_number <= self.broadcast_rounds:
            self._forward(ctx)
        if ctx.round_number == self.broadcast_rounds + 1:
            self.center = min(
                self.entries,
                key=lambda o: (-(self.entries[o][0] - self.entries[o][1]), o),
            )
            ctx.halt()

    def _eligible(self, origin: int) -> bool:
        shift, distance = self.entries[origin]
        return distance + 1 <= math.floor(shift)

    def _forward(self, ctx: Context) -> None:
        if self.mode == "full":
            outgoing = [o for o in self._new_origins if self._eligible(o)]
        else:
            eligible = [o for o in self.entries if self._eligible(o)]
            eligible.sort(
                key=lambda o: (-(self.entries[o][0] - self.entries[o][1]), o)
            )
            outgoing = [o for o in eligible[:1] if o not in self._sent_origins]
        self._new_origins = []
        for origin in outgoing:
            self._sent_origins.add(origin)
            shift, distance = self.entries[origin]
            for neighbor in ctx.neighbors:
                ctx.send(neighbor, (_BCAST, origin, shift, distance + 1))


@dataclass
class DistributedMPXResult:
    """Outcome of a distributed MPX run."""

    decomposition: NetworkDecomposition
    center_of: dict[int, int]
    stats: NetworkStats
    rounds: int
    cut_edges: int
    cut_fraction: float


def partition_distributed(
    graph: Graph,
    beta: float,
    seed: int = DEFAULT_SEED,
    mode: Literal["full", "topone"] = "topone",
    word_budget: int | None = None,
    backend: str = "sync",
    delivery: str = "fifo",
    faults: str | None = None,
    telemetry: "Telemetry | None" = None,
) -> DistributedMPXResult:
    """Run the distributed MPX partition on ``graph`` with rate ``beta``.

    The flood length ``B = max ⌊δ_v⌋`` is computed by the driver from the
    shared shift streams (the standard w.h.p. bound is
    ``O(log n / β)``); the run then takes ``B + 1`` rounds.
    ``backend="batch"`` runs the identical competition on the columnar
    round engine (:func:`repro.engine.mpx.run_mpx_batch`) — bit-identical
    assignment and stats.  ``backend="async"`` runs it on the
    α-synchronized asynchronous engine under a ``delivery`` schedule and
    optional ``faults`` plan (``docs/async.md``); note the one-shot
    competition requires every vertex to decide, so fault plans that
    crash a node through its decision round trip the assignment
    assertion — use drop faults (a vertex always holds its own entry).
    ``telemetry`` (or the ambient trace) enables the run span and the
    ``mpx.rounds`` metrics stream.
    """
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    if mode not in ("full", "topone"):
        raise ParameterError(f"mode must be 'full' or 'topone', got {mode!r}")
    if backend not in ("sync", "batch", "async"):
        raise ParameterError(
            f"backend must be 'sync', 'batch' or 'async', got {backend!r}"
        )
    if backend != "async" and (delivery != "fifo" or faults not in (None, "", "none")):
        raise ParameterError(
            f"delivery/faults require backend='async', got backend={backend!r}"
        )
    n = graph.num_vertices
    tel = resolve(telemetry)
    rounds = (
        tel.round_stream("mpx.rounds", backend=backend, mode=mode)
        if tel is not None
        else None
    )
    causal = tel.causal_log("mpx.causal") if tel is not None else None
    shifts = {
        v: stream(seed, "mpx-shift", v).expovariate(beta) for v in range(n)
    }
    budget = max((math.floor(s) for s in shifts.values()), default=0)
    span_attrs = {"backend": backend, "mode": mode, "n": n}
    if backend == "async":
        span_attrs["delivery"] = delivery
        span_attrs["faults"] = faults or "none"
    with maybe_span(tel, "mpx.partition", **span_attrs) as run_span:
        if backend == "batch":
            from ..engine.mpx import run_mpx_batch

            center_of, stats = run_mpx_batch(
                graph, shifts, budget, mode, word_budget, rounds=rounds,
                causal=causal,
            )
        else:
            algorithms = [MPXNodeAlgorithm(v, seed, beta, mode) for v in range(n)]
            for algorithm in algorithms:
                algorithm.configure(budget)
            network = build_network(
                graph, algorithms, seed=seed, word_budget=word_budget,
                rounds=rounds, causal=causal, backend=backend,
                delivery=delivery, faults=faults,
            )
            network.start()
            network.run_rounds(budget + 1)
            network.finish_rounds()
            stats = network.stats
            center_of = {}
            for v in range(n):
                algorithm = network.algorithm(v)
                assert isinstance(algorithm, MPXNodeAlgorithm)
                assert algorithm.center is not None, "every vertex must be assigned"
                center_of[v] = algorithm.center
        if run_span is not None:
            run_span.add("rounds", budget + 1)
            async_stats = getattr(network, "async_stats", None) if backend == "async" else None
            if async_stats is not None:
                run_span.annotate(**async_stats.as_dict())
    if run_span is not None:
        tel.histogram("mpx.partition_seconds").record(run_span.seconds)
    by_center: dict[int, list[int]] = {}
    for v, center in center_of.items():
        by_center.setdefault(center, []).append(v)
    clusters = [
        Cluster(index=i, color=i, vertices=frozenset(by_center[center]), center=center)
        for i, center in enumerate(sorted(by_center))
    ]
    cut = sum(1 for u, v in graph.edges() if center_of[u] != center_of[v])
    return DistributedMPXResult(
        decomposition=NetworkDecomposition(graph, clusters),
        center_of=center_of,
        stats=stats,
        rounds=budget + 1,
        cut_edges=cut,
        cut_fraction=cut / graph.num_edges if graph.num_edges else 0.0,
    )
