"""Miller–Peng–Xu exponential-shift padded partition (technique origin).

Miller, Peng and Xu ("Parallel graph decompositions using random shifts",
SPAA 2013) introduced the shifted-shortest-path construction that the
Elkin–Neiman paper adapts: every vertex ``u`` draws ``δ_u ~ Exp(β)`` and
every vertex ``y`` is assigned to the center

.. math::  \\operatorname*{argmax}_u \\; (δ_u − d(y, u)).

This produces a *partition* (every vertex assigned, single shot, no
phases) with two guarantees:

* **strong diameter**: every cluster is connected with radius
  ``O(log n / β)`` w.h.p. — if ``y`` is assigned to ``u``, so is every
  vertex on a shortest ``u→y`` path (a strict inequality version of the
  paper's Claim 3);
* **padding**: each edge is cut (endpoints in different clusters) with
  probability ``O(β)``, so the expected cut fraction is ``O(β)``.

Unlike a network decomposition there is no colour bound — the point of
the Elkin–Neiman paper is precisely to convert this machinery into one.
Experiment E11 measures both guarantees.

The implementation runs one multi-source shifted BFS (a Dijkstra over
fractional keys ``d(y, u) − δ_u``), which is also the PRAM-style reference
the distributed version (:mod:`repro.baselines.distributed_mpx`) is
validated against.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from ..core.decomposition import Cluster, NetworkDecomposition
from ..errors import ParameterError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED, stream

__all__ = ["MPXResult", "sample_shifts", "partition"]


@dataclass
class MPXResult:
    """Outcome of one MPX partition.

    Attributes
    ----------
    decomposition:
        The partition wrapped as a :class:`NetworkDecomposition` in which
        every cluster gets its own colour (MPX promises no colour bound).
    center_of:
        ``vertex -> center`` assignment.
    shifts:
        The exponential shifts ``δ_u`` used.
    cut_edges:
        Number of edges whose endpoints landed in different clusters.
    cut_fraction:
        ``cut_edges / m`` (0 when the graph has no edges) — the padding
        quantity bounded by ``O(β)``.
    """

    decomposition: NetworkDecomposition
    center_of: dict[int, int]
    shifts: dict[int, float]
    cut_edges: int
    cut_fraction: float


def sample_shifts(graph: Graph, beta: float, seed: int = DEFAULT_SEED) -> dict[int, float]:
    """Draw ``δ_u ~ Exp(beta)`` for every vertex, from named streams."""
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    return {
        u: stream(seed, "mpx-shift", u).expovariate(beta) for u in graph.vertices()
    }


def partition(
    graph: Graph,
    beta: float,
    seed: int = DEFAULT_SEED,
    shifts: dict[int, float] | None = None,
) -> MPXResult:
    """Compute the MPX partition of ``graph`` with rate ``beta``.

    Parameters
    ----------
    graph:
        Input graph (need not be connected; each component partitions
        independently).
    beta:
        Exponential rate; smaller β ⇒ fewer, larger clusters and fewer cut
        edges.  Must satisfy ``β > 0`` (the paper's regime is ``β ≤ 1/2``).
    seed:
        Seed for the shift streams (ignored when ``shifts`` is given).
    shifts:
        Optional pre-drawn shifts (used by tests and the distributed
        cross-check).

    Notes
    -----
    Assignment key is ``(d(y, u) − δ_u)`` minimised via a Dijkstra with
    fractional start keys ``−δ_u``; ties (measure zero) break toward the
    smaller center id, then smaller vertex id, so the result is fully
    deterministic given the shifts.
    """
    if shifts is None:
        shifts = sample_shifts(graph, beta, seed)
    # Dijkstra over keys d(y, u) - delta_u, all vertices start as sources.
    best_key: dict[int, float] = {}
    center_of: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = []
    for u in graph.vertices():
        key = -shifts[u]
        best_key[u] = key
        center_of[u] = u
        heapq.heappush(heap, (key, u, u))
    settled: set[int] = set()
    while heap:
        key, center, y = heapq.heappop(heap)
        if y in settled:
            continue
        if key > best_key[y] or (key == best_key[y] and center > center_of[y]):
            continue
        settled.add(y)
        center_of[y] = center
        for w in graph.neighbors(y):
            if w in settled:
                continue
            candidate = key + 1.0
            if candidate < best_key[w] or (
                candidate == best_key[w] and center < center_of[w]
            ):
                best_key[w] = candidate
                center_of[w] = center
                heapq.heappush(heap, (candidate, center, w))
    # Group into clusters; each cluster gets its own colour.
    by_center: dict[int, list[int]] = {}
    for y, center in center_of.items():
        by_center.setdefault(center, []).append(y)
    clusters = [
        Cluster(index=i, color=i, vertices=frozenset(by_center[center]), center=center)
        for i, center in enumerate(sorted(by_center))
    ]
    decomposition = NetworkDecomposition(graph, clusters)
    cut = sum(1 for u, v in graph.edges() if center_of[u] != center_of[v])
    fraction = cut / graph.num_edges if graph.num_edges else 0.0
    return MPXResult(
        decomposition=decomposition,
        center_of=center_of,
        shifts=shifts,
        cut_edges=cut,
        cut_fraction=fraction,
    )
