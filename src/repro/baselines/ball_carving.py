"""Deterministic sequential ball-carving decomposition (auxiliary baseline).

The classic region-growing argument (used since Awerbuch's synchronizers
and the Linial–Saks existential bounds): repeatedly grow a BFS ball around
an arbitrary live vertex until it stops expanding by a factor of
``n^{1/k}``, carve it as a cluster, and recurse on the rest.  The growth
condition must fail within ``k − 1`` steps (otherwise the ball would exceed
``n`` vertices), so every cluster has **strong** diameter ``≤ 2k − 2``.

This is *not* an algorithm from the reproduced paper — it is a sequential,
deterministic sanity anchor: it certifies what the ``(2k−2, ·)`` diameter
regime looks like without randomisation, and its greedily-coloured
supergraph gives a concrete colour count to compare against the
randomised algorithms' ``O(n^{1/k}·log n)`` (the sequential construction
does not by itself bound χ; we simply measure the greedy number).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.decomposition import Cluster, NetworkDecomposition
from ..errors import ParameterError
from ..graphs.activeset import ActiveSet
from ..graphs.graph import Graph
from ..graphs.subgraph import quotient_graph
from ..graphs.traversal import bfs_distances_bounded

__all__ = ["BallCarvingTrace", "decompose", "greedy_color"]


@dataclass
class BallCarvingTrace:
    """Record of a ball-carving run: radius used per carved cluster."""

    radii: list[int] = field(default_factory=list)

    @property
    def max_radius(self) -> int:
        """Largest ball radius carved (``≤ k − 1``)."""
        return max(self.radii, default=0)


def greedy_color(graph: Graph) -> list[int]:
    """First-fit colouring of ``graph`` in vertex order (used on supergraphs)."""
    colors: list[int] = [-1] * graph.num_vertices
    for v in graph.vertices():
        taken = {colors[w] for w in graph.neighbors(v) if colors[w] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def decompose(graph: Graph, k: int) -> tuple[NetworkDecomposition, BallCarvingTrace]:
    """Deterministically carve ``graph`` into strong ``(2k−2)``-diameter clusters.

    Parameters
    ----------
    graph:
        Input graph.
    k:
        Sparsity parameter ``k ≥ 1``; the growth threshold is
        ``n^{1/k}``.  Clusters are balls of radius ``≤ k − 1`` in the
        residual graph, so their strong diameter is ``≤ 2k − 2``.

    Returns
    -------
    (NetworkDecomposition, BallCarvingTrace)
        Cluster colours come from a first-fit colouring of the supergraph,
        so the decomposition is a valid (2k−2, measured-χ) strong
        decomposition.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    threshold = float(max(n, 2)) ** (1.0 / k)
    active = ActiveSet.full(graph.num_vertices)
    raw_clusters: list[tuple[int, list[int]]] = []  # (center, members)
    trace = BallCarvingTrace()
    while active:
        center = active.first()
        assert center is not None
        radius = 0
        ball = {center}
        while True:
            next_ball = set(
                bfs_distances_bounded(graph, center, radius + 1, active=active)
            )
            if len(next_ball) <= threshold * len(ball) or radius + 1 > max(n, 1):
                break
            ball = next_ball
            radius += 1
        raw_clusters.append((center, sorted(ball)))
        trace.radii.append(radius)
        active -= ball
    # Colour the supergraph greedily to obtain the χ witness.
    cluster_of = {
        v: index for index, (_, members) in enumerate(raw_clusters) for v in members
    }
    supergraph = quotient_graph(graph, cluster_of, len(raw_clusters))
    colors = greedy_color(supergraph)
    clusters = [
        Cluster(
            index=index,
            color=colors[index],
            vertices=frozenset(members),
            center=center,
        )
        for index, (center, members) in enumerate(raw_clusters)
    ]
    return NetworkDecomposition(graph, clusters), trace
