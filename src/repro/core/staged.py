"""Theorem 2: improved number of blocks via staged exponential rates.

The Theorem 1 construction pays a ``ln(cn)`` factor in the number of
colours because β stays pinned to the worst case.  Theorem 2 runs
``⌊ln n⌋ + 1`` *stages*: stage ``i`` lasts ``s_i = 2(cn/eⁱ)^{1/k}`` phases
with rate ``β_i = ln(cn/eⁱ)/k``.  As the graph thins out, β decreases, the
per-phase join probability rises to a constant per stage (Claim 8), and
the total number of phases — hence colours — telescopes to
``Σ s_i ≤ 4k(cn)^{1/k}``.

The strong diameter bound ``2k−2`` is β-independent (Lemma 4 holds for any
rate, given the Lemma-1 analogue), so only the colour count improves.

Guarantee: with probability ``≥ 1 − 5/c`` (``c > 5``), a strong
``(2k−2, 4k(cn)^{1/k})`` decomposition in ``O(k²(cn)^{1/k})`` rounds.
"""

from __future__ import annotations

from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from .decomposition import NetworkDecomposition
from .driver import DecompositionTrace, run_carving_process
from .params import Theorem2Schedule

__all__ = ["decompose"]


def decompose(
    graph: Graph,
    k: float,
    c: float = 6.0,
    seed: int = DEFAULT_SEED,
    use_range_cap: bool = False,
    max_phases: int | None = None,
) -> tuple[NetworkDecomposition, DecompositionTrace]:
    """Compute a strong ``(2k−2, 4k(cn)^{1/k})`` decomposition (Theorem 2).

    Parameters match :func:`repro.core.elkin_neiman.decompose` except that
    the confidence parameter requires ``c > 5`` and the default is 6.
    """
    schedule = Theorem2Schedule(n=max(graph.num_vertices, 1), k=k, c=c)
    return run_carving_process(
        graph,
        schedule,
        seed=seed,
        use_range_cap=use_range_cap,
        max_phases=max_phases,
    )
