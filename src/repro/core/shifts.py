"""Exponential shift sampling (the randomness of the paper's algorithm).

In each phase every live vertex draws ``r_v ~ Exp(β)`` with density
``β·e^{-βx}`` (paper §2).  The draws here are routed through named RNG
streams keyed by ``(seed, phase, vertex)`` so that

* each simulated node can draw *its own* radius knowing only the common
  seed, the phase number and its id — no communication needed; and
* the centralized reference implementation draws *bit-identical* values,
  enabling exact cross-validation of the distributed protocol.

The module also tracks the paper's bad events ``E_v`` (Lemma 1): a draw
``r ≥ k + 1`` would let a broadcast outrun the per-phase round budget.
Lemma 1 shows all such events are avoided with probability ``≥ 1 − 2/c``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable

from ..errors import ParameterError
from ..rng import seed_prefix, stream

__all__ = ["sample_radius", "sample_phase_radii", "TruncationEvent", "find_truncation_events"]


@dataclass(frozen=True)
class TruncationEvent:
    """Record of a Lemma-1 bad event: vertex ``vertex`` drew ``r ≥ k + 1``.

    ``phase`` is 1-based, matching the paper's ``t``.
    """

    phase: int
    vertex: int
    radius: float
    threshold: float


def sample_radius(seed: int, phase: int, vertex: int, beta: float) -> float:
    """Draw ``r_v ~ Exp(beta)`` for ``vertex`` at ``phase``.

    Deterministic in ``(seed, phase, vertex, beta)``; the same key always
    returns the same radius.
    """
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    return stream(seed, "radius", phase, vertex).expovariate(beta)


def sample_phase_radii(
    seed: int, phase: int, vertices: Iterable[int], beta: float
) -> dict[int, float]:
    """Radii for all of ``vertices`` at ``phase`` (one independent draw each).

    Bit-identical to calling :func:`sample_radius` per vertex, but the
    whole-phase form amortises the stream derivation: the hash prefix
    over ``(seed, "radius", phase)`` is computed once
    (:func:`repro.rng.seed_prefix`), and a single reseeded
    :class:`random.Random` replaces one fresh generator per draw.  At
    :math:`n \\approx 10^5` vertices per phase this is the driver's hot
    loop (see ``benchmarks/bench_engine.py``).
    """
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    derive = seed_prefix(seed, "radius", phase)
    rng = random.Random()
    radii: dict[int, float] = {}
    for v in vertices:
        rng.seed(derive(v))
        radii[v] = rng.expovariate(beta)
    return radii


def find_truncation_events(
    radii: dict[int, float], phase: int, k: float
) -> list[TruncationEvent]:
    """The Lemma-1 events among ``radii``: draws with ``r ≥ k + 1``.

    Returns them sorted by vertex for determinism.
    """
    threshold = k + 1
    return [
        TruncationEvent(phase=phase, vertex=v, radius=r, threshold=threshold)
        for v, r in sorted(radii.items())
        if r >= threshold
    ]
