"""Closed-form parameters and predicted bounds for Theorems 1–3.

Each theorem fixes, as a function of ``(n, k, c)`` (or ``(n, λ, c)``), the
exponential rate ``β``, the number of phases, and the guaranteed
``(diameter, colours, rounds, failure probability)``.  The benchmark
harness compares these predictions against measured values; the drivers in
:mod:`repro.core` consume them as *phase schedules* — an iterable of
``(phase index, β)`` pairs plus a nominal phase budget.

The schedules share one interface so the centralized and distributed
drivers are generic in the theorem being run:

* :meth:`PhaseSchedule.beta` — the rate used at 1-based phase ``t``;
* :attr:`PhaseSchedule.nominal_phases` — the paper's phase budget (the
  graph is exhausted within it w.h.p.; drivers keep carving past it until
  the graph empties, recording whether the budget held).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ParameterError

__all__ = [
    "PhaseSchedule",
    "Theorem1Schedule",
    "Theorem2Schedule",
    "Theorem3Schedule",
    "theorem1_bounds",
    "theorem2_bounds",
    "theorem3_bounds",
    "Bounds",
]


@dataclass(frozen=True)
class Bounds:
    """A theorem's promise: ``(D, χ)`` decomposition, round count, failure prob.

    ``diameter`` bounds the *strong* diameter; ``colors`` bounds χ;
    ``rounds`` bounds distributed running time; the guarantee holds with
    probability at least ``1 − failure_probability``.
    """

    diameter: float
    colors: float
    rounds: float
    failure_probability: float


def _check_common(n: int, c: float, min_c: float) -> None:
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if c <= min_c:
        raise ParameterError(f"c must be > {min_c}, got {c}")


class PhaseSchedule:
    """Interface shared by the three theorem schedules."""

    #: Number of phases within which the graph empties w.h.p.
    nominal_phases: int

    def beta(self, phase: int) -> float:
        """Exponential rate for 1-based phase ``phase``."""
        raise NotImplementedError

    def range_cap(self, phase: int) -> int:
        """Hop cap for the fixed-length distributed mode at ``phase``.

        Equals ``⌊k⌋`` — the budget that Lemma 1 (or its analogue) makes
        sufficient w.h.p.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Theorem1Schedule(PhaseSchedule):
    """Theorem 1: constant rate ``β = ln(cn)/k`` for ``λ = (cn)^{1/k}·ln(cn)`` phases.

    Guarantee: strong ``(2k−2, (cn)^{1/k}·ln(cn))`` decomposition in
    ``k·(cn)^{1/k}·ln(cn)`` rounds, with probability ``≥ 1 − 3/c``.

    ``k`` may be fractional (Theorem 3 reuses this schedule with a large
    real-valued ``k``); the paper's statement takes integer ``1 ≤ k ≤ ln n``.
    """

    n: int
    k: float
    c: float = 4.0
    nominal_phases: int = field(init=False)

    def __post_init__(self) -> None:
        _check_common(self.n, self.c, 3.0)
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        cn = self.c * self.n
        object.__setattr__(
            self, "nominal_phases", max(1, math.ceil(cn ** (1.0 / self.k) * math.log(cn)))
        )

    def beta(self, phase: int) -> float:
        return math.log(self.c * self.n) / self.k

    def range_cap(self, phase: int) -> int:
        return max(1, math.floor(self.k))


@dataclass(frozen=True)
class Theorem2Schedule(PhaseSchedule):
    """Theorem 2: staged rates, improving colours to ``4k·(cn)^{1/k}``.

    Stage ``i`` (``0 ≤ i ≤ ln n``) runs ``s_i = ⌈2(cn/eⁱ)^{1/k}⌉`` phases
    with rate ``β_i = ln(cn/eⁱ)/k``.  Decreasing β raises the per-phase
    join probability to a constant per stage (Claim 8: survival to stage
    ``i`` has probability ``≤ e^{−2i}``), which shaves the ``ln(cn)``
    factor off the number of colours.

    Guarantee: strong ``(2k−2, 4k(cn)^{1/k})`` decomposition in
    ``O(k²(cn)^{1/k})`` rounds, with probability ``≥ 1 − 5/c``.
    """

    n: int
    k: float
    c: float = 6.0
    nominal_phases: int = field(init=False)
    _stage_lengths: tuple[int, ...] = field(init=False)
    _stage_betas: tuple[float, ...] = field(init=False)

    def __post_init__(self) -> None:
        _check_common(self.n, self.c, 5.0)
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        cn = self.c * self.n
        num_stages = math.floor(math.log(self.n)) + 1 if self.n > 1 else 1
        lengths: list[int] = []
        betas: list[float] = []
        for i in range(num_stages):
            ratio = cn / math.exp(i)
            if ratio <= 1.0:
                break  # β would be non-positive; cannot happen for i ≤ ln n, c > 5
            lengths.append(max(1, math.ceil(2.0 * ratio ** (1.0 / self.k))))
            betas.append(math.log(ratio) / self.k)
        object.__setattr__(self, "_stage_lengths", tuple(lengths))
        object.__setattr__(self, "_stage_betas", tuple(betas))
        object.__setattr__(self, "nominal_phases", sum(lengths))

    @property
    def stage_lengths(self) -> tuple[int, ...]:
        """Phases per stage (``s_i`` in the paper)."""
        return self._stage_lengths

    @property
    def stage_betas(self) -> tuple[float, ...]:
        """Rate per stage (``β_i`` in the paper)."""
        return self._stage_betas

    def stage_of(self, phase: int) -> int:
        """Stage index of 1-based ``phase`` (the last stage absorbs overflow)."""
        if phase < 1:
            raise ParameterError(f"phase must be >= 1, got {phase}")
        remaining = phase
        for i, length in enumerate(self._stage_lengths):
            if remaining <= length:
                return i
            remaining -= length
        return len(self._stage_lengths) - 1

    def beta(self, phase: int) -> float:
        return self._stage_betas[self.stage_of(phase)]

    def range_cap(self, phase: int) -> int:
        return max(1, math.floor(self.k))


@dataclass(frozen=True)
class Theorem3Schedule(Theorem1Schedule):
    """Theorem 3 (high-radius regime): few colours, large diameter.

    For a target of ``λ ≤ ln n`` colours, run Theorem 1's procedure with
    ``k = (cn)^{1/λ}·ln(cn)`` — the inverse trade-off.  The graph empties
    within ``λ`` phases w.h.p., giving a strong
    ``(2(cn)^{1/λ}·ln(cn), λ)`` decomposition in ``λ·(cn)^{1/λ}·ln(cn)``
    rounds, with probability ``≥ 1 − 3/c``.

    Constructed via :meth:`from_lambda`.
    """

    target_colors: int = 0

    @staticmethod
    def from_lambda(n: int, lam: int, c: float = 4.0) -> "Theorem3Schedule":
        """Build the schedule from the desired number of colours ``lam``."""
        _check_common(n, c, 3.0)
        if lam < 1:
            raise ParameterError(f"lambda must be >= 1, got {lam}")
        cn = c * n
        k = cn ** (1.0 / lam) * math.log(cn)
        schedule = Theorem3Schedule(n=n, k=max(1.0, k), c=c, target_colors=lam)
        # Phase budget is λ in this regime, not (cn)^{1/k}·ln(cn).
        object.__setattr__(schedule, "nominal_phases", lam)
        return schedule


# ----------------------------------------------------------------------
# Predicted bounds (the rows of EXPERIMENTS.md)
# ----------------------------------------------------------------------
def theorem1_bounds(n: int, k: float, c: float = 4.0) -> Bounds:
    """Theorem 1's promised ``(D, χ, rounds, failure)`` for ``(n, k, c)``."""
    schedule = Theorem1Schedule(n=n, k=k, c=c)
    cn = c * n
    lam = cn ** (1.0 / k) * math.log(cn)
    return Bounds(
        diameter=2 * k - 2,
        colors=lam,
        rounds=k * lam,
        failure_probability=3.0 / c,
    )


def theorem2_bounds(n: int, k: float, c: float = 6.0) -> Bounds:
    """Theorem 2's promised ``(D, χ, rounds, failure)`` for ``(n, k, c)``."""
    Theorem2Schedule(n=n, k=k, c=c)  # parameter validation
    cn = c * n
    colors = 4.0 * k * cn ** (1.0 / k)
    return Bounds(
        diameter=2 * k - 2,
        colors=colors,
        rounds=k * colors,  # O(k²(cn)^{1/k})
        failure_probability=5.0 / c,
    )


def theorem3_bounds(n: int, lam: int, c: float = 4.0) -> Bounds:
    """Theorem 3's promised ``(D, χ, rounds, failure)`` for ``(n, λ, c)``."""
    if lam < 1:
        raise ParameterError(f"lambda must be >= 1, got {lam}")
    _check_common(n, c, 3.0)
    cn = c * n
    k = cn ** (1.0 / lam) * math.log(cn)
    return Bounds(
        diameter=2.0 * k,  # 2(cn)^{1/λ}·ln(cn)
        colors=float(lam),
        rounds=lam * k,
        failure_probability=3.0 / c,
    )
