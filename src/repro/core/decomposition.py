"""Network decomposition result types and validation.

A *(D, χ) network decomposition* (paper §1.1) is a partition of ``V`` into
clusters such that (a) every cluster has diameter at most ``D`` — *strong*
if measured inside the induced cluster subgraph, *weak* if measured in the
host graph — and (b) the supergraph ``G(P)`` obtained by contracting
clusters is properly χ-colourable.

:class:`NetworkDecomposition` stores the partition together with the colour
witness (the algorithms colour clusters by the phase that carved them) and
offers exact checks of every part of the definition:
:meth:`~NetworkDecomposition.validate` for partition-ness and colouring,
:meth:`~NetworkDecomposition.max_strong_diameter` /
:meth:`~NetworkDecomposition.max_weak_diameter` for the diameter bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import DecompositionError
from ..graphs.activeset import ActiveSet
from ..graphs.graph import Graph
from ..graphs.metrics import strong_diameter, weak_diameter
from ..graphs.subgraph import quotient_graph
from ..graphs.traversal import connected_components

__all__ = ["Cluster", "NetworkDecomposition"]


@dataclass(frozen=True)
class Cluster:
    """One cluster of a network decomposition.

    Attributes
    ----------
    index:
        Position of this cluster in the decomposition's cluster list.
    color:
        Colour class (= carving phase, 0-based, for the algorithms in this
        library).  Clusters of equal colour are pairwise non-adjacent.
    vertices:
        The member vertices.
    center:
        The center vertex whose broadcast won every member (``None`` for
        algorithms without a center notion).
    """

    index: int
    color: int
    vertices: frozenset[int]
    center: int | None = None

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self.vertices


class NetworkDecomposition:
    """A partition of a graph's vertices into coloured clusters.

    Parameters
    ----------
    graph:
        The decomposed graph.
    clusters:
        The clusters; their vertex sets must partition ``graph``'s vertex
        set (checked by :meth:`validate`, not at construction, so that
        tests can build deliberately broken instances).
    """

    def __init__(self, graph: Graph, clusters: Sequence[Cluster]) -> None:
        self.graph = graph
        self.clusters = list(clusters)
        self._vertex_to_cluster: dict[int, int] = {}
        for cluster in self.clusters:
            for v in cluster.vertices:
                self._vertex_to_cluster[v] = cluster.index

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_blocks(
        graph: Graph,
        blocks: Sequence[Iterable[int]],
        centers: Mapping[int, int] | None = None,
    ) -> "NetworkDecomposition":
        """Build a decomposition from per-phase *blocks* (paper §2).

        Each block ``W_t`` is split into the connected components of the
        induced subgraph ``G(W_t)``; every component becomes a cluster with
        colour ``t``.  ``centers`` optionally maps a vertex to the center
        it chose; a cluster's center is the one its members chose (all
        members agree for the paper's algorithm — Lemma 4).
        """
        clusters: list[Cluster] = []
        for color, block in enumerate(blocks):
            members = sorted(set(block))
            block_set = ActiveSet.from_iterable(graph.num_vertices, members)
            for component in connected_components(graph, active=block_set, universe=members):
                center: int | None = None
                if centers is not None:
                    chosen = {centers[v] for v in component if v in centers}
                    if len(chosen) == 1:
                        center = chosen.pop()
                clusters.append(
                    Cluster(
                        index=len(clusters),
                        color=color,
                        vertices=frozenset(component),
                        center=center,
                    )
                )
        return NetworkDecomposition(graph, clusters)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    @property
    def num_colors(self) -> int:
        """Number of distinct colours used (the χ witness)."""
        return len({cluster.color for cluster in self.clusters})

    @property
    def colors(self) -> list[int]:
        """Sorted list of colours in use."""
        return sorted({cluster.color for cluster in self.clusters})

    def cluster_of(self, vertex: int) -> Cluster:
        """The cluster containing ``vertex``."""
        try:
            return self.clusters[self._vertex_to_cluster[vertex]]
        except KeyError:
            raise DecompositionError(f"vertex {vertex} belongs to no cluster") from None

    def color_of(self, vertex: int) -> int:
        """The colour of the cluster containing ``vertex``."""
        return self.cluster_of(vertex).color

    def cluster_index_map(self) -> dict[int, int]:
        """Mapping ``vertex -> cluster index`` (a copy)."""
        return dict(self._vertex_to_cluster)

    def cluster_sizes(self) -> list[int]:
        """Sizes of all clusters, in cluster-index order."""
        return [len(cluster) for cluster in self.clusters]

    # ------------------------------------------------------------------
    # The supergraph G(P)
    # ------------------------------------------------------------------
    def supergraph(self) -> Graph:
        """The contracted supergraph ``G(P)`` (paper §1)."""
        return quotient_graph(self.graph, self._vertex_to_cluster, self.num_clusters)

    # ------------------------------------------------------------------
    # Diameter measurements
    # ------------------------------------------------------------------
    def strong_diameters(self) -> list[float]:
        """Strong diameter of every cluster (``inf`` when disconnected)."""
        return [strong_diameter(self.graph, cluster.vertices) for cluster in self.clusters]

    def weak_diameters(self) -> list[float]:
        """Weak diameter of every cluster."""
        return [weak_diameter(self.graph, cluster.vertices) for cluster in self.clusters]

    def max_strong_diameter(self) -> float:
        """The decomposition's strong diameter: max over clusters."""
        return max(self.strong_diameters(), default=0.0)

    def max_weak_diameter(self) -> float:
        """The decomposition's weak diameter: max over clusters."""
        return max(self.weak_diameters(), default=0.0)

    def disconnected_clusters(self) -> list[Cluster]:
        """Clusters whose induced subgraph is disconnected.

        Always empty for the paper's algorithm; typically non-empty for
        Linial–Saks (that is the whole point — experiment E10).
        """
        return [
            cluster
            for cluster, diam in zip(self.clusters, self.strong_diameters())
            if math.isinf(diam)
        ]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def is_partition(self) -> bool:
        """Whether the clusters exactly partition the vertex set."""
        total = sum(len(cluster) for cluster in self.clusters)
        return (
            total == self.graph.num_vertices
            and len(self._vertex_to_cluster) == self.graph.num_vertices
        )

    def is_proper_coloring(self) -> bool:
        """Whether adjacent clusters always have different colours."""
        for u, v in self.graph.edges():
            cu = self._vertex_to_cluster.get(u)
            cv = self._vertex_to_cluster.get(v)
            if cu is None or cv is None or cu == cv:
                continue
            if self.clusters[cu].color == self.clusters[cv].color:
                return False
        return True

    def validate(
        self,
        max_diameter: float | None = None,
        max_colors: int | None = None,
        strong: bool = True,
    ) -> None:
        """Check the full (D, χ) definition; raise on any violation.

        Parameters
        ----------
        max_diameter:
            If given, every cluster's (strong or weak) diameter must be at
            most this.
        max_colors:
            If given, at most this many colours may be used.
        strong:
            Whether the diameter requirement is strong (induced subgraph)
            or weak (host graph).
        """
        if not self.is_partition():
            raise DecompositionError("clusters do not partition the vertex set")
        for index, cluster in enumerate(self.clusters):
            if cluster.index != index:
                raise DecompositionError(
                    f"cluster at position {index} has index {cluster.index}"
                )
            if not cluster.vertices:
                raise DecompositionError(f"cluster {index} is empty")
        if not self.is_proper_coloring():
            raise DecompositionError("adjacent clusters share a colour")
        if max_colors is not None and self.num_colors > max_colors:
            raise DecompositionError(
                f"{self.num_colors} colours used, bound is {max_colors}"
            )
        if max_diameter is not None:
            diameters = self.strong_diameters() if strong else self.weak_diameters()
            for cluster, diam in zip(self.clusters, diameters):
                if diam > max_diameter:
                    kind = "strong" if strong else "weak"
                    raise DecompositionError(
                        f"cluster {cluster.index} has {kind} diameter {diam}, "
                        f"bound is {max_diameter}"
                    )

    def __repr__(self) -> str:
        return (
            f"NetworkDecomposition(n={self.graph.num_vertices}, "
            f"clusters={self.num_clusters}, colors={self.num_colors})"
        )
