"""The distributed Elkin–Neiman protocol on the synchronous simulator.

This is the paper's algorithm as an actual message-passing protocol.  Each
phase ``t`` has ``B_t + 2`` rounds:

* rounds ``1..B_t``: *broadcast* — every live vertex injects its radius
  ``r_v`` and forwards received radii one hop per round, carrying the
  origin's radius and the hop distance (``O(1)`` words);
* end of round ``B_t + 1``: every vertex has heard every broadcast within
  range (a distance-``d`` value arrives in round ``d + 1``) and applies the
  join rule ``m₁ − m₂ > 1`` locally;
* round ``B_t + 2``: joiners announce ``left`` to their neighbours and
  halt; survivors prune their neighbour lists and start phase ``t + 1``.

Two forwarding modes implement the paper's two message-size regimes:

* ``mode="full"`` forwards every newly arrived value — simple, but a
  vertex may relay many values in one round (LOCAL-style bandwidth);
* ``mode="toptwo"`` forwards only the two largest shifted values from its
  list, the paper's CONGEST optimisation (§2, end): "the third and onward
  values in v's list will not be used by any other vertex".  Messages are
  then ``O(1)`` words per edge per round.

Phase length ``B_t``:

* ``adaptive`` (default): ``B_t = max_v ⌊r_v⌋`` over live vertices,
  computed by the driver from the shared radius streams.  This reproduces
  the paper's idealised unbounded broadcast exactly, so the run is
  bit-identical to the centralized reference
  (:func:`repro.core.elkin_neiman.decompose` with ``use_range_cap=False``).
* ``fixed``: ``B_t = ⌊k⌋``, the budget Lemma 1 makes sufficient w.h.p.;
  broadcasts that would outrun it (probability ``≤ 2/c`` in total) are
  truncated.  Matches the centralized reference with ``use_range_cap=True``.

Radii are drawn from streams keyed by ``(seed, phase, vertex)`` — each node
derives its own radius from common knowledge (the seed) plus local identity,
with no communication.  The driver re-derives the same values for
bookkeeping (phase lengths, truncation events); it never tells the nodes
anything they could not know.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Sequence

from ..distributed.message import Message
from ..distributed.metrics import NetworkStats
from ..distributed.node import Context, NodeAlgorithm
from ..distributed.synchronizer import build_network
from ..errors import ParameterError, SimulationError
from ..graphs.activeset import ActiveSet
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from ..telemetry import maybe_span, resolve
from .decomposition import NetworkDecomposition
from .params import PhaseSchedule, Theorem1Schedule
from .shifts import TruncationEvent, find_truncation_events, sample_phase_radii, sample_radius

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

__all__ = ["ENNodeAlgorithm", "DistributedRunResult", "decompose_distributed"]

ForwardMode = Literal["full", "toptwo"]

_BCAST = "b"
_LEFT = "left"


class ENNodeAlgorithm(NodeAlgorithm):
    """Node-local state machine of the Elkin–Neiman protocol.

    The driver calls :meth:`begin_phase` between phases (phase boundaries
    are common knowledge in a synchronous network); everything else happens
    through messages.
    """

    def __init__(self, vertex: int, seed: int, mode: ForwardMode) -> None:
        if mode not in ("full", "toptwo"):
            raise ParameterError(f"mode must be 'full' or 'toptwo', got {mode!r}")
        self.vertex = vertex
        self.seed = seed
        self.mode: ForwardMode = mode
        # Lifetime state.
        self.active_neighbors: set[int] | None = None
        self.joined_phase: int | None = None
        self.center: int | None = None
        # Per-phase state.
        self.phase = 0
        self.radius = 0.0
        self.broadcast_rounds = 0
        self.round_in_phase = 0
        self.entries: dict[int, tuple[float, int]] = {}
        self._new_origins: list[int] = []
        self._sent_origins: set[int] = set()

    # ------------------------------------------------------------------
    # Control plane (driver)
    # ------------------------------------------------------------------
    def begin_phase(self, phase: int, beta: float, broadcast_rounds: int) -> None:
        """Arm the node for phase ``phase`` with rate ``beta``.

        ``broadcast_rounds`` is the phase's broadcast budget ``B_t``
        (``⌊k⌋`` in fixed mode; the global max range in adaptive mode).
        The node draws its radius from the shared stream — the same value
        the centralized reference uses.
        """
        self.phase = phase
        self.radius = sample_radius(self.seed, phase, self.vertex, beta)
        self.broadcast_rounds = broadcast_rounds
        self.round_in_phase = 0
        self.entries = {self.vertex: (self.radius, 0)}
        self._new_origins = [self.vertex]
        self._sent_origins = set()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def on_start(self, ctx: Context) -> None:
        self.active_neighbors = set(ctx.neighbors)

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        self.round_in_phase += 1
        assert self.active_neighbors is not None
        for message in inbox:
            payload = message.payload
            if payload[0] == _LEFT:
                self.active_neighbors.discard(message.sender)
                continue
            _tag, origin, radius, distance = payload
            known = self.entries.get(origin)
            if known is None or distance < known[1]:
                self.entries[origin] = (radius, distance)
                self._new_origins.append(origin)
        if self.round_in_phase <= self.broadcast_rounds:
            self._forward(ctx)
        if self.round_in_phase == self.broadcast_rounds + 1:
            self._decide()
        elif self.round_in_phase == self.broadcast_rounds + 2:
            if self.joined_phase == self.phase:
                for neighbor in sorted(self.active_neighbors):
                    ctx.send(neighbor, (_LEFT,))
                ctx.halt()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _eligible(self, origin: int) -> bool:
        """Whether ``origin``'s value may travel one more hop."""
        radius, distance = self.entries[origin]
        return distance + 1 <= math.floor(radius)

    def _shifted(self, origin: int) -> float:
        radius, distance = self.entries[origin]
        return radius - distance

    def _forward(self, ctx: Context) -> None:
        assert self.active_neighbors is not None
        if self.mode == "full":
            outgoing = [o for o in self._new_origins if self._eligible(o)]
        else:
            eligible = [o for o in self.entries if self._eligible(o)]
            eligible.sort(key=lambda o: (-self._shifted(o), o))
            outgoing = [o for o in eligible[:2] if o not in self._sent_origins]
        self._new_origins = []
        for origin in outgoing:
            self._sent_origins.add(origin)
            radius, distance = self.entries[origin]
            for neighbor in sorted(self.active_neighbors):
                ctx.send(neighbor, (_BCAST, origin, radius, distance + 1))

    def _decide(self) -> None:
        best = -math.inf
        best_origin = -1
        second = -math.inf
        for origin, (radius, distance) in self.entries.items():
            value = radius - distance
            if value > best or (value == best and origin < best_origin):
                if best_origin != -1:
                    second = max(second, best)
                best, best_origin = value, origin
            else:
                second = max(second, value)
        if len(self.entries) == 1:
            second = 0.0
        if best - second > 1.0:
            self.joined_phase = self.phase
            self.center = best_origin


@dataclass
class DistributedRunResult:
    """Everything a distributed run produced.

    Attributes
    ----------
    decomposition:
        The strong-diameter network decomposition (colour = phase − 1).
    stats:
        Communication costs (rounds, messages, words, peak words per edge
        per round — the CONGEST figure of merit).
    phases:
        Number of phases executed.
    rounds_per_phase:
        ``B_t + 2`` for each phase.
    nominal_phases:
        The schedule's promised budget.
    exhausted_within_nominal:
        Whether the run finished within it (Corollary 7 event).
    truncation_events:
        Lemma-1 bad events observed (empty w.p. ``≥ 1 − 2/c``).
    """

    decomposition: NetworkDecomposition
    stats: NetworkStats
    phases: int
    rounds_per_phase: list[int]
    nominal_phases: int
    exhausted_within_nominal: bool
    truncation_events: list[TruncationEvent] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        """Total communication rounds across all phases."""
        return sum(self.rounds_per_phase)


class _SyncENPhases:
    """Reference phase executor: one :class:`ENNodeAlgorithm` per vertex
    stepped by :class:`SyncNetwork` (the pre-batch-engine behaviour,
    preserved verbatim) — or, with ``backend="async"``, by the
    α-synchronized :class:`~repro.distributed.async_net.AsyncNetwork`
    under a delivery schedule and fault plan."""

    def __init__(
        self,
        graph: Graph,
        seed: int,
        mode: ForwardMode,
        word_budget: int | None,
        rounds=None,
        causal=None,
        backend: str = "sync",
        delivery: str = "fifo",
        faults=None,
    ) -> None:
        self._seed = seed
        self._network = build_network(
            graph,
            [ENNodeAlgorithm(v, seed, mode) for v in range(graph.num_vertices)],
            seed=seed,
            word_budget=word_budget,
            rounds=rounds,
            causal=causal,
            backend=backend,
            delivery=delivery,
            faults=faults,
        )
        self._network.start()

    @property
    def stats(self) -> NetworkStats:
        return self._network.stats

    @property
    def async_stats(self):
        """Adversary counters (``None`` on the sync engine)."""
        return getattr(self._network, "async_stats", None)

    def finish(self) -> None:
        self._network.finish_rounds()

    def run_phase(self, phase, beta, budget, radii):
        # Nodes re-derive their own radii from (seed, phase, beta); the
        # driver's ``radii`` dict doubles as the live-vertex list here.
        for v in radii:
            algorithm = self._network.algorithm(v)
            assert isinstance(algorithm, ENNodeAlgorithm)
            algorithm.begin_phase(phase, beta, budget)
        self._network.run_rounds(budget + 2)
        joined: dict[int, int] = {}
        for v in radii:
            algorithm = self._network.algorithm(v)
            assert isinstance(algorithm, ENNodeAlgorithm)
            if algorithm.joined_phase == phase:
                joined[v] = algorithm.center if algorithm.center is not None else v
        return joined


def decompose_distributed(
    graph: Graph,
    k: float | None = None,
    c: float = 4.0,
    schedule: PhaseSchedule | None = None,
    seed: int = DEFAULT_SEED,
    mode: ForwardMode = "toptwo",
    adaptive_phase_length: bool = True,
    word_budget: int | None = None,
    max_phases: int | None = None,
    backend: str = "sync",
    delivery: str = "fifo",
    faults: str | None = None,
    telemetry: "Telemetry | None" = None,
) -> DistributedRunResult:
    """Run the distributed protocol to completion on ``graph``.

    Parameters
    ----------
    graph:
        Communication topology (also the graph being decomposed).
    k, c:
        Theorem 1 parameters, used when ``schedule`` is not given.
    schedule:
        Explicit phase schedule (pass a
        :class:`~repro.core.params.Theorem2Schedule` /
        :class:`~repro.core.params.Theorem3Schedule` to run those variants
        distributedly).
    seed:
        Root seed shared by nodes and driver.
    mode:
        ``"toptwo"`` (paper's CONGEST optimisation, default) or ``"full"``.
    adaptive_phase_length:
        See the module docstring; ``True`` matches the uncapped centralized
        reference exactly, ``False`` uses the paper's fixed ``⌊k⌋`` budget.
    word_budget:
        Optional per-edge-per-round word cap; the engine raises
        :class:`~repro.errors.CongestViolation` when exceeded.
    max_phases:
        Hard safety cap (default ``10 × nominal + 100``).
    backend:
        ``"sync"`` (default) steps one :class:`ENNodeAlgorithm` per vertex
        through :class:`SyncNetwork` — the reference implementation.
        ``"batch"`` executes the identical protocol columnarly on the
        batch round engine (:class:`repro.engine.en.BatchENPhases`);
        outputs, round counts and stats are bit-identical, only the
        wall-clock differs (see ``benchmarks/bench_engine.py``).
        ``"async"`` steps the same node algorithms on the α-synchronized
        :class:`~repro.distributed.async_net.AsyncNetwork` — bit-identical
        to ``"sync"`` under the default FIFO delivery with no faults
        (``docs/async.md``).
    delivery:
        Delivery-schedule spec for ``backend="async"``
        (:mod:`repro.distributed.schedule`): ``"fifo"`` (default),
        ``"random:B"``, ``"latest:B"``, ``"starve:B[:F]"``.
    faults:
        Fault-plan spec for ``backend="async"``
        (:mod:`repro.distributed.faults`), e.g.
        ``"crash:3@2-6;drop:0.05"``; ``None`` for a fault-free run.
    telemetry:
        Explicit :class:`~repro.telemetry.Telemetry` collector, or
        ``None`` to use the ambient one (``--trace`` /
        ``REPRO_TELEMETRY``).  When enabled the run emits phase spans
        and the ``en.rounds`` per-round metrics stream — identically
        keyed on both backends.

    Returns
    -------
    DistributedRunResult
    """
    if mode not in ("full", "toptwo"):
        raise ParameterError(f"mode must be 'full' or 'toptwo', got {mode!r}")
    if backend not in ("sync", "batch", "async"):
        raise ParameterError(
            f"backend must be 'sync', 'batch' or 'async', got {backend!r}"
        )
    if backend != "async" and (delivery != "fifo" or faults not in (None, "", "none")):
        raise ParameterError(
            f"delivery/faults require backend='async', got backend={backend!r}"
        )
    if schedule is None:
        if k is None:
            raise ParameterError("either k or an explicit schedule is required")
        schedule = Theorem1Schedule(n=max(graph.num_vertices, 1), k=k, c=c)
    if max_phases is None:
        max_phases = 10 * schedule.nominal_phases + 100
    n = graph.num_vertices
    tel = resolve(telemetry)
    rounds = (
        tel.round_stream("en.rounds", backend=backend, mode=mode)
        if tel is not None
        else None
    )
    causal = tel.causal_log("en.causal") if tel is not None else None
    if backend in ("sync", "async"):
        runner = _SyncENPhases(
            graph, seed, mode, word_budget, rounds, causal,
            backend=backend, delivery=delivery, faults=faults,
        )
    else:
        from ..engine.en import BatchENPhases

        runner = BatchENPhases(graph, mode, word_budget, rounds=rounds, causal=causal)
    active = ActiveSet.full(n)
    blocks: list[list[int]] = []
    centers: dict[int, int] = {}
    rounds_per_phase: list[int] = []
    truncations: list[TruncationEvent] = []
    phase = 0
    span_attrs = {"backend": backend, "mode": mode, "n": n}
    if backend == "async":
        # The replay key: (seed, delivery, faults) pins the adversary.
        span_attrs["delivery"] = delivery
        span_attrs["faults"] = faults or "none"
    phase_hist = tel.histogram("en.phase_seconds") if tel is not None else None
    with maybe_span(tel, "en.decompose", **span_attrs) as run_span:
        while active:
            phase += 1
            if phase > max_phases:
                raise SimulationError(
                    f"graph not exhausted after {max_phases} phases "
                    f"(nominal budget {schedule.nominal_phases})"
                )
            beta = schedule.beta(phase)
            with maybe_span(tel, "phase", phase=phase) as phase_span:
                # Driver-side rederivation of the radii (control plane
                # bookkeeping only — each node draws its own value from the
                # same stream; the batch executor consumes these exact values).
                radii = sample_phase_radii(seed, phase, active, beta)
                truncations.extend(
                    find_truncation_events(
                        radii, phase, getattr(schedule, "k", math.inf)
                    )
                )
                if adaptive_phase_length:
                    budget = max(
                        (math.floor(r) for r in radii.values()), default=0
                    )
                else:
                    budget = schedule.range_cap(phase)
                joined = runner.run_phase(phase, beta, budget, radii)
                if phase_span is not None:
                    phase_span.annotate(budget=budget)
                    phase_span.add("joined", len(joined))
            if phase_span is not None:
                phase_hist.record(phase_span.seconds)
            rounds_per_phase.append(budget + 2)
            blocks.append(sorted(joined))
            centers.update(joined)
            active -= joined.keys()
        if tel is not None:
            runner.finish()
            run_span.add("phases", phase)
            run_span.add("rounds", sum(rounds_per_phase))
            async_stats = getattr(runner, "async_stats", None)
            if async_stats is not None:
                run_span.annotate(**async_stats.as_dict())
    decomposition = NetworkDecomposition.from_blocks(graph, blocks, centers)
    return DistributedRunResult(
        decomposition=decomposition,
        stats=runner.stats,
        phases=phase,
        rounds_per_phase=rounds_per_phase,
        nominal_phases=schedule.nominal_phases,
        exhausted_within_nominal=phase <= schedule.nominal_phases,
        truncation_events=truncations,
    )
