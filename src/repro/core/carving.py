"""The single-phase carving kernel (paper §2, "Construction").

Given the current graph :math:`G_t` (as an active vertex set) and one
radius ``r_v`` per active vertex, this module computes the block
:math:`W_t`:

1. every vertex ``v`` *broadcasts* ``r_v`` to its ``⌊r_v⌋``-neighbourhood
   in :math:`G_t` — here, a bounded BFS over the active set;
2. every vertex ``y`` records ``m_i = r_{v_i} − d_{G_t}(y, v_i)`` for each
   broadcast that reaches it (its own included, with ``m = r_y``);
3. ``y`` joins :math:`W_t` **iff** ``m₁ − m₂ > 1``, where ``m₁ ≥ m₂`` are
   the two largest recorded values and ``m₂ = 0`` when only one broadcast
   arrived.  The argmax vertex ``v₁`` is ``y``'s *center*.

The same kernel runs inside the centralized drivers (Theorems 1–3) and is
the ground truth the distributed protocol is cross-validated against.

Tie-breaking: radii are continuous, so exact ties between shifted values
have probability zero; for bit-level determinism we still order competitors
by ``(m, -origin)`` so equal values resolve toward the smaller origin id.
This choice can only matter on measure-zero events and never affects the
guarantees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Container, Mapping

from ..errors import ParameterError
from ..graphs._kernel import bfs_levels
from ..graphs.activeset import ActiveSet, blocked_from_active
from ..graphs.graph import Graph

__all__ = ["TopTwo", "PhaseOutcome", "carve_block", "broadcast_reach"]


@dataclass
class TopTwo:
    """The two largest shifted values seen by one vertex.

    ``best`` / ``second`` are the values ``m₁`` / ``m₂``; ``best_origin``
    is the center candidate ``v₁``.  ``second`` defaults to 0.0, the
    paper's convention when no second broadcast arrives.
    """

    best: float = -math.inf
    best_origin: int = -1
    second: float = 0.0
    second_origin: int = -1
    count: int = 0

    def offer(self, value: float, origin: int) -> None:
        """Account for a broadcast with shifted value ``value`` from ``origin``."""
        self.count += 1
        if value > self.best or (value == self.best and origin < self.best_origin):
            if self.count > 1:
                self.second, self.second_origin = self.best, self.best_origin
            self.best, self.best_origin = value, origin
        elif self.count > 1 and (
            self.second_origin == -1
            or value > self.second
            or (value == self.second and origin < self.second_origin)
        ):
            self.second, self.second_origin = value, origin

    @property
    def gap(self) -> float:
        """``m₁ − m₂`` (with the ``m₂ = 0`` convention for lone broadcasts)."""
        second = self.second if self.count > 1 else 0.0
        return self.best - second

    @property
    def joins(self) -> bool:
        """The paper's join rule: ``m₁ − m₂ > 1``."""
        return self.gap > 1.0

    def joins_with_threshold(self, threshold: float) -> bool:
        """Generalised join rule ``m₁ − m₂ > threshold`` (ablation only).

        The paper's constant is 1 — exactly the per-hop decay of the
        shifted values, which is what makes Claim 3 (shortest-path
        closure, hence *strong* diameter) go through.  Thresholds below 1
        break that closure and produce disconnected clusters; thresholds
        above 1 only shrink blocks and slow exhaustion.  Exercised by
        ``benchmarks/bench_ablation.py``.
        """
        return self.gap > threshold


@dataclass
class PhaseOutcome:
    """Result of carving one block.

    Attributes
    ----------
    block:
        The carved block ``W_t`` (vertices joining this phase).
    center_of:
        For every vertex of ``block``, the center it chose.
    top_two:
        Per active vertex, its :class:`TopTwo` record — kept so analyses
        (gap distributions, Lemma 5 checks) can inspect the full outcome.
    """

    block: set[int] = field(default_factory=set)
    center_of: dict[int, int] = field(default_factory=dict)
    top_two: dict[int, TopTwo] = field(default_factory=dict)


def broadcast_reach(radius: float, range_cap: int | None) -> int:
    """Hop range of a broadcast with radius ``radius``: ``⌊r⌋``, optionally capped.

    The cap models the fixed per-phase round budget of the distributed
    protocol (``k`` rounds — Lemma 1 guarantees the cap is w.h.p. inactive).
    """
    if radius < 0:
        raise ParameterError(f"radius must be >= 0, got {radius}")
    reach = math.floor(radius)
    if range_cap is not None:
        reach = min(reach, range_cap)
    return reach


def carve_block(
    graph: Graph,
    active: Container[int] | ActiveSet,
    radii: Mapping[int, float],
    range_cap: int | None = None,
    gap_threshold: float = 1.0,
) -> PhaseOutcome:
    """Carve one block out of ``G[active]`` using the given radii.

    Parameters
    ----------
    graph:
        Host graph.
    active:
        The vertices of the current graph :math:`G_t`.  Must contain
        exactly the keys of ``radii``.
    radii:
        ``vertex -> r_v`` for every active vertex.
    range_cap:
        Optional hop cap on every broadcast (the distributed protocol's
        per-phase round budget; ``None`` reproduces the paper's idealised
        unbounded broadcast).
    gap_threshold:
        The join rule's gap (paper: 1.0).  Exposed **for ablation
        studies only** — any value below 1 voids the strong-diameter
        guarantee (see :meth:`TopTwo.joins_with_threshold`).

    Returns
    -------
    PhaseOutcome
        Block, chosen centers and per-vertex top-two records.

    Notes
    -----
    Every vertex hears at least its own broadcast (distance 0 is always
    within range since ``⌊r⌋ ≥ 0``), so ``m₁`` is always defined — matching
    the paper's observation that an isolated vertex joins iff ``r_y > 1``.
    """
    outcome = PhaseOutcome()
    top_two = outcome.top_two
    # One shared scratch mask (1 = inactive-or-visited) serves every
    # broadcast of the phase: each bounded BFS marks the vertices it
    # reaches and un-marks them afterwards, so the phase allocates O(n)
    # once instead of per broadcast.
    scratch = blocked_from_active(graph.num_vertices, active)
    for v in sorted(radii):
        if not 0 <= v < graph.num_vertices or scratch[v]:
            raise ParameterError(f"radius given for inactive vertex {v}")
        top_two[v] = TopTwo()
    for v in sorted(radii):
        r_v = radii[v]
        reach = broadcast_reach(r_v, range_cap)
        # Bounded BFS from v over the active set, offering r_v - d to
        # every vertex reached (level d).
        top_two[v].offer(r_v, v)
        if reach == 0:
            continue
        levels = bfs_levels(graph, [v], scratch, radius=reach)
        for distance in range(1, len(levels)):
            value = r_v - distance
            for w in levels[distance]:
                top_two[w].offer(value, v)
        for level in levels:
            for w in level:
                scratch[w] = 0
    for y, record in top_two.items():
        if record.joins_with_threshold(gap_threshold):
            outcome.block.add(y)
            outcome.center_of[y] = record.best_origin
    return outcome
