"""Theorem 3: the high-radius regime — few colours, large diameter.

When fewer than ``ln n`` colours are wanted, invert the trade-off: for a
target of ``λ ≤ ln n`` colours take ``k = (cn)^{1/λ}·ln(cn)`` and run the
Theorem 1 procedure.  Each phase now carves such a large fraction of the
graph that ``λ`` phases exhaust it w.h.p. (§2.2: survival probability
``≤ (ln(cn)/k)^λ ≤ 1/(cn)``).

Guarantee: with probability ``≥ 1 − 3/c`` (``c > 3``), a strong
``(2(cn)^{1/λ}·ln(cn), λ)`` decomposition in ``λ·(cn)^{1/λ}·ln(cn)``
rounds.
"""

from __future__ import annotations

from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from .decomposition import NetworkDecomposition
from .driver import DecompositionTrace, run_carving_process
from .params import Theorem3Schedule

__all__ = ["decompose"]


def decompose(
    graph: Graph,
    lam: int,
    c: float = 4.0,
    seed: int = DEFAULT_SEED,
    use_range_cap: bool = False,
    max_phases: int | None = None,
) -> tuple[NetworkDecomposition, DecompositionTrace]:
    """Compute a strong ``(2(cn)^{1/λ}·ln(cn), λ)`` decomposition.

    Parameters
    ----------
    graph:
        Input graph.
    lam:
        Target number of colours ``λ ≥ 1`` (the paper takes
        ``λ ≤ ln n``).
    c:
        Confidence parameter, ``c > 3``.
    seed, use_range_cap, max_phases:
        As in :func:`repro.core.elkin_neiman.decompose`.

    Returns
    -------
    (NetworkDecomposition, DecompositionTrace)
        The trace's ``exhausted_within_nominal`` records whether ``λ``
        phases sufficed (true w.p. ``≥ 1 − 1/c``); on the rare failure the
        driver keeps carving, so ``num_colors`` can exceed ``λ``.
    """
    schedule = Theorem3Schedule.from_lambda(max(graph.num_vertices, 1), lam, c=c)
    return run_carving_process(
        graph,
        schedule,
        seed=seed,
        use_range_cap=use_range_cap,
        max_phases=max_phases,
    )
