"""Theorem 1: the basic Elkin–Neiman strong-diameter decomposition.

For ``1 ≤ k ≤ ln n`` and ``c > 3``, carve blocks with exponential radii of
rate ``β = ln(cn)/k``.  With probability at least ``1 − 3/c`` the result is
a strong ``(2k−2, (cn)^{1/k}·ln(cn))`` network decomposition and the
distributed implementation takes ``k·(cn)^{1/k}·ln(cn)`` rounds.

This module provides the centralized reference implementation; the
message-passing protocol lives in :mod:`repro.core.distributed_en` and is
cross-validated against this one.

Example
-------
>>> from repro.graphs import erdos_renyi
>>> from repro.core.elkin_neiman import decompose
>>> graph = erdos_renyi(100, 0.05, seed=1)
>>> decomposition, trace = decompose(graph, k=4, seed=7)
>>> decomposition.max_strong_diameter() <= 2 * 4 - 2 or trace.had_truncation_event
True
"""

from __future__ import annotations

from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from .decomposition import NetworkDecomposition
from .driver import DecompositionTrace, run_carving_process
from .params import Theorem1Schedule

__all__ = ["decompose"]


def decompose(
    graph: Graph,
    k: float,
    c: float = 4.0,
    seed: int = DEFAULT_SEED,
    use_range_cap: bool = False,
    max_phases: int | None = None,
) -> tuple[NetworkDecomposition, DecompositionTrace]:
    """Compute a strong ``(2k−2, (cn)^{1/k}·ln(cn))`` decomposition.

    Parameters
    ----------
    graph:
        Input graph (need not be connected).
    k:
        Radius parameter, ``k ≥ 1``.  The paper takes integer
        ``k ≤ ln n``; larger or fractional ``k`` is accepted (Theorem 3 is
        exactly that regime).
    c:
        Confidence parameter, ``c > 3``; all guarantees hold with
        probability ``≥ 1 − 3/c``.
    seed:
        Root seed for the per-``(phase, vertex)`` radius streams.
    use_range_cap:
        Truncate broadcasts at ``⌊k⌋`` hops (the distributed protocol's
        fixed phase budget) instead of the idealised ``⌊r_v⌋``.
    max_phases:
        Optional hard cap on phases (safety; see
        :func:`repro.core.driver.run_carving_process`).

    Returns
    -------
    (NetworkDecomposition, DecompositionTrace)
        Colour ``t-1`` marks the block carved in phase ``t``.
    """
    schedule = Theorem1Schedule(n=max(graph.num_vertices, 1), k=k, c=c)
    return run_carving_process(
        graph,
        schedule,
        seed=seed,
        use_range_cap=use_range_cap,
        max_phases=max_phases,
    )
