"""The paper's contribution: strong-diameter network decomposition.

Centralized reference implementations of Theorems 1–3
(:mod:`~repro.core.elkin_neiman`, :mod:`~repro.core.staged`,
:mod:`~repro.core.high_radius`), the distributed message-passing protocol
(:mod:`~repro.core.distributed_en`), the shared single-phase carving
kernel (:mod:`~repro.core.carving`), exponential-shift sampling
(:mod:`~repro.core.shifts`), parameter/bound calculators
(:mod:`~repro.core.params`) and the result types
(:mod:`~repro.core.decomposition`).
"""

from . import elkin_neiman, high_radius, staged
from .carving import PhaseOutcome, TopTwo, broadcast_reach, carve_block
from .decomposition import Cluster, NetworkDecomposition
from .distributed_en import (
    DistributedRunResult,
    ENNodeAlgorithm,
    decompose_distributed,
)
from .driver import DecompositionTrace, PhaseTrace, run_carving_process
from .params import (
    Bounds,
    PhaseSchedule,
    Theorem1Schedule,
    Theorem2Schedule,
    Theorem3Schedule,
    theorem1_bounds,
    theorem2_bounds,
    theorem3_bounds,
)
from .shifts import (
    TruncationEvent,
    find_truncation_events,
    sample_phase_radii,
    sample_radius,
)

__all__ = [
    "Bounds",
    "Cluster",
    "DecompositionTrace",
    "DistributedRunResult",
    "ENNodeAlgorithm",
    "NetworkDecomposition",
    "PhaseOutcome",
    "PhaseSchedule",
    "PhaseTrace",
    "Theorem1Schedule",
    "Theorem2Schedule",
    "Theorem3Schedule",
    "TopTwo",
    "TruncationEvent",
    "broadcast_reach",
    "carve_block",
    "decompose_distributed",
    "elkin_neiman",
    "find_truncation_events",
    "high_radius",
    "run_carving_process",
    "sample_phase_radii",
    "sample_radius",
    "staged",
    "theorem1_bounds",
    "theorem2_bounds",
    "theorem3_bounds",
]
