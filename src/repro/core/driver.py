"""Centralized carving-process driver.

Runs the phase loop of the paper's construction (§2) to completion:
sample radii, carve a block, colour it with the phase index, shrink the
graph, repeat until empty.  The theorem-specific behaviour (how β evolves,
how many phases are promised) is injected as a
:class:`~repro.core.params.PhaseSchedule`.

The paper's statement succeeds with probability ``1 − O(1)/c`` — on the
failure event some vertices survive the nominal phase budget.  This driver
is the natural Las-Vegas completion: it keeps carving until the graph is
exhausted (still geometrically fast) and records in the trace whether the
nominal budget held, so experiments can measure the failure frequency
without ever producing a partial decomposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ParameterError, SimulationError
from ..graphs.activeset import ActiveSet
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from .carving import carve_block
from .decomposition import NetworkDecomposition
from .params import PhaseSchedule
from .shifts import TruncationEvent, find_truncation_events, sample_phase_radii

__all__ = ["PhaseTrace", "DecompositionTrace", "run_carving_process"]


@dataclass(frozen=True)
class PhaseTrace:
    """What happened in one phase of the carving process."""

    phase: int
    beta: float
    active_before: int
    block_size: int
    max_radius: float
    truncation_events: tuple[TruncationEvent, ...]


@dataclass
class DecompositionTrace:
    """Full record of a carving run, for analysis and experiments.

    Attributes
    ----------
    phases:
        Per-phase traces, in order.
    nominal_phases:
        The schedule's promised phase budget (``λ`` for Theorem 1).
    exhausted_within_nominal:
        Whether the graph emptied within the budget (Corollary 7 event).
    truncation_events:
        All Lemma-1 bad events across phases (empty w.p. ``≥ 1 − 2/c``).
    survivors:
        ``survivors[t]`` is the number of live vertices after phase
        ``t + 1`` — the empirical curve behind Claim 6.
    """

    phases: list[PhaseTrace] = field(default_factory=list)
    nominal_phases: int = 0
    exhausted_within_nominal: bool = True
    truncation_events: list[TruncationEvent] = field(default_factory=list)
    survivors: list[int] = field(default_factory=list)

    @property
    def total_phases(self) -> int:
        """Number of phases actually executed."""
        return len(self.phases)

    @property
    def had_truncation_event(self) -> bool:
        """Whether any Lemma-1 event occurred (``E_v`` for some ``v``)."""
        return bool(self.truncation_events)


def run_carving_process(
    graph: Graph,
    schedule: PhaseSchedule,
    seed: int = DEFAULT_SEED,
    use_range_cap: bool = False,
    max_phases: int | None = None,
) -> tuple[NetworkDecomposition, DecompositionTrace]:
    """Run the full carving process on ``graph`` under ``schedule``.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    schedule:
        Phase schedule (Theorem 1, 2 or 3 parameters).
    seed:
        Root seed; radii are drawn from per-``(phase, vertex)`` streams, so
        the distributed protocol draws identical values.
    use_range_cap:
        If ``True``, broadcasts are truncated at ``schedule.range_cap(t)``
        hops — the behaviour of the fixed-phase-length distributed
        protocol.  If ``False`` (default), broadcasts travel the full
        ``⌊r_v⌋`` hops as in the paper's idealised description.
    max_phases:
        Hard safety cap; defaults to ``10 × nominal + 100``.  Exceeding it
        raises :class:`SimulationError` (it indicates a bug, not bad luck:
        the probability is astronomically small).

    Returns
    -------
    (NetworkDecomposition, DecompositionTrace)
        The decomposition (phase index = colour) and the run trace.
    """
    if max_phases is None:
        max_phases = 10 * schedule.nominal_phases + 100
    active = ActiveSet.full(graph.num_vertices)
    blocks: list[list[int]] = []
    centers: dict[int, int] = {}
    trace = DecompositionTrace(nominal_phases=schedule.nominal_phases)
    phase = 0
    while active:
        phase += 1
        if phase > max_phases:
            raise SimulationError(
                f"graph not exhausted after {max_phases} phases "
                f"(nominal budget {schedule.nominal_phases}); "
                "this indicates a bug in the schedule or kernel"
            )
        beta = schedule.beta(phase)
        radii = sample_phase_radii(seed, phase, active, beta)
        events = find_truncation_events(radii, phase, getattr(schedule, "k", math.inf))
        cap = schedule.range_cap(phase) if use_range_cap else None
        outcome = carve_block(graph, active, radii, range_cap=cap)
        blocks.append(sorted(outcome.block))
        centers.update(outcome.center_of)
        active -= outcome.block
        trace.phases.append(
            PhaseTrace(
                phase=phase,
                beta=beta,
                active_before=len(radii),
                block_size=len(outcome.block),
                max_radius=max(radii.values(), default=0.0),
                truncation_events=tuple(events),
            )
        )
        trace.truncation_events.extend(events)
        trace.survivors.append(len(active))
    trace.exhausted_within_nominal = len(trace.phases) <= schedule.nominal_phases
    decomposition = NetworkDecomposition.from_blocks(graph, blocks, centers)
    return decomposition, trace
