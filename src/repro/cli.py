"""Command-line interface: ``python -m repro <command> ...``.

Subcommands
-----------
``decompose``
    Run Theorem 1/2/3 on a generated graph and print the quality report.
``compare``
    Head-to-head Elkin–Neiman vs Linial–Saks on one graph (the paper's
    strong-vs-weak story).
``apps``
    Solve MIS / colouring / matching over a decomposition and verify.
``spanner``
    Build and measure the cluster spanner of a decomposition.
``theory``
    Print the §1.2 closed-form comparison table for a given ``n``.
``serve``
    Long-lived oracle daemon: newline-delimited JSON over TCP,
    micro-batched queries, optional shared-memory worker pool, LRU
    answer cache (see ``docs/serving.md``).
``loadgen``
    Closed-/open-loop load generator against a running ``serve``
    daemon; reports p50/p99 latency and throughput, optionally
    validates served answers against a locally built oracle.
``bench``
    Run a registered experiment scenario through the orchestration
    runtime: parallel trials (``--workers``), content-addressed result
    cache, aggregated table.  ``bench --list`` shows the registry.
``campaign``
    Multi-scenario sweeps: ``run`` / ``resume`` a registered campaign
    with a crash-safe journal (interrupt at any point, resume to
    byte-identical output), ``status`` an in-flight run, ``compare``
    two JSON artifacts as a perf-regression gate, ``list`` the
    registry.
``trace``
    Inspect telemetry traces recorded with ``--trace PATH`` (or
    ``REPRO_TELEMETRY=PATH``): ``summarize`` the span tree with
    self/cumulative wall time (``--sort self|cum|count`` reorders),
    print the per-round convergence ``timeline`` of a protocol run,
    ``diff`` two traces' span summaries, or ``export`` a trace as
    Chrome trace-event JSON loadable in Perfetto
    (``--format chrome|jsonl``).

The global ``--profile HZ`` flag (or ``REPRO_PROFILE=HZ``) runs any
command under the stdlib sampling profiler: the collapsed flame table
(samples attributed to the open span path) is printed to stderr at
exit and mirrored into the active trace file, if any.

Graphs are described by compact specs: ``er:200:0.03``, ``grid:10:12``,
``path:50``, ``cycle:64``, ``tree:2:5``, ``hypercube:6``, ``conn:300:0.01``,
``regular:100:4``, ``ws:100:4:0.1`` (see :func:`parse_graph_spec`).
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import time
from typing import Sequence

from .analysis import comparison_rows, format_records, report
from .applications import (
    build_spanner,
    run_coloring,
    run_matching,
    run_mis,
)
from .applications.verify import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_vertex_coloring,
)
from .baselines import linial_saks
from .core import elkin_neiman, high_radius, staged
from .errors import ParameterError
from .experiments import (
    CAMPAIGNS,
    CampaignJournal,
    JOURNAL_FILENAME,
    ResultCache,
    SCENARIOS,
    aggregate_experiment,
    build_experiment,
    campaign_names,
    campaign_payload,
    compare_paths,
    default_cache,
    environment_block,
    parse_tolerances,
    per_trial_rows,
    plan_campaign,
    render_campaign,
    run_campaign,
    run_experiment,
    scenario_names,
)
from .graphs import parse_graph_spec
from .oracle import build_oracle, estimates_checksum, validate_sample
from .oracle import load as load_tables
from .rng import DEFAULT_SEED, stream
from .serving import (
    ServeClient,
    ServerConfig,
    default_workers,
    run_closed_loop,
    run_open_loop,
    run_server,
    sample_pairs,
)
from .telemetry import (
    SamplingProfiler,
    Telemetry,
    configure,
    configure_profile,
    parse_profile_setting,
    parse_setting,
    read_trace,
    reset_profile,
    resolve,
    resolve_profile,
    shutdown,
)
from .telemetry.critical import critical_path, lag_timeline
from .telemetry.export import export_text
from .telemetry.report import (
    causality_table,
    diff_summaries,
    round_timeline,
    summarize_spans,
)

__all__ = ["parse_graph_spec", "main"]


def _cmd_decompose(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph, seed=args.seed)
    if args.theorem == 1:
        decomposition, trace = elkin_neiman.decompose(
            graph, k=args.k, c=args.c, seed=args.seed
        )
    elif args.theorem == 2:
        decomposition, trace = staged.decompose(
            graph, k=args.k, c=max(args.c, 6.0), seed=args.seed
        )
    else:
        decomposition, trace = high_radius.decompose(
            graph, lam=args.colors, c=args.c, seed=args.seed
        )
    decomposition.validate()
    q = report(decomposition)
    print(format_records([q.row()], title=f"Theorem {args.theorem} on {args.graph}"))
    print(f"\nphases: {trace.total_phases} (budget {trace.nominal_phases}, "
          f"within: {trace.exhausted_within_nominal})")
    print(f"truncation events: {len(trace.truncation_events)}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph, seed=args.seed)
    k = args.k or max(2, math.ceil(math.log(max(graph.num_vertices, 2))))
    en, _ = elkin_neiman.decompose(graph, k=k, seed=args.seed)
    ls, _ = linial_saks.decompose(graph, k=k, seed=args.seed)
    rows = []
    for name, decomposition in (("EN16 (strong)", en), ("LS93 (weak)", ls)):
        q = report(decomposition)
        rows.append(
            {
                "algorithm": name,
                "colors": q.num_colors,
                "strongD": q.max_strong_diameter,
                "weakD": q.max_weak_diameter,
                "bound 2k-2": 2 * k - 2,
                "disconnected": q.num_disconnected_clusters,
            }
        )
    print(format_records(rows, title=f"k = {k} on {args.graph}"))
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph, seed=args.seed)
    decomposition, _ = elkin_neiman.decompose(graph, k=args.k, seed=args.seed)
    rows = []
    if args.problem in ("mis", "all"):
        result = run_mis(graph, decomposition, seed=args.seed)
        rows.append(
            {
                "problem": "MIS",
                "result": len(result.independent_set),
                "rounds": result.app.rounds,
                "verified": is_maximal_independent_set(graph, result.independent_set),
            }
        )
    if args.problem in ("coloring", "all"):
        result = run_coloring(graph, decomposition, seed=args.seed)
        rows.append(
            {
                "problem": "coloring",
                "result": result.num_colors_used,
                "rounds": result.app.rounds,
                "verified": is_proper_vertex_coloring(
                    graph, result.colors, max_colors=graph.max_degree() + 1
                ),
            }
        )
    if args.problem in ("matching", "all"):
        result = run_matching(graph, k=args.k, seed=args.seed)
        rows.append(
            {
                "problem": "matching",
                "result": len(result.matching),
                "rounds": result.line_mis.app.rounds,
                "verified": is_maximal_matching(graph, result.matching),
            }
        )
    print(format_records(rows, title=f"applications on {args.graph} (k={args.k})"))
    return 0 if all(row["verified"] for row in rows) else 1


def _cmd_spanner(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph, seed=args.seed)
    decomposition, _ = elkin_neiman.decompose(graph, k=args.k, seed=args.seed)
    result = build_spanner(graph, decomposition)
    print(format_records(
        [
            {
                "graph edges": graph.num_edges,
                "spanner edges": result.num_edges,
                "tree edges": result.tree_edges,
                "connectors": result.connector_edges,
                "stretch": result.max_stretch,
                "bound 4D+1": result.stretch_bound,
            }
        ],
        title=f"cluster spanner of {args.graph} (k={args.k})",
    ))
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    rows = [
        {
            "algorithm": row.algorithm,
            "kind": row.diameter_kind,
            "diameter": round(row.diameter, 1),
            "colors": round(row.colors, 1),
            "rounds": round(row.rounds, 1),
            "deterministic": row.deterministic,
        }
        for row in comparison_rows(args.n, args.k)
    ]
    print(format_records(rows, title=f"closed-form bounds at n = {args.n}"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list or args.scenario is None:
        rows = [
            {
                "scenario": name,
                "algorithm": scenario.algorithm,
                "points": len(scenario.points),
                "trials": scenario.trials,
                "description": scenario.description,
            }
            for name, scenario in sorted(SCENARIOS.items())
        ]
        print(format_records(rows, title="registered scenarios"))
        return 0
    # An explicit --seed overrides the scenario's reproducible root seed;
    # otherwise the registry default applies.
    root_seed = args.seed if args.seed_given else None
    spec = build_experiment(args.scenario, trials=args.trials, root_seed=root_seed)
    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = default_cache()
    result = run_experiment(spec, workers=args.workers, cache=cache)
    rows = per_trial_rows(result) if args.per_trial else aggregate_experiment(result)
    if args.json:
        payload = {
            "scenario": spec.name,
            "algorithm": spec.algorithm,
            "points": len(spec.points),
            "trials": spec.trials,
            "root_seed": spec.root_seed,
            "rows": rows,
            "failures": len(result.failures),
            # Provenance for cross-PR comparability (the rows themselves
            # stay environment-free so cached trials remain portable).
            "environment": environment_block(),
        }
        tel = resolve(None)
        if tel is not None:
            payload["telemetry"] = tel.block()
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf8",
        )
    print(format_records(
        rows,
        title=f"{spec.name}: {spec.trials} trial(s) x {len(spec.points)} point(s), "
        f"algorithm {spec.algorithm!r}, root seed {spec.root_seed}",
    ))
    # Run/cache accounting goes to stderr so the aggregate table on stdout
    # stays byte-identical across --workers settings and warm/cold cache
    # states (--per-trial rows carry a 'cached' column by design).
    print(
        f"trials: {len(result.results)} total, {result.cache_hits} cache hits, "
        f"{result.executed} executed, {len(result.failures)} failed "
        f"(workers={args.workers}, cache={'off' if cache is None else cache.root})",
        file=sys.stderr,
    )
    for failure in result.failures:
        print(
            f"FAILED trial {failure.trial.index} on {failure.trial.graph}: "
            f"{(failure.error or '?').splitlines()[0]}",
            file=sys.stderr,
        )
    return 1 if result.failures else 0


def _parse_shard(setting: str) -> tuple[int, int]:
    """Parse ``--shard I/N`` (zero-based index)."""
    index_text, separator, count_text = setting.partition("/")
    try:
        index, count = int(index_text), int(count_text) if separator else -1
    except ValueError:
        index, count = -1, -1
    if not separator or count < 1 or not 0 <= index < count:
        raise ParameterError(
            f"bad shard {setting!r} (expected INDEX/COUNT with "
            "0 <= INDEX < COUNT, e.g. 0/4)"
        )
    return index, count


def _campaign_dir(args: argparse.Namespace, shard: tuple[int, int]) -> pathlib.Path:
    if args.dir:
        return pathlib.Path(args.dir)
    suffix = f"-shard{shard[0]}of{shard[1]}" if shard[1] > 1 else ""
    return pathlib.Path(".repro-campaigns") / f"{args.name}{suffix}"


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    rows = [
        {
            "campaign": name,
            "members": len(campaign.members),
            "trials": sum(
                member.spec(campaign.root_seed).num_trials
                for member in campaign.members
            ),
            "description": campaign.description,
        }
        for name, campaign in sorted(CAMPAIGNS.items())
    ]
    print(format_records(rows, title="registered campaigns"))
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    resume = args.campaign_command == "resume"
    shard = _parse_shard(args.shard)
    plan = plan_campaign(args.name, trials=args.trials, shard=shard)
    directory = _campaign_dir(args, shard)
    journal = CampaignJournal(directory / JOURNAL_FILENAME)
    cache = (
        ResultCache(args.cache_dir) if args.cache_dir
        else ResultCache(directory / "cache")
    )
    if not resume and args.fresh:
        journal.delete()
    outcome = run_campaign(
        plan,
        cache=cache,
        journal=journal,
        workers=args.workers,
        stop_after=args.stop_after,
        resume=resume,
        log=lambda message: print(message, file=sys.stderr),
    )
    if outcome.interrupted:
        remaining = plan.num_trials - len(journal.read()[1])
        print(
            f"interrupted after {outcome.executed} freshly executed trial(s); "
            f"{remaining} trial(s) remain — continue with "
            f"`repro campaign resume {args.name}"
            + (f" --dir {args.dir}" if args.dir else "")
            + (f" --shard {args.shard}" if shard[1] > 1 else "")
            + (f" --trials {args.trials}" if args.trials else "")
            + (f" --cache-dir {args.cache_dir}" if args.cache_dir else "")
            + "`",
            file=sys.stderr,
        )
        return 3
    # Completed: stdout is a pure function of the campaign definition
    # (resumed and one-shot runs print identical bytes); accounting goes
    # to stderr.
    print(render_campaign(outcome))
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(campaign_payload(outcome), indent=2, sort_keys=True,
                       default=str) + "\n",
            encoding="utf8",
        )
    failures = outcome.failures
    print(
        f"campaign {plan.name!r}: {plan.num_trials} trial(s) in shard, "
        f"{outcome.executed} executed, {outcome.cache_hits} cache hits, "
        f"{len(failures)} failed (journal {journal.path})",
        file=sys.stderr,
    )
    for failure in failures:
        print(
            f"FAILED trial on {failure.trial.graph}: "
            f"{(failure.error or '?').splitlines()[0]}",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    shard = _parse_shard(args.shard)
    plan = plan_campaign(args.name, trials=args.trials, shard=shard)
    directory = _campaign_dir(args, shard)
    journal = CampaignJournal(directory / JOURNAL_FILENAME)
    header, entries = journal.read()
    rows = []
    pending_total = 0
    for member_plan in plan.members:
        completed = failed = 0
        for trial in member_plan.trials:
            entry = entries.get(trial.key())
            if entry is None:
                continue
            completed += 1
            failed += 0 if entry.ok else 1
        pending = len(member_plan.trials) - completed
        pending_total += pending
        rows.append(
            {
                "member": member_plan.member.name,
                "trials": len(member_plan.trials),
                "completed": completed,
                "failed": failed,
                "pending": pending,
            }
        )
    state = (
        "no journal" if header is None
        else ("complete" if pending_total == 0 else "in progress")
    )
    print(format_records(
        rows,
        title=f"campaign {plan.name!r}: {state} "
        f"(journal {journal.path}, config {plan.config_hash[:12]})",
    ))
    if header is not None and header.get("config_hash") != plan.config_hash:
        print(
            "warning: journal was written by a different campaign "
            "configuration — resume will refuse it",
            file=sys.stderr,
        )
    return 0 if pending_total == 0 and header is not None else 3


def _cmd_campaign_compare(args: argparse.Namespace) -> int:
    report = compare_paths(
        args.baseline,
        args.current,
        tolerances=parse_tolerances(args.tolerance),
        strict_env=args.strict_env,
    )
    if report.findings:
        rows = [
            {
                "status": finding.status,
                "row": finding.label,
                "metric": finding.metric,
                "baseline": finding.baseline,
                "current": finding.current,
                "detail": finding.detail,
            }
            for finding in report.findings
        ]
        print(format_records(
            rows,
            title=f"compare: {args.current} vs baseline {args.baseline}",
        ))
    verdict = "FAIL" if report.exit_code else "OK"
    print(
        f"{verdict}: {report.compared_rows} row(s), "
        f"{report.compared_metrics} metric(s) compared; "
        f"{len(report.failures)} regression(s)/drift(s), "
        f"{sum(1 for f in report.findings if f.status == 'warning')} warning(s), "
        f"{sum(1 for f in report.findings if f.status == 'improved')} improvement(s); "
        f"environments {'match' if report.environment_matches else 'differ'}"
    )
    return report.exit_code


def _cmd_oracle(args: argparse.Namespace) -> int:
    # Timing is measured exactly once, by the oracle's own spans: with
    # --trace / REPRO_TELEMETRY the ambient trace collects them, else a
    # local in-memory collector does.  Both feed the stderr lines and
    # the artifact's telemetry block below.
    tel = resolve(None)
    local = tel if tel is not None else Telemetry()
    # One shared loading path with the serve daemon: repeated loads of
    # the same recipe in one process (build then query, tests, the
    # loadgen validator) reuse the memoized tables.
    oracle = load_tables(
        args.graph,
        seed=args.seed,
        k=args.k,
        c=args.c,
        overlap_budget=args.budget,
        telemetry=local,
    )
    graph = oracle.graph
    build_seconds = local.total_seconds("oracle.build")
    scale_rows = oracle.scale_rows()
    print(format_records(
        scale_rows,
        title=f"oracle on {args.graph} (n={graph.num_vertices}, "
        f"m={graph.num_edges}): {oracle.num_scales} scales, "
        f"stretch bound {oracle.stretch_bound:.2f}",
    ))
    if oracle.skipped_radii:
        print(f"skipped saturated scales at W = {oracle.skipped_radii} "
              f"(overlap budget {args.budget})")
    # Wall-clock goes to stderr so stdout stays deterministic per seed.
    print(f"built in {build_seconds:.2f}s", file=sys.stderr)
    payload: dict = {
        "command": f"oracle {args.oracle_command}",
        "graph": args.graph,
        "seed": args.seed,
        "k": oracle.k,
        "c": args.c,
        "overlap_budget": args.budget,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "scales": scale_rows,
        "skipped_radii": oracle.skipped_radii,
        "stretch_bound": oracle.stretch_bound,
        "build_seconds": round(build_seconds, 3),
        "environment": environment_block(),
    }
    exit_code = 0
    if args.oracle_command == "query":
        n = graph.num_vertices
        rng = stream(args.seed, "oracle", "cli-queries")
        pairs = [
            (rng.randrange(n), rng.randrange(n)) for _ in range(args.pairs)
        ] if n else []
        estimates = oracle.distances(pairs, telemetry=local)
        query_seconds = local.total_seconds("oracle.query")
        validation = validate_sample(oracle, pairs, estimates, args.check)
        violations = validation["violations"]
        reachable = [e for e in estimates if e >= 0]
        summary = {
            "queries": len(pairs),
            "unreachable": len(pairs) - len(reachable),
            "mean_estimate": round(
                sum(reachable) / len(reachable), 3
            ) if reachable else None,
            "checked": validation["checked"],
            "violations": violations,
            "worst_checked_stretch": validation["worst_stretch"],
            "checksum": estimates_checksum(estimates),
        }
        print(format_records(
            [summary],
            title=f"query batch (stretch bound {oracle.stretch_bound:.2f}, "
            f"exact-BFS check on {validation['checked']} pairs)",
        ))
        print(
            f"answered {len(pairs)} queries in {query_seconds:.3f}s "
            f"({len(pairs) / max(query_seconds, 1e-9):,.0f} q/s)",
            file=sys.stderr,
        )
        if args.routes:
            sample = pairs[: args.routes]
            for pair, route in zip(sample, oracle.routes(sample)):
                print(f"route {pair[0]} -> {pair[1]}: "
                      f"{'unreachable' if route is None else route}")
        payload["query"] = summary
        payload["query_seconds"] = round(query_seconds, 3)
        exit_code = 1 if violations else 0
    payload["telemetry"] = local.block()
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf8",
        )
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    tel = resolve(None)
    local = tel if tel is not None else Telemetry()
    oracle = load_tables(
        args.graph,
        seed=args.seed,
        k=args.k,
        c=args.c,
        overlap_budget=args.budget,
        telemetry=local,
    )
    workers = args.workers if args.workers is not None else default_workers()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        cache_size=args.cache_size,
        workers=workers,
    )

    def on_ready(host: str, port: int) -> None:
        print(
            f"serving {args.graph} (n={oracle.graph.num_vertices}, "
            f"stretch bound {oracle.stretch_bound:.2f}) on {host}:{port} "
            f"[workers={workers}, max_batch={config.max_batch}, "
            f"max_wait_us={config.max_wait_us}, cache={config.cache_size}]",
            file=sys.stderr,
        )
        if args.ready_file:
            path = pathlib.Path(args.ready_file)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(f"{host}:{port}\n", encoding="utf8")

    try:
        run_server(oracle, config, telemetry=local, ready_callback=on_ready)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0


def _loadgen_address(args: argparse.Namespace) -> tuple[str, int]:
    """The daemon address: ``--addr-file`` (polled) or ``--host``/``--port``."""
    if args.addr_file:
        deadline = time.monotonic() + args.connect_timeout
        path = pathlib.Path(args.addr_file)
        while True:
            try:
                text = path.read_text(encoding="utf8").strip()
            except OSError:
                text = ""
            if text:
                host, _, port = text.rpartition(":")
                return host, int(port)
            if time.monotonic() >= deadline:
                raise ParameterError(
                    f"address file {args.addr_file!r} did not appear within "
                    f"{args.connect_timeout:g}s — is the daemon running "
                    "with --ready-file?"
                )
            time.sleep(0.05)
    if args.port is None:
        raise ParameterError("loadgen needs --port (or --addr-file)")
    return args.host, args.port


def _cmd_loadgen(args: argparse.Namespace) -> int:
    host, port = _loadgen_address(args)
    with ServeClient(host, port) as client:
        stats = client.stats()
    n = stats["n"]
    pairs = sample_pairs(n, args.pairs, args.seed)
    if args.mode == "closed":
        report = run_closed_loop(
            host,
            port,
            pairs,
            clients=args.clients,
            requests_per_client=args.requests,
            op=args.op,
            pairs_per_request=args.pairs_per_request,
        )
    else:
        report = run_open_loop(
            host,
            port,
            pairs,
            rate=args.rate,
            duration=args.duration,
            connections=args.clients,
            op=args.op,
            pairs_per_request=args.pairs_per_request,
        )
    row = report.row()
    print(format_records(
        [row],
        title=f"{report.mode}-loop loadgen against {host}:{port} "
        f"(n={n}, workers={stats['workers']}, "
        f"max_batch={stats['max_batch']})",
    ))

    mismatches = 0
    validated = 0
    if args.validate:
        if not args.graph:
            raise ParameterError("--validate needs --graph to build the reference")
        reference = load_tables(
            args.graph,
            seed=args.seed,
            k=args.k,
            c=args.c,
            overlap_budget=args.budget,
        )
        if reference.graph.num_vertices != n:
            raise ParameterError(
                f"--graph {args.graph!r} has n={reference.graph.num_vertices} "
                f"but the daemon serves n={n} — not the same tables"
            )
        sample = pairs[: args.validate]
        with ServeClient(host, port) as client:
            served_d = client.distances(sample)
            served_r = client.routes(sample)
        mismatches += sum(
            1 for a, b in zip(served_d, reference.distances(sample)) if a != b
        )
        mismatches += sum(
            1 for a, b in zip(served_r, reference.routes(sample)) if a != b
        )
        validated = len(sample)
        verdict = "row-identical" if mismatches == 0 else f"{mismatches} MISMATCHES"
        print(
            f"validated {validated} served distance+route answers against "
            f"direct oracle.query: {verdict}"
        )

    final_stats = None
    if args.shutdown or args.json:
        with ServeClient(host, port) as client:
            final_stats = client.stats()
            if args.shutdown:
                client.shutdown()

    if args.json:
        payload = {
            "command": "loadgen",
            "benchmark": "serving",
            "host": host,
            "port": port,
            "seed": args.seed,
            "rows": [{"scenario": "serving", **row}],
            "validated": validated,
            "mismatches": mismatches,
            "server": final_stats,
            "environment": environment_block(),
        }
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf8",
        )
    return 1 if (report.errors or mismatches) else 0


def _load_trace(path: str) -> list[dict]:
    """The records of one trace file, or ``ParameterError`` (exit 2)."""
    try:
        _header, records = read_trace(path)
    except OSError as exc:
        raise ParameterError(f"cannot read trace {path!r}: {exc}") from exc
    if not records:
        raise ParameterError(f"trace {path!r} holds no records")
    return records


#: summarize --sort choices -> (summary-row key, descending).
_SUMMARY_SORT_KEYS = {
    "self": "self_seconds",
    "cum": "seconds",
    "count": "calls",
}


def _format_summary_rows(rows: list[dict], flat: bool = False) -> list[dict]:
    """Flatten summarize_spans rows for the text table.

    ``flat`` prints full span paths without tree indentation — used when
    a ``--sort`` order breaks the parent-before-child layout the
    indentation relies on.
    """
    return [
        {
            "span": row["span"] if flat
            else ("  " * row["depth"]) + row["span"].rsplit("/", 1)[-1],
            "calls": row["calls"],
            "seconds": f"{row['seconds']:.4f}",
            "self": f"{row['self_seconds']:.4f}",
            "errors": row["errors"],
            "counters": ", ".join(
                f"{name}={value:g}"
                for name, value in sorted(row["counters"].items())
            ),
        }
        for row in rows
    ]


def _format_chain_rows(chain: list[dict]) -> list[dict]:
    """Critical-path chain steps as text-table rows."""
    rows = []
    for position, step in enumerate(chain, 1):
        if step["edge"] == "msg":
            rows.append(
                {
                    "step": position,
                    "edge": "msg",
                    "link": f"{step['send']}@{step['send_round']} -> "
                    f"{step['recv']}@{step['recv_round']}",
                    "transit": step["transit"],
                    "delay": step["delay"],
                    "fault": step["fault"],
                    "compute": "",
                }
            )
        else:
            rows.append(
                {
                    "step": position,
                    "edge": "local",
                    "link": f"{step['node']}: {step['from_round']} -> "
                    f"{step['to_round']}",
                    "transit": "",
                    "delay": "",
                    "fault": "",
                    "compute": step["compute"],
                }
            )
    return rows


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        records = _load_trace(args.trace_file)
        text = export_text(records, fmt=args.format)
        if args.out:
            path = pathlib.Path(args.out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf8")
            events = text.count("\n") if args.format == "jsonl" else len(
                json.loads(text)["traceEvents"]
            )
            print(
                f"wrote {events} trace event(s) ({args.format}) to {path}",
                file=sys.stderr,
            )
        else:
            sys.stdout.write(text)
        return 0
    if args.trace_command == "summarize":
        records = _load_trace(args.trace_file)
        rows = summarize_spans(records)
        if args.sort != "path":
            rows = sorted(
                rows, key=lambda row: -row[_SUMMARY_SORT_KEYS[args.sort]]
            )
        rounds = round_timeline(records)
        # The sink and the in-memory collectors are bounded; a trace that
        # overflowed carries `truncated` markers — surface the drop count
        # so a summary is never mistaken for the whole story.
        dropped = sum(
            int(record.get("dropped", 0))
            for record in records
            if record.get("kind") == "truncated"
        )
        title = (
            f"span summary of {args.trace_file} "
            f"({len(rows)} path(s), {len(rounds)} round record(s)"
            + (f", {dropped} record(s) dropped" if dropped else "")
            + ")"
        )
        # The close-time summary record carries the sink's per-kind
        # census — print it as the header so a summary says up front
        # what the trace actually holds (spans vs rounds vs causal ...).
        summary = next(
            (r for r in records if r.get("kind") == "summary"), None
        )
        kinds = dict((summary or {}).get("kinds") or {})
        if kinds:
            print(
                "records: "
                + ", ".join(
                    f"{name}={count}" for name, count in sorted(kinds.items())
                )
            )
        print(format_records(
            _format_summary_rows(rows, flat=args.sort != "path"),
            title=title,
        ))
        payload = {"command": "trace summarize", "trace": args.trace_file,
                   "sort": args.sort, "spans": rows, "rounds": len(rounds),
                   "dropped": dropped, "kinds": kinds}
    elif args.trace_command == "timeline":
        records = _load_trace(args.trace_file)
        rows = round_timeline(records, stream=args.stream)
        if not rows:
            streams = sorted(
                {r.get("stream") for r in records if r.get("kind") == "round"}
            )
            raise ParameterError(
                f"no round records for stream {args.stream!r} in "
                f"{args.trace_file!r} (streams present: {streams or 'none'})"
            )
        print(format_records(
            rows[: args.limit] if args.limit else rows,
            title=f"round timeline of {args.trace_file}"
            + (f" (stream {args.stream})" if args.stream else ""),
        ))
        if args.limit and len(rows) > args.limit:
            print(f"... {len(rows) - args.limit} more round(s)", file=sys.stderr)
        payload = {"command": "trace timeline", "trace": args.trace_file,
                   "stream": args.stream, "rows": rows}
    elif args.trace_command == "causality":
        records = _load_trace(args.trace_file)
        rows = causality_table(records, stream=args.stream)
        if not rows:
            streams = sorted(
                {r.get("stream") for r in records if r.get("kind") == "causal"}
            )
            raise ParameterError(
                f"no causal records for stream {args.stream!r} in "
                f"{args.trace_file!r} (streams present: {streams or 'none'})"
            )
        print(format_records(
            rows,
            title=f"causal census of {args.trace_file}"
            + (f" (stream {args.stream})" if args.stream else ""),
        ))
        payload = {"command": "trace causality", "trace": args.trace_file,
                   "stream": args.stream, "rows": rows}
        if len(rows) == 1:
            timeline = lag_timeline(records, stream=rows[0]["stream"])
            shown = timeline[: args.limit] if args.limit else timeline
            print(format_records(
                shown,
                title=f"lag timeline (stream {rows[0]['stream']})",
            ))
            if args.limit and len(timeline) > args.limit:
                print(
                    f"... {len(timeline) - args.limit} more round(s)",
                    file=sys.stderr,
                )
            payload["timeline"] = timeline
    elif args.trace_command == "critical-path":
        records = _load_trace(args.trace_file)
        try:
            result = critical_path(
                records, stream=args.stream, node=args.node
            )
        except ValueError as exc:
            raise ParameterError(str(exc)) from exc
        attribution = result["attribution"]
        slack = result["slack"]
        print(
            f"critical path of {args.trace_file} (stream {result['stream']}): "
            f"node {result['node']} "
            + ("halts" if result["halted"] else "last seen")
            + f" at round {result['rounds']}, time {result['time']:g} "
            f"(drift {result['drift']:+g}), {len(result['chain'])} step(s)"
        )
        print(
            "attribution: "
            + ", ".join(
                f"{key}={attribution[key]:g}"
                for key in ("transit", "delay", "fault", "compute")
            )
            + f"; slack mean={slack['mean']:g} max={slack['max']:g} "
            f"over {slack['edges']} edge(s)"
        )
        chain_rows = _format_chain_rows(result["chain"])
        shown = chain_rows[: args.limit] if args.limit else chain_rows
        print(format_records(shown, title="critical-path chain"))
        if args.limit and len(chain_rows) > args.limit:
            print(
                f"... {len(chain_rows) - args.limit} more step(s)",
                file=sys.stderr,
            )
        payload = {"command": "trace critical-path", "trace": args.trace_file,
                   "trace_stream": args.stream, "pinned_node": args.node,
                   **result}
    else:  # diff
        baseline = summarize_spans(_load_trace(args.baseline))
        current = summarize_spans(_load_trace(args.current))
        rows = diff_summaries(baseline, current, tolerance=args.tolerance)
        print(format_records(
            rows,
            title=f"trace diff: {args.current} vs baseline {args.baseline} "
            f"(tolerance {args.tolerance:.0%})",
        ))
        drifted = sum(1 for row in rows if row["status"] != "ok")
        print(
            f"{len(rows)} span path(s) compared, {drifted} drifted",
            file=sys.stderr,
        )
        payload = {"command": "trace diff", "baseline": args.baseline,
                   "current": args.current, "rows": rows}
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf8",
        )
    return 0


class _SeedAction(argparse.Action):
    """Store the seed and record that the user passed it explicitly.

    ``bench`` prefers each scenario's reproducible root seed unless the
    user chose one — including choosing a value equal to DEFAULT_SEED —
    so a plain default can't carry that distinction.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        namespace.seed_given = True


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed strong-diameter network decomposition "
        "(Elkin & Neiman, PODC 2016) — reproduction toolkit.",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, action=_SeedAction)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="SETTING",
        help="telemetry: 'mem' collects in memory, a path writes a JSONL "
        "trace file, 'off' disables (overrides REPRO_TELEMETRY)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="HZ",
        help="sample the run's stacks at HZ (or 'on' for the default "
        "rate); the span-attributed flame table prints to stderr and "
        "lands in the trace file, if any (overrides REPRO_PROFILE)",
    )
    parser.set_defaults(seed_given=False)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("decompose", help="run Theorem 1/2/3 on a graph")
    p.add_argument("graph", help="graph spec, e.g. er:200:0.03")
    p.add_argument("--theorem", type=int, choices=(1, 2, 3), default=1)
    p.add_argument("-k", type=float, default=3)
    p.add_argument("-c", type=float, default=4.0)
    p.add_argument("--colors", type=int, default=3, help="lambda for Theorem 3")
    p.set_defaults(func=_cmd_decompose)

    p = sub.add_parser("compare", help="EN16 vs LS93 head-to-head")
    p.add_argument("graph")
    p.add_argument("-k", type=int, default=0, help="0 = ceil(ln n)")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("apps", help="MIS / coloring / matching over a decomposition")
    p.add_argument("graph")
    p.add_argument("--problem", choices=("mis", "coloring", "matching", "all"), default="all")
    p.add_argument("-k", type=int, default=3)
    p.set_defaults(func=_cmd_apps)

    p = sub.add_parser("spanner", help="cluster spanner from a decomposition")
    p.add_argument("graph")
    p.add_argument("-k", type=int, default=3)
    p.set_defaults(func=_cmd_spanner)

    p = sub.add_parser("theory", help="closed-form comparison table")
    p.add_argument("n", type=int)
    p.add_argument("-k", type=int, default=None)
    p.set_defaults(func=_cmd_theory)

    p = sub.add_parser(
        "oracle",
        help="hierarchical cover-based distance/routing oracle",
    )
    osub = p.add_subparsers(dest="oracle_command", required=True)
    for name, help_text in (
        ("build", "build the multi-scale oracle and print its tables"),
        ("query", "build, then answer a seeded batch of distance queries"),
    ):
        op = osub.add_parser(name, help=help_text)
        op.add_argument("graph", help="graph spec, e.g. gnp_fast:100000:0.00006")
        op.add_argument("-k", type=float, default=None, help="level-0 k (default ceil(ln n))")
        op.add_argument("-c", type=float, default=4.0)
        op.add_argument(
            "--budget",
            type=float,
            default=8.0,
            help="overlap budget: max mean membership slots per vertex "
            "per scale (saturated scales are skipped)",
        )
        if name == "query":
            op.add_argument("--pairs", type=int, default=4096, help="query batch size")
            op.add_argument(
                "--check",
                type=int,
                default=64,
                help="answers validated against exact BFS",
            )
            op.add_argument(
                "--routes",
                type=int,
                default=0,
                metavar="R",
                help="print explicit routes for the first R pairs",
            )
        op.add_argument(
            "--json",
            default=None,
            metavar="PATH",
            help="also write the tables/summary as JSON to PATH (CI artifact)",
        )
        op.set_defaults(func=_cmd_oracle)

    p = sub.add_parser(
        "serve",
        help="serve the oracle over TCP (newline-delimited JSON protocol)",
    )
    p.add_argument("graph", help="graph spec, e.g. gnp_fast:100000:0.00006")
    p.add_argument("-k", type=float, default=None, help="level-0 k (default ceil(ln n))")
    p.add_argument("-c", type=float, default=4.0)
    p.add_argument(
        "--budget",
        type=float,
        default=8.0,
        help="overlap budget: max mean membership slots per vertex per scale",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 binds an ephemeral port; see --ready-file)",
    )
    p.add_argument(
        "--max-batch", type=int, default=64,
        help="micro-batch size that triggers an immediate flush",
    )
    p.add_argument(
        "--max-wait-us", type=int, default=500,
        help="max microseconds a pair may wait for batch-mates",
    )
    p.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU answer-cache capacity in entries (0 disables)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes sharing the tables via shared memory "
        "(default: REPRO_SERVE_WORKERS, else 0 = answer in-process)",
    )
    p.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write 'host:port' to PATH once the socket is bound",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a running serve daemon and report latency/throughput",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument(
        "--addr-file", default=None, metavar="PATH",
        help="read 'host:port' from PATH (polled; pairs with serve --ready-file)",
    )
    p.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long to wait for --addr-file to appear",
    )
    p.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: one request in flight per client (saturation); "
        "open: fixed-rate schedule, latency from scheduled send time",
    )
    p.add_argument("--clients", type=int, default=4, help="concurrent connections")
    p.add_argument(
        "--requests", type=int, default=100,
        help="requests per client (closed mode)",
    )
    p.add_argument(
        "--rate", type=float, default=1000.0,
        help="offered requests/s across all clients (open mode)",
    )
    p.add_argument(
        "--duration", type=float, default=2.0,
        help="run length in seconds (open mode)",
    )
    p.add_argument("--op", choices=("distance", "route"), default="distance")
    p.add_argument(
        "--pairs", type=int, default=4096,
        help="seeded workload pool size (requests cycle through it)",
    )
    p.add_argument(
        "--pairs-per-request", type=int, default=1,
        help="query pairs carried by each request",
    )
    p.add_argument(
        "--graph", default=None,
        help="graph spec for the --validate reference oracle",
    )
    p.add_argument(
        "-k", type=float, default=None,
        help="reference oracle k (match the daemon's)",
    )
    p.add_argument("-c", type=float, default=4.0)
    p.add_argument("--budget", type=float, default=8.0)
    p.add_argument(
        "--validate", type=int, default=0, metavar="N",
        help="check N served distance+route answers row-identical against "
        "a locally built oracle (requires --graph; exit 1 on mismatch)",
    )
    p.add_argument(
        "--shutdown", action="store_true",
        help="stop the daemon after the run",
    )
    p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the compare-ready serving artifact to PATH",
    )
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser("bench", help="run a registered experiment scenario")
    p.add_argument(
        "scenario",
        nargs="?",
        help=f"scenario name ({', '.join(scenario_names())})",
    )
    p.add_argument("--list", action="store_true", help="list scenarios and exit")
    p.add_argument("--trials", type=int, default=None, help="override trials per point")
    p.add_argument("--workers", type=int, default=1, help="process-pool size (1 = serial)")
    p.add_argument("--no-cache", action="store_true", help="recompute every trial")
    p.add_argument("--cache-dir", default=None, help="cache root (default .repro-cache)")
    p.add_argument("--per-trial", action="store_true", help="one row per trial")
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the result rows as JSON to PATH (CI artifact)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "campaign",
        help="sharded multi-scenario sweeps with checkpoint/resume and a "
        "perf-baseline comparison gate",
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)

    cp = csub.add_parser("list", help="list registered campaigns")
    cp.set_defaults(func=_cmd_campaign_list)

    for name, help_text in (
        ("run", "start a campaign (refuses an existing journal)"),
        ("resume", "continue an interrupted campaign from its journal"),
    ):
        cp = csub.add_parser(name, help=help_text)
        cp.add_argument("name", help=f"campaign name ({', '.join(campaign_names())})")
        cp.add_argument(
            "--dir",
            default=None,
            metavar="DIR",
            help="run directory holding the journal and trial cache "
            "(default .repro-campaigns/<name>)",
        )
        cp.add_argument(
            "--shard",
            default="0/1",
            metavar="I/N",
            help="run only the trials hashed into shard I of N (default 0/1)",
        )
        cp.add_argument("--trials", type=int, default=None,
                        help="override trials per point for every member")
        cp.add_argument("--workers", type=int, default=1,
                        help="process-pool size (1 = serial)")
        cp.add_argument(
            "--stop-after",
            type=int,
            default=None,
            metavar="N",
            help="cleanly interrupt after N freshly executed trials "
            "(time-boxed legs; resume later)",
        )
        cp.add_argument(
            "--cache-dir",
            default=None,
            help="trial cache root (default <run dir>/cache)",
        )
        if name == "run":
            cp.add_argument(
                "--fresh",
                action="store_true",
                help="discard an existing journal first (content-addressed "
                "cached records are still reused)",
            )
        cp.add_argument(
            "--json",
            default=None,
            metavar="PATH",
            help="write the keyed campaign artifact to PATH on completion",
        )
        cp.set_defaults(func=_cmd_campaign_run)

    cp = csub.add_parser("status", help="show journal progress for a campaign")
    cp.add_argument("name", help="campaign name")
    cp.add_argument("--dir", default=None, metavar="DIR")
    cp.add_argument("--shard", default="0/1", metavar="I/N")
    cp.add_argument("--trials", type=int, default=None)
    cp.set_defaults(func=_cmd_campaign_status)

    cp = csub.add_parser(
        "compare",
        help="diff two bench/campaign JSON artifacts; nonzero exit on "
        "regression beyond tolerance",
    )
    cp.add_argument("current", help="artifact to check (JSON path)")
    cp.add_argument(
        "--baseline",
        required=True,
        metavar="PATH",
        help="baseline artifact to compare against",
    )
    cp.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="NAME=FRAC",
        help="per-metric relative tolerance override (glob patterns "
        "allowed; repeatable)",
    )
    cp.add_argument(
        "--strict-env",
        action="store_true",
        help="treat an environment-block mismatch as a failure instead "
        "of a warning",
    )
    cp.set_defaults(func=_cmd_campaign_compare)

    p = sub.add_parser(
        "trace",
        help="inspect telemetry traces recorded with --trace / REPRO_TELEMETRY",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    tp = tsub.add_parser(
        "summarize", help="span tree with calls, cumulative and self time"
    )
    tp.add_argument("trace_file", help="trace JSONL path")
    tp.add_argument(
        "--sort",
        choices=("path", "self", "cum", "count"),
        default="path",
        help="row order: tree order (path, default), self time, "
        "cumulative time, or call count",
    )
    tp.add_argument("--json", default=None, metavar="PATH",
                    help="also write the summary rows as JSON to PATH")
    tp.set_defaults(func=_cmd_trace)

    tp = tsub.add_parser(
        "timeline", help="per-round convergence timeline of a protocol run"
    )
    tp.add_argument("trace_file", help="trace JSONL path")
    tp.add_argument(
        "--stream",
        default=None,
        metavar="NAME",
        help="only this round stream (e.g. en.rounds)",
    )
    tp.add_argument("--limit", type=int, default=0, metavar="N",
                    help="print at most N rows (0 = all)")
    tp.add_argument("--json", default=None, metavar="PATH",
                    help="also write the timeline rows as JSON to PATH")
    tp.set_defaults(func=_cmd_trace)

    tp = tsub.add_parser(
        "causality",
        help="causal message-log census (edges, halts, Lamport depth, slack)",
    )
    tp.add_argument("trace_file", help="trace JSONL path")
    tp.add_argument(
        "--stream",
        default=None,
        metavar="NAME",
        help="only this causal stream (e.g. en.causal)",
    )
    tp.add_argument("--limit", type=int, default=0, metavar="N",
                    help="print at most N lag-timeline rows (0 = all)")
    tp.add_argument("--json", default=None, metavar="PATH",
                    help="also write the census (and timeline) as JSON to PATH")
    tp.set_defaults(func=_cmd_trace)

    tp = tsub.add_parser(
        "critical-path",
        help="longest causal dependency chain ending at a halt, with "
        "per-edge schedule/fault/compute attribution",
    )
    tp.add_argument("trace_file", help="trace JSONL path")
    tp.add_argument(
        "--stream",
        default=None,
        metavar="NAME",
        help="causal stream to analyze (required if the trace mixes streams)",
    )
    tp.add_argument("--node", type=int, default=None, metavar="V",
                    help="pin the chain to node V's halt")
    tp.add_argument("--limit", type=int, default=0, metavar="N",
                    help="print at most N chain rows (0 = all)")
    tp.add_argument("--json", default=None, metavar="PATH",
                    help="also write the full result as JSON to PATH")
    tp.set_defaults(func=_cmd_trace)

    tp = tsub.add_parser("diff", help="diff two traces' span summaries")
    tp.add_argument("current", help="trace to check (JSONL path)")
    tp.add_argument("--baseline", required=True, metavar="PATH",
                    help="baseline trace to compare against")
    tp.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="relative wall-time drift flagged as slower/faster (default 0.25)",
    )
    tp.add_argument("--json", default=None, metavar="PATH",
                    help="also write the diff rows as JSON to PATH")
    tp.set_defaults(func=_cmd_trace)

    tp = tsub.add_parser(
        "export", help="convert a trace to Chrome trace-event JSON (Perfetto)"
    )
    tp.add_argument("trace_file", help="trace JSONL path")
    tp.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome: one trace-event JSON object (default); "
        "jsonl: one trace event per line",
    )
    tp.add_argument("--out", default=None, metavar="PATH",
                    help="write to PATH instead of stdout")
    tp.set_defaults(func=_cmd_trace)
    return parser


#: Flame-table rows printed to stderr after a profiled run.
_PROFILE_STDERR_ROWS = 15


def _report_profile(profiler: SamplingProfiler) -> None:
    """Print the flame table to stderr; mirror it into the trace file."""
    rows = profiler.flame_table()
    shown = rows[:_PROFILE_STDERR_ROWS]
    print(
        format_records(
            shown,
            title=f"profile: {profiler.sample_count} sample(s) at "
            f"{profiler.hz:g} Hz (top {len(shown)} of {len(rows)} frames)",
        ),
        file=sys.stderr,
    )
    tel = resolve(None)
    if tel is not None and tel.sink is not None:
        tel.sink.write(profiler.record())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    profiler = None
    try:
        if getattr(args, "trace", None):
            configure(parse_setting(args.trace))
        if getattr(args, "profile", None):
            configure_profile(parse_profile_setting(args.profile))
        hz = resolve_profile()
        if hz is not None:
            # Bind to the ambient trace (if any) so samples carry the
            # open span path; the sampler only reads, never records.
            profiler = SamplingProfiler(hz, telemetry=resolve(None))
            profiler.start()
        return args.func(args)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if profiler is not None:
            profiler.stop()
            _report_profile(profiler)
        # Flush and close whatever trace was active (--trace flag or the
        # REPRO_TELEMETRY environment), so the JSONL file carries its
        # summary record even on error exits.
        shutdown()
        reset_profile()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
