"""Deterministic randomness utilities.

The distributed protocol and the centralized reference implementation must
draw *identical* radii so that their outputs can be cross-validated
bit-for-bit (experiment E8/E12 in ``DESIGN.md``).  To make that possible,
all random draws in this library flow through named, hierarchical streams
derived from a single integer seed:

* :func:`derive_seed` hashes a root seed together with an arbitrary tuple of
  labels (for example ``("phase", 3, "vertex", 17)``) into a new 63-bit seed.
* :func:`stream` returns a :class:`random.Random` seeded that way.

The derivation uses BLAKE2b, so streams are stable across Python versions,
platforms and process invocations — unlike ``hash()``, which is salted.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Iterable

__all__ = ["derive_seed", "seed_prefix", "stream", "spawn_seeds", "DEFAULT_SEED"]

DEFAULT_SEED = 0x5EED
"""Seed used by algorithms when the caller does not supply one."""

_MASK_63 = (1 << 63) - 1
_SEPARATOR = b"\x1f"


def _root_hasher(root: int) -> "hashlib.blake2b":
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(repr(root).encode("utf8"))
    return hasher


def _absorb(hasher, labels) -> None:
    for label in labels:
        hasher.update(_SEPARATOR)
        hasher.update(repr(label).encode("utf8"))


def _finish(hasher) -> int:
    return int.from_bytes(hasher.digest(), "big") & _MASK_63


def derive_seed(root: int, *labels: object) -> int:
    """Derive a stable 63-bit seed from ``root`` and a label path.

    Parameters
    ----------
    root:
        The caller's top-level seed.  Any Python integer is accepted
        (negative values are folded into the hash input unchanged).
    labels:
        Arbitrary path of hashable-by-repr labels, e.g.
        ``derive_seed(seed, "phase", t, "vertex", v)``.  Two different label
        paths collide only with cryptographically negligible probability.

    Returns
    -------
    int
        A seed in ``[0, 2**63)`` suitable for :class:`random.Random`.
    """
    hasher = _root_hasher(root)
    _absorb(hasher, labels)
    return _finish(hasher)


def seed_prefix(root: int, *labels: object) -> Callable[..., int]:
    """Amortised :func:`derive_seed` under a fixed label prefix.

    Returns a callable with ``derive(*suffix) == derive_seed(root,
    *labels, *suffix)`` — bit-identical by construction (the prefix
    hash state is computed once and ``copy()``-ed per call), but without
    re-hashing the prefix.  This is the bulk-derivation primitive for
    per-phase hot loops that draw one stream per vertex.
    """
    prefix = _root_hasher(root)
    _absorb(prefix, labels)

    def derive(*suffix: object) -> int:
        hasher = prefix.copy()
        _absorb(hasher, suffix)
        return _finish(hasher)

    return derive


def stream(root: int, *labels: object) -> random.Random:
    """Return a :class:`random.Random` on the stream named by ``labels``.

    The same ``(root, labels)`` pair always produces a generator that emits
    the same sequence of values.
    """
    return random.Random(derive_seed(root, *labels))


def spawn_seeds(root: int, count: int, *labels: object) -> list[int]:
    """Return ``count`` independent child seeds under the given label path.

    Convenience wrapper used to hand each node of a simulated network its
    own private stream: ``spawn_seeds(seed, n, "node")``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_seed(root, *labels, index) for index in range(count)]
