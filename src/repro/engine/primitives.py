"""Vectorised per-round primitives over CSR neighbourhoods.

Paper context: §1.1 — in the synchronous model a round is "receive from
all neighbours, compute, send to all neighbours".  For protocols whose
per-node state is a handful of scalars, the receive-and-compute half of a
round is therefore a *neighbour reduction*: every vertex combines one
value from each (active) neighbour.  This module provides those
reductions as bulk operations over the flat CSR buffers of
:class:`~repro.graphs.graph.Graph`, in both a pure-Python and a numpy
form (see :mod:`repro.engine._backend`):

* :func:`gather_min` / :func:`gather_max` / :func:`gather_sum` /
  :func:`gather_any` — dense receiver-side reductions over all vertices;
* :func:`scatter_min` — sparse sender-side reduction, for rounds where
  only a frontier of vertices transmits (delta-driven protocols such as
  leader election);
* :func:`masked_fill` — masked scatter into a flat state array (halt-mask
  and join-mask maintenance).

Determinism contract: both backends return bit-identical results.  All
reductions here are order-independent (min/max/any, and integer sums);
**floating-point sums are deliberately excluded from the numpy path** —
:func:`gather_sum` falls back to Python for float arrays so accumulation
order never depends on the backend.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from . import _backend
from ._backend import WIDE_THRESHOLD, np
from ..graphs._kernel import gather_frontier_rows

__all__ = [
    "gather_min",
    "gather_max",
    "gather_sum",
    "gather_any",
    "scatter_min",
    "masked_fill",
    "live_degrees",
]


def _np_values(values, dtype=None):
    """A numpy view of ``values`` (zero-copy for ``array``/``bytearray``)."""
    if isinstance(values, bytearray):
        return np.frombuffer(values, dtype=dtype or np.uint8)
    if isinstance(values, array):
        return np.frombuffer(values, dtype=dtype or values.typecode)
    return np.asarray(values, dtype=dtype)


def _gather_extreme(graph, values, default, source_mask, *, biggest: bool):
    """Shared min/max implementation (see :func:`gather_min`)."""
    n = graph.num_vertices
    indptr, indices = graph.csr()
    if _backend.enabled() and len(indices) >= WIDE_THRESHOLD:
        np_indptr, np_indices = graph._numpy_csr()
        vals = _np_values(values)
        gathered = vals[np_indices]
        if gathered.dtype.kind in ("u", "b", "i") and gathered.dtype.itemsize < 8:
            # Widen narrow integer inputs: the out-of-range sentinel below
            # is `min - 1` / `max + 1`, which would wrap around at the
            # native dtype's boundary and win reductions it must lose
            # (uint8 0 - 1 -> 255, int8 -128 - 1 -> 127, ...).
            gathered = gathered.astype(np.int64)
        row_lengths = np_indptr[1:] - np_indptr[:-1]
        counts = row_lengths
        # Sentinel strictly outside the value range: it can never win the
        # reduction, so it serves both as the masked-out replacement and
        # as a one-element pad.  Padding (instead of clamping the segment
        # starts) keeps every reduceat start index valid when trailing
        # vertices have empty rows *without* shifting the previous row's
        # segment boundary; rows with no contributing entries are fixed
        # up to `default` below.
        sentinel = (gathered.min() - 1) if biggest else (gathered.max() + 1)
        if source_mask is not None:
            mask = _np_values(source_mask, dtype=np.uint8)[np_indices] != 0
            gathered = np.where(mask, gathered, sentinel)
            counts = np.add.reduceat(
                np.append(mask.astype(np.int64), 0), np_indptr[:-1]
            )
            counts[row_lengths == 0] = 0
        reduce = np.maximum.reduceat if biggest else np.minimum.reduceat
        out = reduce(np.append(gathered, sentinel), np_indptr[:-1])
        result = out.tolist()
        empty = counts == 0
        if empty.any():
            for v in np.flatnonzero(empty).tolist():
                result[v] = default
        return result
    result = [default] * n
    for v in range(n):
        best = None
        for position in range(indptr[v], indptr[v + 1]):
            u = indices[position]
            if source_mask is not None and not source_mask[u]:
                continue
            value = values[u]
            if best is None or (value > best if biggest else value < best):
                best = value
        if best is not None:
            result[v] = best
    return result


def gather_min(graph, values: Sequence, default, source_mask=None) -> list:
    """Per-vertex minimum of neighbour values.

    ``result[v] = min(values[u] for u in N(v) if source_mask[u])``, or
    ``default`` when no (unmasked) neighbour exists.  ``source_mask`` is an
    optional 0/1 byte mask selecting which neighbours count — the "active
    senders" of the round.
    """
    return _gather_extreme(graph, values, default, source_mask, biggest=False)


def gather_max(graph, values: Sequence, default, source_mask=None) -> list:
    """Per-vertex maximum of neighbour values (see :func:`gather_min`)."""
    return _gather_extreme(graph, values, default, source_mask, biggest=True)


def gather_sum(graph, values: Sequence, source_mask=None) -> list:
    """Per-vertex sum of neighbour values.

    Integer inputs may take the vectorised path (exact, order-free);
    float inputs always use the sequential Python loop so that both
    backends accumulate in the same order, keeping results bit-identical.
    """
    n = graph.num_vertices
    indptr, indices = graph.csr()
    # The int64 fast path requires *provably* integer inputs — anything
    # else (floats, float32 ndarrays, exotic numerics) takes the Python
    # loop, whose sequential accumulation is the semantics of record.
    if isinstance(values, array):
        is_float = values.typecode in ("d", "f")
    elif isinstance(values, (bytearray, bytes)):
        is_float = False
    elif np is not None and isinstance(values, np.ndarray):
        is_float = values.dtype.kind not in ("i", "u", "b")
    else:
        is_float = not all(isinstance(v, int) for v in values)
    if _backend.enabled() and not is_float and len(indices) >= WIDE_THRESHOLD:
        np_indptr, np_indices = graph._numpy_csr()
        vals = _np_values(values).astype(np.int64, copy=False)
        gathered = vals[np_indices]
        if source_mask is not None:
            mask = _np_values(source_mask, dtype=np.uint8)[np_indices] != 0
            gathered = np.where(mask, gathered, 0)
        counts = np_indptr[1:] - np_indptr[:-1]
        # Pad with the additive identity so trailing empty rows keep all
        # reduceat start indices valid without clamping (which would
        # steal the previous row's final element — see _gather_extreme).
        out = np.add.reduceat(np.append(gathered, 0), np_indptr[:-1])
        out[counts == 0] = 0
        return out.tolist()
    zero = 0.0 if is_float else 0
    result = [zero] * n
    for v in range(n):
        total = zero
        for position in range(indptr[v], indptr[v + 1]):
            u = indices[position]
            if source_mask is None or source_mask[u]:
                total += values[u]
        result[v] = total
    return result


def gather_any(graph, flags, source_mask=None) -> bytearray:
    """Per-vertex OR of neighbour flags, as a fresh 0/1 byte mask."""
    counts = gather_sum(graph, _as_int_flags(flags), source_mask)
    return bytearray(1 if c else 0 for c in counts)


def _as_int_flags(flags):
    if isinstance(flags, (bytearray, bytes)):
        return flags
    return bytearray(1 if f else 0 for f in flags)


def scatter_min(graph, senders: Sequence[int], values: Sequence, out) -> None:
    """Sender-side minimum: ``out[w] = min(out[w], values[u])`` for each
    ``u`` in ``senders`` and each ``w`` adjacent to ``u``.

    ``out`` is mutated in place.  This is the sparse dual of
    :func:`gather_min`: when only a small frontier transmits, touching
    ``sum(deg(u) for u in senders)`` edges beats the dense ``O(m)``
    gather.  Wide frontiers take the vectorised path when numpy is
    available; results are bit-identical either way (min is
    order-independent).
    """
    indptr, indices = graph.csr()
    if (
        _backend.enabled()
        and len(senders) >= WIDE_THRESHOLD
        # The vectorised path writes through a zero-copy view, which only
        # exists for buffer-backed outputs — a plain list must take the
        # Python loop or the caller's buffer would never see the writes.
        and isinstance(out, (array, bytearray))
    ):
        np_indptr, np_indices = graph._numpy_csr()
        frontier = np.asarray(senders, dtype=np_indptr.dtype)
        targets, counts = gather_frontier_rows(np_indptr, np_indices, frontier)
        if targets is None:
            return
        vals = _np_values(values)[frontier]
        np_out = _np_values(out)
        np.minimum.at(np_out, targets, np.repeat(vals, counts))
        return
    for u in senders:
        value = values[u]
        for position in range(indptr[u], indptr[u + 1]):
            w = indices[position]
            if value < out[w]:
                out[w] = value
    return


def masked_fill(out, mask, value) -> None:
    """Masked scatter: ``out[v] = value`` wherever ``mask[v]`` is set.

    The halt/join-mask maintenance primitive: one pass, in place.
    """
    if (
        _backend.enabled()
        and len(out) >= WIDE_THRESHOLD
        and isinstance(out, (array, bytearray))  # see scatter_min
    ):
        np_out = _np_values(out)
        np_mask = _np_values(mask, dtype=np.uint8)
        np_out[np_mask != 0] = value
        return
    for v in range(len(out)):
        if mask[v]:
            out[v] = value


def live_degrees(graph, live) -> array:
    """Per-vertex count of *live* neighbours, as a flat ``array('l')``.

    ``live`` is a 0/1 byte mask.  This is the degree of each vertex in
    the induced subgraph :math:`G_t` — the fan-out of a broadcast in the
    current phase — computed as one :func:`gather_sum` pass.
    """
    return array("l", gather_sum(graph, live))
