"""Backend selection for the batch round engine.

There is exactly **one** numpy on/off decision in the library, and it
lives in :mod:`repro.graphs._kernel` (numpy is an optional accelerator;
``REPRO_KERNEL=py`` forces the pure-Python paths).  This module is a
thin delegating facade so the engine's primitives and the BFS kernel
can never disagree about the active backend: flipping
``repro.graphs._kernel.USE_NUMPY`` (as the backend-parity tests do)
switches the *entire* stack — ``bfs_levels`` and every engine primitive
alike.  Both backends are bit-identical by contract, so the switch can
never change a simulation result, only its wall-clock time.
"""

from __future__ import annotations

from ..graphs import _kernel
from ..graphs._kernel import backend_name, numpy_enabled

np = _kernel._np

__all__ = ["np", "WIDE_THRESHOLD", "enabled", "numpy_enabled", "backend_name"]

#: Fan-out width at which the vectorised paths start to win over the
#: plain-Python loops — the kernel's measured crossover (see
#: ``benchmarks/bench_kernel.py``).
WIDE_THRESHOLD = _kernel._NUMPY_FRONTIER_THRESHOLD


def enabled() -> bool:
    """Whether the vectorised primitive paths are active right now.

    Reads the kernel's flag dynamically so in-process toggles (test
    monkeypatches) take effect everywhere at once.
    """
    return _kernel.USE_NUMPY and np is not None
