"""Batch-engine port of the distributed Miller–Peng–Xu partition.

MPX is a single :class:`~repro.engine.broadcast.ShiftedFlood` epoch over
the whole graph: every vertex injects ``δ_v ~ Exp(β)``, shifted values
flood for ``B = max ⌊δ_v⌋`` rounds, and each vertex is assigned to the
origin of the largest shifted value it heard (smallest id on ties) —
exactly the flood core's streaming ``best`` summary.  The driver
(:func:`repro.baselines.distributed_mpx.partition_distributed`) selects
this path with ``backend="batch"`` and reassembles the result object, so
both backends return bit-identical partitions and
:class:`~repro.distributed.metrics.NetworkStats`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from ..distributed.metrics import NetworkStats
from ..graphs.graph import Graph
from .broadcast import LiveTopology, ShiftedFlood
from .core import BatchEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.causality import CausalLog
    from ..telemetry.rounds import RoundStream

__all__ = ["run_mpx_batch"]


def run_mpx_batch(
    graph: Graph,
    shifts: Mapping[int, float],
    budget: int,
    mode: str,
    word_budget: int | None = None,
    rounds: "RoundStream | None" = None,
    causal: "CausalLog | None" = None,
) -> Tuple[Dict[int, int], NetworkStats]:
    """One-shot MPX competition; returns ``(center_of, stats)``.

    ``shifts`` and ``budget`` come from the driver (drawn from the same
    ``(seed, "mpx-shift", vertex)`` streams the reference nodes use).
    Runs ``budget + 1`` rounds: ``budget`` broadcast rounds plus the
    decision round in which every vertex halts.
    """
    engine = BatchEngine(graph, word_budget, rounds=rounds, causal=causal)
    topology = LiveTopology(graph)
    caps = {v: math.floor(s) for v, s in shifts.items()}
    flood = ShiftedFlood(
        engine,
        topology,
        shifts,
        caps,
        "full" if mode == "full" else 1,
    )
    flood.run(budget)
    center_of = {v: flood.best_origin[v] for v in range(graph.num_vertices)}
    engine.halt(range(graph.num_vertices))
    engine.finish_rounds()
    return center_of, engine.stats
