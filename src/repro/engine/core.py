"""The batch-synchronous round engine core.

:class:`BatchEngine` is the columnar counterpart of
:class:`~repro.distributed.network.SyncNetwork`: it owns the round
counter, the halt mask, the :class:`~repro.distributed.metrics.NetworkStats`
accumulator, CONGEST budget enforcement and (optional) tracing — but it
never materialises per-message objects.  Protocols report each round's
traffic in aggregate (message count, word count, the peak per-directed-
edge word load and the offending edge), which is all the simulator-level
bookkeeping ever consumed.

Equivalence contract (pinned by ``tests/engine``): for every ported
protocol, the engine's stats, round counts, halt rounds and — with a
tracer attached — the full event stream are bit-identical to a
:class:`SyncNetwork` run of the reference node algorithms.  In
particular a ``word_budget`` violation raises
:class:`~repro.errors.CongestViolation` in the *exact* round (and with
the exact offending edge) the reference engine would report.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..distributed.message import Message
from ..distributed.metrics import NetworkStats
from ..distributed.tracing import TraceRecorder
from ..errors import CongestViolation
from ..graphs.graph import Graph

__all__ = ["BatchEngine"]


class BatchEngine:
    """Shared round/halt/stats state for columnar protocol simulations.

    Parameters
    ----------
    graph:
        Communication topology.
    word_budget:
        Per-directed-edge, per-round word limit (CONGEST mode), or
        ``None`` for the LOCAL model (unbounded but measured).
    tracer:
        Optional :class:`TraceRecorder`; when attached, protocols emit
        the same send/halt events the reference engine would.
    """

    def __init__(
        self,
        graph: Graph,
        word_budget: int | None = None,
        tracer: TraceRecorder | None = None,
    ) -> None:
        self.graph = graph
        self.word_budget = word_budget
        self.tracer = tracer
        self.stats = NetworkStats()
        self.halted = bytearray(graph.num_vertices)
        self.round = 0

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Advance to the next synchronous round (mirrors one ``step()``)."""
        self.round += 1
        self.stats.rounds += 1

    def deliver(self, count: int) -> None:
        """Record ``count`` messages handed to live receivers this round."""
        self.stats.messages_delivered += count

    def account_sends(
        self,
        messages: int,
        words: int,
        peak_words: int,
        offender: tuple[int, int] | None = None,
    ) -> None:
        """Record one round's aggregate outgoing traffic.

        ``peak_words`` is the largest word total that crossed a single
        directed edge this round; ``offender`` names such an edge (only
        consulted when the budget is exceeded).  Raises
        :class:`CongestViolation` exactly when the reference engine's
        flush would.
        """
        self.stats.messages_sent += messages
        self.stats.words_sent += words
        if peak_words > self.stats.max_words_per_edge_round:
            self.stats.max_words_per_edge_round = peak_words
        if self.word_budget is not None and peak_words > self.word_budget:
            raise CongestViolation(
                f"edge {offender} carried {peak_words} words in round "
                f"{self.round}, budget is {self.word_budget}"
            )

    # ------------------------------------------------------------------
    # Halting
    # ------------------------------------------------------------------
    def halt(self, vertices: Iterable[int]) -> None:
        """Mark ``vertices`` halted; emits trace events in ascending order."""
        for v in sorted(vertices) if self.tracer is not None else vertices:
            self.halted[v] = 1
            if self.tracer is not None:
                self.tracer.on_halt(v, self.round)

    def is_halted(self, v: int) -> bool:
        """Whether vertex ``v`` has halted."""
        return bool(self.halted[v])

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def trace_broadcast(
        self, sender: int, receivers: Sequence[int], payload, words: int
    ) -> None:
        """Emit one send event per receiver (no-op without a tracer)."""
        tracer = self.tracer
        if tracer is None:
            return
        for receiver in receivers:
            tracer.on_send(Message(sender, receiver, payload, self.round, words))
