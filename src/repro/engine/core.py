"""The batch-synchronous round engine core.

:class:`BatchEngine` is the columnar counterpart of
:class:`~repro.distributed.network.SyncNetwork`: it owns the round
counter, the halt mask, the :class:`~repro.distributed.metrics.NetworkStats`
accumulator, CONGEST budget enforcement and (optional) tracing — but it
never materialises per-message objects.  Protocols report each round's
traffic in aggregate (message count, word count, the peak per-directed-
edge word load and the offending edge), which is all the simulator-level
bookkeeping ever consumed.

Equivalence contract (pinned by ``tests/engine``): for every ported
protocol, the engine's stats, round counts, halt rounds and — with a
tracer attached — the full event stream are bit-identical to a
:class:`SyncNetwork` run of the reference node algorithms.  In
particular a ``word_budget`` violation raises
:class:`~repro.errors.CongestViolation` in the *exact* round (and with
the exact offending edge) the reference engine would report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..distributed.message import Message
from ..distributed.metrics import NetworkStats
from ..distributed.tracing import TraceRecorder
from ..errors import CongestViolation
from ..graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.causality import CausalLog
    from ..telemetry.rounds import RoundStream

__all__ = ["BatchEngine"]


class BatchEngine:
    """Shared round/halt/stats state for columnar protocol simulations.

    Parameters
    ----------
    graph:
        Communication topology.
    word_budget:
        Per-directed-edge, per-round word limit (CONGEST mode), or
        ``None`` for the LOCAL model (unbounded but measured).
    tracer:
        Optional :class:`TraceRecorder`; when attached, protocols emit
        the same send/halt events the reference engine would.
    rounds:
        Optional :class:`~repro.telemetry.rounds.RoundStream`; when
        attached, the engine emits one per-round metrics row keyed
        identically to the reference engine's.  Rounds are flushed
        lazily at the next ``begin_round`` — callers must finish with
        :meth:`finish_rounds` to emit the last one.
    causal:
        Optional :class:`~repro.telemetry.causality.CausalLog`; when
        attached, protocols derive per-message parent edges from their
        broadcast columns (:meth:`ShiftedFlood._deliver` scans each
        sender's live CSR row) and the engine emits halt records —
        row-identical to the reference engine's causal log on seeded
        runs.
    """

    def __init__(
        self,
        graph: Graph,
        word_budget: int | None = None,
        tracer: TraceRecorder | None = None,
        rounds: "RoundStream | None" = None,
        causal: "CausalLog | None" = None,
    ) -> None:
        self.graph = graph
        self.word_budget = word_budget
        self.tracer = tracer
        self.rounds = rounds
        self.causal = causal
        self.stats = NetworkStats()
        self.halted = bytearray(graph.num_vertices)
        self.num_live = graph.num_vertices
        self.round = 0

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Advance to the next synchronous round (mirrors one ``step()``)."""
        if self.rounds is not None and self.round:
            self.rounds.end_round(self.round, self.stats, self.num_live)
        self.round += 1
        self.stats.rounds += 1

    def finish_rounds(self) -> None:
        """Flush the final round to an attached round stream (idempotent)."""
        if self.rounds is not None and self.round:
            self.rounds.end_round(self.round, self.stats, self.num_live)

    def deliver(self, count: int) -> None:
        """Record ``count`` messages handed to live receivers this round."""
        self.stats.messages_delivered += count

    def account_sends(
        self,
        messages: int,
        words: int,
        peak_words: int,
        offender: tuple[int, int] | None = None,
        senders: int = 0,
    ) -> None:
        """Record one round's aggregate outgoing traffic.

        ``peak_words`` is the largest word total that crossed a single
        directed edge this round; ``offender`` names such an edge (only
        consulted when the budget is exceeded).  ``senders`` is the
        number of distinct sending vertices — the round stream's
        frontier column (protocols may pass 0 when no stream is
        attached).  Raises :class:`CongestViolation` exactly when the
        reference engine's flush would.
        """
        self.stats.messages_sent += messages
        self.stats.words_sent += words
        if senders and self.rounds is not None:
            self.rounds.note_frontier(senders)
        if peak_words > self.stats.max_words_per_edge_round:
            self.stats.max_words_per_edge_round = peak_words
        if self.word_budget is not None and peak_words > self.word_budget:
            raise CongestViolation(
                f"edge {offender} carried {peak_words} words in round "
                f"{self.round}, budget is {self.word_budget}"
            )

    # ------------------------------------------------------------------
    # Halting
    # ------------------------------------------------------------------
    def halt(self, vertices: Iterable[int]) -> None:
        """Mark ``vertices`` halted; emits trace events in ascending order."""
        tracer, rounds, causal = self.tracer, self.rounds, self.causal
        if tracer is None and rounds is None and causal is None:
            for v in vertices:
                self.halted[v] = 1
            return
        newly = 0
        ordered = (
            sorted(vertices)
            if tracer is not None or causal is not None
            else vertices
        )
        for v in ordered:
            first = not self.halted[v]
            if first:
                newly += 1
            self.halted[v] = 1
            if tracer is not None:
                tracer.on_halt(v, self.round)
            if causal is not None and first:
                causal.halt(v, self.round)
        if rounds is not None:
            self.num_live -= newly
            rounds.note_halts(newly)

    def is_halted(self, v: int) -> bool:
        """Whether vertex ``v`` has halted."""
        return bool(self.halted[v])

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def trace_broadcast(
        self, sender: int, receivers: Sequence[int], payload, words: int
    ) -> None:
        """Emit one send event per receiver (no-op without a tracer)."""
        tracer = self.tracer
        if tracer is None:
            return
        for receiver in receivers:
            tracer.on_send(Message(sender, receiver, payload, self.round, words))
