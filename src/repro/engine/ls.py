"""Batch-engine port of the distributed Linial–Saks protocol.

Same split as :mod:`repro.engine.en`: the phase control plane stays in
:func:`repro.baselines.distributed_ls.decompose_distributed` (which
selects this executor with ``backend="batch"``); each phase's data plane
is one full-forwarding :class:`~repro.engine.broadcast.ShiftedFlood`
epoch over integer radii, followed by the shared announce round.

LS-specific wrinkles, both carried by the flood core's summaries:

* the broadcast range of an integer radius ``r`` is ``r`` itself
  (a value may take a hop while ``distance + 1 <= r``);
* the decision is minimum-**id**, not maximum-value: a vertex joins the
  smallest origin it heard iff that origin's value arrived with
  ``distance < radius`` — i.e. its shifted value is still positive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping

from ..graphs.graph import Graph
from .broadcast import LiveTopology, ShiftedFlood, announce_round
from .core import BatchEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.causality import CausalLog
    from ..telemetry.rounds import RoundStream

__all__ = ["BatchLSPhases"]


class BatchLSPhases:
    """Columnar phase executor for the distributed LS protocol."""

    def __init__(
        self,
        graph: Graph,
        word_budget: int | None = None,
        rounds: "RoundStream | None" = None,
        causal: "CausalLog | None" = None,
    ) -> None:
        self.engine = BatchEngine(graph, word_budget, rounds=rounds, causal=causal)
        self.topology = LiveTopology(graph)
        self._carry = 0

    @property
    def stats(self):
        """The accumulated :class:`NetworkStats` of the run so far."""
        return self.engine.stats

    def run_phase(
        self, phase: int, budget: int, radii: Mapping[int, int]
    ) -> Dict[int, int]:
        """Run one phase (``budget + 2`` rounds); returns ``joiner -> center``."""
        flood = ShiftedFlood(
            self.engine,
            self.topology,
            radii,
            radii,  # integer radii are their own broadcast caps
            "full",
            first_round_delivered=self._carry,
        )
        flood.run(budget)
        joined: Dict[int, int] = {}
        min_origin, min_shifted = flood.min_origin, flood.min_shifted
        for v in self.topology.live_list:
            if min_shifted[v] > 0:  # winner's value arrived with distance < radius
                joined[v] = min_origin[v]
        self._carry = announce_round(self.engine, self.topology, list(joined))
        return joined

    def finish(self) -> None:
        """Flush the last round to an attached round stream."""
        self.engine.finish_rounds()
