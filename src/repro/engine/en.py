"""Batch-engine port of the distributed Elkin–Neiman protocol.

:class:`BatchENPhases` executes the per-phase data plane of
:mod:`repro.core.distributed_en` columnarly: one
:class:`~repro.engine.broadcast.ShiftedFlood` epoch per phase
(``B_t`` broadcast rounds + the decision merge round), then the shared
announce round.  The phase *control* plane — schedule, radii, budgets,
truncation bookkeeping — stays in :func:`repro.core.distributed_en.decompose_distributed`,
which drives either this class or the reference
:class:`~repro.distributed.network.SyncNetwork` through the same loop,
selected by its ``backend=`` parameter.

Equivalence contract (``tests/engine/test_en_equivalence.py``): for any
fixed ``(graph, seed, mode, schedule)`` both backends produce the same
decomposition, the same ``rounds_per_phase`` and bit-identical
:class:`~repro.distributed.metrics.NetworkStats` — including the peak
words-per-edge-per-round CONGEST figure and the exact round of a
``word_budget`` violation.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Mapping

from ..graphs.graph import Graph
from .broadcast import LiveTopology, ShiftedFlood, announce_round
from .core import BatchEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.causality import CausalLog
    from ..telemetry.rounds import RoundStream

__all__ = ["BatchENPhases"]


class BatchENPhases:
    """Columnar phase executor for the distributed EN protocol."""

    def __init__(
        self,
        graph: Graph,
        mode: str,
        word_budget: int | None = None,
        rounds: "RoundStream | None" = None,
        causal: "CausalLog | None" = None,
    ) -> None:
        self.engine = BatchEngine(graph, word_budget, rounds=rounds, causal=causal)
        self.topology = LiveTopology(graph)
        self._policy = "full" if mode == "full" else 2
        self._carry = 0  # announce messages in flight into the next phase

    @property
    def stats(self):
        """The accumulated :class:`NetworkStats` of the run so far."""
        return self.engine.stats

    def run_phase(
        self, phase: int, beta: float, budget: int, radii: Mapping[int, float]
    ) -> Dict[int, int]:
        """Run one phase (``budget + 2`` rounds); returns ``joiner -> center``.

        ``radii`` are the driver's per-vertex draws for this phase — the
        same ``Exp(beta)`` values the reference nodes derive from the
        shared streams (``beta`` itself is therefore not re-used here).
        """
        caps = {v: math.floor(r) for v, r in radii.items()}
        flood = ShiftedFlood(
            self.engine,
            self.topology,
            radii,
            caps,
            self._policy,
            first_round_delivered=self._carry,
        )
        flood.run(budget)
        joined: Dict[int, int] = {}
        best_value, second_value = flood.best_value, flood.second_value
        best_origin, num_entries = flood.best_origin, flood.num_entries
        for v in self.topology.live_list:
            second = second_value[v] if num_entries[v] > 1 else 0.0
            if best_value[v] - second > 1.0:
                joined[v] = best_origin[v]
        self._carry = announce_round(self.engine, self.topology, list(joined))
        return joined

    def finish(self) -> None:
        """Flush the last round to an attached round stream."""
        self.engine.finish_rounds()
