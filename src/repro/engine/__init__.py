"""Columnar batch round-engine for million-node protocol simulation.

The reference simulator (:mod:`repro.distributed`) executes one Python
object per node and one object per message — the right shape for
developing and validating protocols, and the wrong shape for running
them at :math:`n \\approx 10^6`.  This package is the scale path: the
same synchronous-round semantics (§1.1 of the paper), executed over flat
per-vertex arrays and the CSR buffers of
:class:`~repro.graphs.graph.Graph`:

* :mod:`~repro.engine.primitives` — ``gather_min/max/sum/any`` neighbour
  reductions, sparse ``scatter_min``, masked fills; numpy-accelerated
  with a bit-identical pure-Python fallback (``REPRO_KERNEL=py``);
* :mod:`~repro.engine.core` — :class:`BatchEngine`: rounds, halt mask,
  :class:`~repro.distributed.metrics.NetworkStats` accounting, CONGEST
  ``word_budget`` enforcement and optional tracing;
* :mod:`~repro.engine.protocols` — batch ports of flood, BFS tree,
  convergecast and leader election;
* :mod:`~repro.engine.broadcast` — the shifted-value flood epoch shared
  by the decomposition protocols;
* :mod:`~repro.engine.en` / :mod:`~repro.engine.ls` /
  :mod:`~repro.engine.mpx` — phase executors behind the ``backend="batch"``
  parameter of the distributed EN / LS / MPX drivers.

Everything here is pinned bit-identical to the reference simulator by
the equivalence suite in ``tests/engine`` — outputs, round counts,
message totals, violation rounds and trace events alike.
"""

from ._backend import backend_name, numpy_enabled
from .broadcast import LiveTopology, ShiftedFlood, announce_round
from .core import BatchEngine
from .primitives import (
    gather_any,
    gather_max,
    gather_min,
    gather_sum,
    live_degrees,
    masked_fill,
    scatter_min,
)
from .protocols import (
    BatchBFSTree,
    BatchConvergecastSum,
    BatchFlood,
    BatchLeaderElection,
    BatchProtocol,
    BFSTreeResult,
    ConvergecastResult,
    FloodResult,
    LeaderElectionResult,
    bfs_tree,
    convergecast_sum,
    flood,
    leader_election,
)

__all__ = [
    "BatchBFSTree",
    "BatchConvergecastSum",
    "BatchEngine",
    "BatchFlood",
    "BatchLeaderElection",
    "BatchProtocol",
    "BFSTreeResult",
    "ConvergecastResult",
    "FloodResult",
    "LeaderElectionResult",
    "LiveTopology",
    "ShiftedFlood",
    "announce_round",
    "backend_name",
    "bfs_tree",
    "convergecast_sum",
    "flood",
    "gather_any",
    "gather_max",
    "gather_min",
    "gather_sum",
    "leader_election",
    "live_degrees",
    "masked_fill",
    "numpy_enabled",
    "scatter_min",
]
