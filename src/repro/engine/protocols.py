"""Columnar ports of the standard protocols in :mod:`repro.distributed.protocols`.

Each protocol here reproduces its :class:`~repro.distributed.node.NodeAlgorithm`
reference — outputs, round counts, halt rounds, the full
:class:`~repro.distributed.metrics.NetworkStats` and (with a tracer) the
exact event stream — while storing all state in flat per-vertex arrays
and executing each round as bulk work over the CSR buffers:

* :class:`BatchFlood` / :class:`BatchBFSTree` ride the fused
  frontier-list kernel (:func:`repro.graphs._kernel.bfs_levels`): a
  flood *is* a BFS, so the whole run collapses into one kernel call plus
  arithmetic over the levels;
* :class:`BatchLeaderElection` is delta-driven: only vertices whose
  leader estimate improved transmit, via :func:`~repro.engine.primitives.scatter_min`;
* :class:`BatchConvergecastSum` schedules the tree aggregation by report
  round; float accumulation replays the reference inbox order exactly
  (children merged in ``(report round, id)`` order), so totals are
  bit-identical, not merely close.

The module-level helpers (:func:`flood`, :func:`bfs_tree`,
:func:`convergecast_sum`, :func:`leader_election`) mirror the
``run_*`` drivers of the reference module and return result objects that
also carry the engine stats.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..distributed.metrics import NetworkStats
from ..distributed.tracing import TraceRecorder
from ..graphs._kernel import bfs_levels, gather_frontier_rows
from ..graphs.graph import Graph
from . import _backend
from .core import BatchEngine
from .primitives import scatter_min

__all__ = [
    "BatchProtocol",
    "BatchFlood",
    "BatchBFSTree",
    "BatchConvergecastSum",
    "BatchLeaderElection",
    "FloodResult",
    "BFSTreeResult",
    "ConvergecastResult",
    "LeaderElectionResult",
    "flood",
    "bfs_tree",
    "convergecast_sum",
    "leader_election",
]


class BatchProtocol:
    """Base class for columnar protocols driven by a :class:`BatchEngine`.

    Subclasses implement :meth:`run`, which must execute the whole
    protocol — advancing rounds via ``engine.begin_round()``, reporting
    traffic via ``engine.account_sends(...)`` / ``engine.deliver(...)``
    and halting vertices via ``engine.halt(...)`` — and return a result
    object.  The engine supplies the simulator-level semantics (stats,
    CONGEST budget, tracing); the protocol supplies the columnar round
    logic.
    """

    def run(self, engine: BatchEngine):
        raise NotImplementedError


# ----------------------------------------------------------------------
# Flood
# ----------------------------------------------------------------------
@dataclass
class FloodResult:
    """Outcome of a batch flood: arrival rounds (= distances) plus costs."""

    arrival: Dict[int, int]
    stats: NetworkStats
    rounds: int


class BatchFlood(BatchProtocol):
    """Flood a token from ``root``; equivalent of :class:`FloodNode`."""

    def __init__(self, root: int) -> None:
        self.root = root

    def run(self, engine: BatchEngine) -> FloodResult:
        graph = engine.graph
        indptr, indices = graph.csr()
        root = self.root
        levels = bfs_levels(graph, [root], bytearray(graph.num_vertices))
        arrival = {v: d for d, level in enumerate(levels) for v in level}
        if indptr[root + 1] == indptr[root]:  # isolated root: nothing in flight
            return FloodResult(arrival, engine.stats, 0)
        payload = ("flood", root)
        pending = 0
        for depth, level in enumerate(levels):
            if depth > 0:
                engine.begin_round()
                engine.deliver(pending)
            messages = sum(indptr[v + 1] - indptr[v] for v in level)
            if engine.tracer is not None:
                for v in level:
                    engine.trace_broadcast(
                        v, indices[indptr[v] : indptr[v + 1]], payload, 2
                    )
            first = level[0]
            engine.account_sends(
                messages,
                2 * messages,
                2 if messages else 0,
                offender=(first, indices[indptr[first]]) if messages else None,
            )
            pending = messages
        engine.begin_round()  # the quiet round that drains the last wave
        engine.deliver(pending)
        return FloodResult(arrival, engine.stats, engine.round)


def flood(
    graph: Graph,
    root: int,
    word_budget: int | None = None,
    tracer: TraceRecorder | None = None,
) -> FloodResult:
    """Batch counterpart of :func:`repro.distributed.protocols.run_flood`."""
    return BatchFlood(root).run(BatchEngine(graph, word_budget, tracer))


# ----------------------------------------------------------------------
# BFS tree
# ----------------------------------------------------------------------
@dataclass
class BFSTreeResult:
    """Parent/depth layers of a BFS tree plus per-vertex children lists."""

    parents: Dict[int, int]
    depths: Dict[int, int]
    children: Dict[int, List[int]]
    stats: NetworkStats
    rounds: int


class BatchBFSTree(BatchProtocol):
    """Build a BFS tree from ``root``; equivalent of :class:`BFSTreeNode`.

    The reference node adopts the *first announcer* as parent; since all
    depth-``d`` vertices announce simultaneously and inboxes are sorted
    by sender, that is the minimum-id neighbour one level up.
    """

    def __init__(self, root: int) -> None:
        self.root = root

    def run(self, engine: BatchEngine) -> BFSTreeResult:
        graph = engine.graph
        n = graph.num_vertices
        indptr, indices = graph.csr()
        root = self.root
        levels = bfs_levels(graph, [root], bytearray(n))
        level_of = array("l", bytes(array("l").itemsize * n))
        for depth, level in enumerate(levels):
            for v in level:
                level_of[v] = depth + 1  # 0 = unreached
        parents: Dict[int, int] = {root: -1}
        depths: Dict[int, int] = {root: 0}
        children: Dict[int, List[int]] = {v: [] for lvl in levels for v in lvl}
        for depth in range(1, len(levels)):
            for v in levels[depth]:
                for position in range(indptr[v], indptr[v + 1]):
                    u = indices[position]
                    if level_of[u] == depth:  # stored depth + 1
                        parents[v] = u
                        children[u].append(v)
                        break
                depths[v] = depth
        if indptr[root + 1] == indptr[root]:
            return BFSTreeResult(parents, depths, children, engine.stats, 0)
        pending = 0
        for depth, level in enumerate(levels):
            if depth > 0:
                engine.begin_round()
                engine.deliver(pending)
            messages = words = 0
            peak = 0
            offender: Tuple[int, int] | None = None
            for v in level:
                degree = indptr[v + 1] - indptr[v]
                messages += degree
                if depth == 0:
                    words += 2 * degree
                    if degree and peak < 2:
                        peak, offender = 2, (v, indices[indptr[v]])
                else:
                    words += 2 * degree - 1  # one 1-word "child", rest "bfs"
                    if degree > 1 and peak < 2:
                        first = next(
                            indices[p]
                            for p in range(indptr[v], indptr[v + 1])
                            if indices[p] != parents[v]
                        )
                        peak, offender = 2, (v, first)
                    elif peak == 0:
                        peak, offender = 1, (v, parents[v])
            if engine.tracer is not None:
                self._trace_level(engine, depth, levels[depth], parents, indptr, indices)
            engine.account_sends(messages, words, peak, offender)
            pending = messages
        engine.begin_round()
        engine.deliver(pending)
        return BFSTreeResult(parents, depths, children, engine.stats, engine.round)

    @staticmethod
    def _trace_level(engine, depth, level, parents, indptr, indices) -> None:
        for v in level:
            row = indices[indptr[v] : indptr[v + 1]]
            if depth == 0:
                engine.trace_broadcast(v, row, ("bfs", 1), 2)
            else:
                parent = parents[v]
                engine.trace_broadcast(v, (parent,), ("child",), 1)
                engine.trace_broadcast(
                    v, [u for u in row if u != parent], ("bfs", depth + 1), 2
                )


def bfs_tree(
    graph: Graph,
    root: int,
    word_budget: int | None = None,
    tracer: TraceRecorder | None = None,
) -> BFSTreeResult:
    """Batch counterpart of :func:`repro.distributed.protocols.run_bfs_tree`."""
    return BatchBFSTree(root).run(BatchEngine(graph, word_budget, tracer))


# ----------------------------------------------------------------------
# Convergecast
# ----------------------------------------------------------------------
@dataclass
class ConvergecastResult:
    """Root total of a tree aggregation plus the convergecast-stage costs."""

    total: float
    totals: Dict[int, float]
    stats: NetworkStats
    rounds: int


class BatchConvergecastSum(BatchProtocol):
    """Sum values up a precomputed tree; equivalent of :class:`ConvergecastSumNode`.

    A vertex "reports" (sends its subtree total to its parent, then
    halts) in round ``r(v) = 1 + max r(children)`` with leaves at
    ``r = 0``.  Children merge into a parent in ``(r(child), id)``
    order — exactly the order their messages appear in the reference
    node's sorted inboxes — so float totals are bit-identical.
    """

    def __init__(
        self,
        values: Mapping[int, float],
        parents: Mapping[int, int],
        children: Mapping[int, List[int]],
        depths: Mapping[int, int] | None = None,
    ) -> None:
        self.values = values
        self.parents = parents
        self.children = children
        self.depths = depths

    def run(self, engine: BatchEngine) -> ConvergecastResult:
        parents, children = self.parents, self.children
        depth_of = self.depths if self.depths is not None else self._all_depths()
        report_round: Dict[int, int] = {}
        # Deepest vertices first: r(v) depends only on r(children).
        for v in sorted(parents, key=lambda v: -depth_of[v]):
            kids = children.get(v, [])
            report_round[v] = 1 + max((report_round[c] for c in kids), default=-1)
        totals = {v: float(self.values.get(v, 0.0)) for v in parents}
        senders_by_round: Dict[int, List[int]] = {}
        for v in parents:
            if parents[v] >= 0:
                senders_by_round.setdefault(report_round[v], []).append(v)
        last = max(senders_by_round, default=-1)
        pending = 0
        for r in range(last + 1):
            if r > 0:
                engine.begin_round()
                engine.deliver(pending)
            senders = sorted(senders_by_round.get(r, ()))
            for v in senders:  # ascending = the reference inbox order
                totals[parents[v]] += totals[v]
            messages = len(senders)
            if engine.tracer is not None:
                for v in senders:
                    engine.trace_broadcast(v, (parents[v],), ("sum", totals[v]), 2)
            engine.account_sends(
                messages,
                2 * messages,
                2 if messages else 0,
                offender=(senders[0], parents[senders[0]]) if messages else None,
            )
            engine.halt(senders)
            pending = messages
        if pending:
            engine.begin_round()
            engine.deliver(pending)
        root_total = next(
            (totals[v] for v, parent in parents.items() if parent == -1), 0.0
        )
        return ConvergecastResult(root_total, totals, engine.stats, engine.round)

    def _all_depths(self) -> Dict[int, int]:
        """Tree depths in O(n): walk each unresolved parent chain once,
        then unwind it (memoised, so shared prefixes are never re-walked)."""
        parents = self.parents
        depth_of: Dict[int, int] = {}
        for v in parents:
            chain = []
            x = v
            while x not in depth_of and parents.get(x, -1) >= 0:
                chain.append(x)
                x = parents[x]
            depth = depth_of.get(x, 0)
            for node in reversed(chain):
                depth += 1
                depth_of[node] = depth
            if v not in depth_of:  # v is a root (or detached vertex)
                depth_of[v] = 0
        return depth_of


def convergecast_sum(
    graph: Graph,
    root: int,
    values: Mapping[int, float],
    word_budget: int | None = None,
    tracer: TraceRecorder | None = None,
) -> ConvergecastResult:
    """Batch counterpart of :func:`run_convergecast_sum`.

    Builds the BFS tree with :func:`bfs_tree` (unmetered, like the
    reference helper's first stage), then runs the metered convergecast.
    """
    tree = bfs_tree(graph, root)
    protocol = BatchConvergecastSum(values, tree.parents, tree.children, tree.depths)
    return protocol.run(BatchEngine(graph, word_budget, tracer))


# ----------------------------------------------------------------------
# Leader election
# ----------------------------------------------------------------------
@dataclass
class LeaderElectionResult:
    """Per-vertex elected leader (min id per component) plus costs."""

    leader: Dict[int, int]
    stats: NetworkStats
    rounds: int


class BatchLeaderElection(BatchProtocol):
    """Minimum-id election; equivalent of :class:`LeaderElectionNode`.

    Delta-driven: after the initial all-broadcast, only vertices whose
    estimate improved last round transmit, so each round is one sparse
    :func:`scatter_min` over the sender frontier.
    """

    def run(self, engine: BatchEngine) -> LeaderElectionResult:
        graph = engine.graph
        n = graph.num_vertices
        indptr, indices = graph.csr()
        leader = array("l", range(n))
        if n == 0:
            return LeaderElectionResult({}, engine.stats, 0)
        sent_value = array("l", leader)
        senders = list(range(n))
        pending = self._send(engine, senders, sent_value, indptr, indices)
        # One sentinel buffer for the whole run (no id can exceed n - 1);
        # after each round only the entries the frontier touched are
        # reset, so late rounds cost O(frontier edge work), not O(n).
        incoming = array("l", [n]) * n
        while pending:
            engine.begin_round()
            engine.deliver(pending)
            scatter_min(graph, senders, sent_value, incoming)
            candidates = self._touched(graph, senders, indptr, indices, n)
            changed = []
            for v in candidates:  # ascending either way: deterministic
                value = incoming[v]
                incoming[v] = n  # reset the touched entry for next round
                if value < leader[v]:
                    leader[v] = value
                    sent_value[v] = value
                    changed.append(v)
            senders = changed
            pending = self._send(engine, senders, sent_value, indptr, indices)
        return LeaderElectionResult(
            {v: leader[v] for v in range(n)}, engine.stats, engine.round
        )

    @staticmethod
    def _touched(graph, senders, indptr, indices, n):
        """The vertices last round's frontier may have written: dense scan
        when the frontier covers most of the graph, the frontier's
        (deduplicated, sorted) neighbour set otherwise — vectorised with
        the same row-gather the scatter itself used when it pays."""
        edge_work = sum(indptr[u + 1] - indptr[u] for u in senders)
        if 4 * edge_work >= n:
            return range(n)
        if _backend.numpy_enabled() and len(senders) >= _backend.WIDE_THRESHOLD:
            np_indptr, np_indices = graph._numpy_csr()
            frontier = _backend.np.asarray(senders, dtype=np_indptr.dtype)
            targets, _counts = gather_frontier_rows(np_indptr, np_indices, frontier)
            if targets is None:
                return []
            return _backend.np.unique(targets).tolist()
        return sorted(
            {indices[p] for u in senders for p in range(indptr[u], indptr[u + 1])}
        )

    @staticmethod
    def _send(engine, senders, sent_value, indptr, indices) -> int:
        messages = sum(indptr[v + 1] - indptr[v] for v in senders)
        if engine.tracer is not None:
            for v in senders:
                engine.trace_broadcast(
                    v, indices[indptr[v] : indptr[v + 1]], ("min", sent_value[v]), 2
                )
        first = next((v for v in senders if indptr[v + 1] > indptr[v]), None)
        engine.account_sends(
            messages,
            2 * messages,
            2 if messages else 0,
            offender=(first, indices[indptr[first]]) if first is not None else None,
        )
        return messages


def leader_election(
    graph: Graph,
    word_budget: int | None = None,
    tracer: TraceRecorder | None = None,
) -> LeaderElectionResult:
    """Batch counterpart of :func:`run_leader_election`."""
    return BatchLeaderElection().run(BatchEngine(graph, word_budget, tracer))
