"""Columnar shifted-value broadcast phases (the carving epoch of §2).

Every decomposition protocol in this library — Elkin–Neiman, the
Linial–Saks baseline, the Miller–Peng–Xu partition — runs the same kind
of epoch: each live vertex injects a (value, range) pair drawn from a
shared stream, values flood outward one hop per round for ``B`` rounds
(shrinking by 1 per hop), and every vertex then applies a local decision
rule to the shifted values it heard.  :class:`ShiftedFlood` is that
epoch, executed columnarly:

* per-(vertex, origin) state lives in **one** packed-key dict
  (``key = vertex * n + origin -> best known distance``) instead of one
  Python dict per simulated node;
* the decision inputs are maintained *streamingly* in flat per-vertex
  arrays — the top-two shifted values with the reference tie-breaks
  (Elkin–Neiman's ``m1 - m2 > 1`` rule), the minimum-id origin
  (Linial–Saks' rule) and the distinct-origin count — so no per-vertex
  scan is needed at decision time;
* forwarding replicates the reference node algorithms *exactly*,
  including the CONGEST top-``k`` rule's subtle slice semantics: the
  reference picks the top-``k`` eligible origins **before** dropping
  already-sent ones, so a vertex whose leaders were already forwarded
  stays silent even when lower-ranked entries were not;
* messages are never materialised: a round's traffic is a list of
  ``(sender, origin, distance)`` broadcast records, delivered by
  scanning the sender's live CSR row.

:class:`LiveTopology` tracks the shrinking vertex set :math:`G_t`
(byte mask + live-degree array maintained incrementally), and
:func:`announce_round` implements the shared "joiners tell their
neighbours and halt" round, including the reference engine's
dropped-message accounting for messages addressed to co-joiners.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .core import BatchEngine
from .primitives import live_degrees

__all__ = ["BROADCAST_WORDS", "LiveTopology", "ShiftedFlood", "announce_round"]

_NEG_INF = -math.inf

#: CONGEST cost of one ``(tag, origin, value, distance)`` broadcast record
#: — the payload shape shared by the EN, LS and MPX protocols.
BROADCAST_WORDS = 4


def _first_live_edge(indptr, indices, live, sender: int) -> Tuple[int, int] | None:
    """``(sender, w)`` for the smallest live neighbour ``w`` — the edge the
    reference engine names first in a CongestViolation for this sender."""
    for position in range(indptr[sender], indptr[sender + 1]):
        if live[indices[position]]:
            return (sender, indices[position])
    return None  # pragma: no cover - peak senders always have live fan-out


class LiveTopology:
    """The shrinking live-vertex structure shared by multi-phase runs.

    Keeps the 0/1 ``live`` byte mask, the ascending ``live_list`` and the
    per-vertex live degree (broadcast fan-out in the current phase), all
    updated incrementally as blocks are carved out.
    """

    def __init__(self, graph) -> None:
        self.graph = graph
        n = graph.num_vertices
        self.live = bytearray(b"\x01") * n
        self.live_list: List[int] = list(range(n))
        self.live_deg = live_degrees(graph, self.live)

    def __len__(self) -> int:
        return len(self.live_list)

    def remove(self, vertices: Iterable[int]) -> None:
        """Carve ``vertices`` out of the live set, updating degrees."""
        removed = set(vertices)
        if not removed:
            return
        live = self.live
        for v in removed:
            live[v] = 0
        indptr, indices = self.graph.csr()
        live_deg = self.live_deg
        for v in removed:
            for position in range(indptr[v], indptr[v + 1]):
                w = indices[position]
                if live[w]:
                    live_deg[w] -= 1
        self.live_list = [v for v in self.live_list if v not in removed]


class ShiftedFlood:
    """One broadcast epoch over the current live subgraph.

    Parameters
    ----------
    engine:
        The :class:`BatchEngine` doing round/stats bookkeeping.
    topology:
        The live-vertex structure; only live vertices inject, relay or
        receive.
    values:
        ``origin -> injected value`` (float radii for EN/MPX, int radii
        for LS) for every live vertex.
    caps:
        ``origin -> int`` broadcast range: a value may travel to
        distance ``caps[origin]`` (``⌊r⌋`` for EN/MPX, ``r`` for LS).
    policy:
        ``"full"`` forwards every newly improved entry (LOCAL-style);
        an integer ``k`` applies the CONGEST top-``k`` rule (2 for EN's
        top-two mode, 1 for MPX's top-one mode).
    words_per_message:
        CONGEST cost of one broadcast record (4 for the
        ``(tag, origin, value, distance)`` payloads of EN/LS/MPX).
    first_round_delivered:
        Messages already in flight into this epoch's round 1 (the
        previous phase's announce messages), counted as delivered there.
    """

    def __init__(
        self,
        engine: BatchEngine,
        topology: LiveTopology,
        values: Mapping[int, float],
        caps: Mapping[int, int],
        policy,
        words_per_message: int = BROADCAST_WORDS,
        first_round_delivered: int = 0,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.values = values
        self.caps = caps
        self.policy = policy
        self.words = words_per_message
        self.first_round_delivered = first_round_delivered
        graph = topology.graph
        n = graph.num_vertices
        self._n = n
        self._indptr, self._indices = graph.csr()
        # Packed per-(vertex, origin) distances: key = vertex * n + origin.
        self.entries: Dict[int, int] = {}
        # Streaming decision summaries, indexed by vertex.
        self.best_value = [_NEG_INF] * n
        self.best_origin = [-1] * n
        self.second_value = [_NEG_INF] * n
        self.num_entries = [0] * n
        self.min_origin = [n] * n
        self.min_shifted = [_NEG_INF] * n
        # Forwarding state.
        self._sent: set[int] = set()
        self._candidates: Dict[int, List[int]] = {}
        self._pending_count = 0
        for v in topology.live_list:
            value = values[v]
            self.entries[v * n + v] = 0
            self.best_value[v] = value
            self.best_origin[v] = v
            self.num_entries[v] = 1
            self.min_origin[v] = v
            self.min_shifted[v] = value
            if policy != "full" and caps[v] >= 1:
                self._candidates[v] = [v]

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def run(self, budget: int) -> None:
        """Execute rounds ``1 .. budget + 1``: broadcasts plus the final
        merge round in which the decision inputs become complete."""
        engine = self.engine
        outgoing: List[Tuple[int, int, int]] = []
        for round_in_phase in range(1, budget + 2):
            engine.begin_round()
            if round_in_phase == 1 and self.first_round_delivered:
                engine.deliver(self.first_round_delivered)
            updated = self._deliver(outgoing)
            if round_in_phase == 1:
                outgoing = self._initial_sends() if budget >= 1 else []
            elif round_in_phase <= budget:
                if self.policy == "full":
                    outgoing = self._send_full(updated)
                else:
                    outgoing = self._send_topk(sorted(updated))
            else:
                outgoing = []

    def _initial_sends(self) -> List[Tuple[int, int, int]]:
        """Round 1: every live vertex with range ``>= 1`` forwards its own
        value — under *any* policy, since its sole entry is trivially the
        top candidate and nothing has been sent yet."""
        engine = self.engine
        n, caps = self._n, self.caps
        topk = self.policy != "full"
        sent = self._sent
        live_deg = self.topology.live_deg
        outgoing: List[Tuple[int, int, int]] = []
        messages = 0
        senders = 0
        offender_sender = -1
        for v in self.topology.live_list:
            if caps[v] < 1:
                continue
            if topk:
                sent.add(v * n + v)
            outgoing.append((v, v, 0))
            if live_deg[v]:
                messages += live_deg[v]
                senders += 1
                if offender_sender < 0:
                    offender_sender = v
        engine.account_sends(
            messages,
            self.words * messages,
            self.words if messages else 0,
            self._first_live_edge(offender_sender) if messages else None,
            senders=senders,
        )
        self._pending_count = messages
        return outgoing

    # ------------------------------------------------------------------
    # Delivery + streaming merge
    # ------------------------------------------------------------------
    def _deliver(self, outgoing: Sequence[Tuple[int, int, int]]):
        """Deliver last round's broadcasts; returns the updated vertices
        (top-``k`` policy: a set) or the new frontier (full policy).

        Order-oblivious by construction: every streaming merge below is
        a commutative max/min with a deterministic id tie-break, so any
        permutation of ``outgoing`` leaves the decision arrays
        (``best_*``, ``second_value``, ``min_*``, ``num_entries``)
        identical (``tests/engine/test_broadcast_order.py``).  This is
        the same property that lets the async engine deliver the
        reference protocols' traffic in adversarial arrival order
        without changing decompositions (``docs/async.md``).
        """
        engine = self.engine
        if self._pending_count:
            engine.deliver(self._pending_count)
            self._pending_count = 0
        full = self.policy == "full"
        updated_set: set[int] = set()
        frontier: List[Tuple[int, int, int]] = []
        if not outgoing:
            return frontier if full else updated_set
        if engine.causal is not None:
            self._log_deliveries(outgoing)
        n = self._n
        indptr, indices = self._indptr, self._indices
        live = self.topology.live
        entries = self.entries
        values, caps = self.values, self.caps
        best_value, best_origin = self.best_value, self.best_origin
        second_value, num_entries = self.second_value, self.num_entries
        min_origin, min_shifted = self.min_origin, self.min_shifted
        candidates = self._candidates
        for sender, origin, distance in outgoing:
            carried = distance + 1
            value = values[origin]
            shifted = value - carried
            cap = caps[origin]
            eligible = carried + 1 <= cap
            for position in range(indptr[sender], indptr[sender + 1]):
                w = indices[position]
                if not live[w]:
                    continue
                key = w * n + origin
                known = entries.get(key)
                if known is not None and carried >= known:
                    continue
                entries[key] = carried
                if known is None:
                    num_entries[w] += 1
                # -- streaming top-two with the reference tie-breaks --
                current_best = best_origin[w]
                if origin == current_best:
                    best_value[w] = shifted
                elif shifted > best_value[w] or (
                    shifted == best_value[w] and origin < current_best
                ):
                    if second_value[w] < best_value[w]:
                        second_value[w] = best_value[w]
                    best_value[w] = shifted
                    best_origin[w] = origin
                elif shifted > second_value[w]:
                    second_value[w] = shifted
                # -- streaming minimum-id origin (Linial–Saks rule) --
                if origin < min_origin[w]:
                    min_origin[w] = origin
                    min_shifted[w] = shifted
                elif origin == min_origin[w]:
                    min_shifted[w] = shifted
                # -- forwarding bookkeeping --
                if full:
                    if eligible:
                        frontier.append((w, origin, carried))
                else:
                    updated_set.add(w)
                    if eligible:
                        row = candidates.get(w)
                        if row is None:
                            candidates[w] = [origin]
                        else:
                            row.append(origin)
        return frontier if full else updated_set

    def _log_deliveries(self, outgoing: Sequence[Tuple[int, int, int]]) -> None:
        """Causal parent edges for one delivered broadcast column.

        Provenance is derived per sender from the columnar records: a
        sender with ``c`` outgoing ``(sender, origin, distance)``
        records put ``c`` messages on every live CSR neighbour last
        round, so the edge log is ``(sender -> w, count=c)`` for each
        live ``w`` — emitted sorted by ``(receiver, sender)``, exactly
        the reference engine's ascending-receiver, sender-sorted-inbox
        order.  Merge improvements are irrelevant: the reference engine
        delivers (and logs) every inbox message whether or not it
        updates the decision arrays.
        """
        per_sender: Dict[int, int] = {}
        for sender, _origin, _distance in outgoing:
            per_sender[sender] = per_sender.get(sender, 0) + 1
        indptr, indices = self._indptr, self._indices
        live = self.topology.live
        counts: Dict[Tuple[int, int], int] = {}
        for sender, count in per_sender.items():
            for position in range(indptr[sender], indptr[sender + 1]):
                w = indices[position]
                if live[w]:
                    counts[(w, sender)] = count
        causal = self.engine.causal
        recv_round = self.engine.round
        for (w, sender) in sorted(counts):
            causal.message(sender, recv_round - 1, w, recv_round, counts[(w, sender)])

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _send_full(self, frontier: List[Tuple[int, int, int]]):
        engine = self.engine
        live_deg = self.topology.live_deg
        counts: Dict[int, int] = {}
        messages = 0
        for sender, _origin, _distance in frontier:
            counts[sender] = counts.get(sender, 0) + 1
            messages += live_deg[sender]
        peak_count = 0
        peak_sender = -1
        for sender, count in counts.items():
            if live_deg[sender] and (
                count > peak_count or (count == peak_count and sender < peak_sender)
            ):
                peak_count, peak_sender = count, sender
        # Frontier = distinct senders with live fan-out (matches the
        # reference engine, where a sender with no live neighbours puts
        # nothing in the outbox); counted only when a stream listens.
        senders = (
            sum(1 for sender in counts if live_deg[sender])
            if engine.rounds is not None
            else 0
        )
        engine.account_sends(
            messages,
            self.words * messages,
            self.words * peak_count,
            self._first_live_edge(peak_sender) if peak_count else None,
            senders=senders,
        )
        self._pending_count = messages
        return frontier

    def _send_topk(self, armed: Sequence[int]):
        engine = self.engine
        n, k = self._n, self.policy
        entries, values = self.entries, self.values
        candidates, sent = self._candidates, self._sent
        live_deg = self.topology.live_deg
        outgoing: List[Tuple[int, int, int]] = []
        messages = 0
        senders = 0
        peak_count = 0
        peak_sender = -1
        for v in armed:
            row = candidates.get(v)
            if not row:
                continue
            base = v * n
            if len(row) == 1:  # common case: only the vertex's own entry
                origin = row[0]
                key = base + origin
                if key in sent:
                    continue
                sent.add(key)
                outgoing.append((v, origin, entries[key]))
                if live_deg[v]:
                    messages += live_deg[v]
                    senders += 1
                    if peak_count == 0:
                        peak_count, peak_sender = 1, v
                continue
            top1 = top2 = -1
            val1 = val2 = _NEG_INF
            for origin in row:
                if origin == top1 or origin == top2:
                    continue
                shifted = values[origin] - entries[base + origin]
                if shifted > val1 or (shifted == val1 and origin < top1):
                    top2, val2 = top1, val1
                    top1, val1 = origin, shifted
                elif k > 1 and (shifted > val2 or (shifted == val2 and origin < top2)):
                    top2, val2 = origin, shifted
            sends = 0
            for origin in (top1, top2)[:k]:
                if origin < 0:
                    continue
                key = base + origin
                if key in sent:
                    continue
                sent.add(key)
                outgoing.append((v, origin, entries[key]))
                sends += 1
            if sends and live_deg[v]:
                messages += sends * live_deg[v]
                senders += 1
                if sends > peak_count:
                    peak_count, peak_sender = sends, v
        engine.account_sends(
            messages,
            self.words * messages,
            self.words * peak_count,
            self._first_live_edge(peak_sender) if peak_count else None,
            senders=senders,
        )
        self._pending_count = messages
        return outgoing

    def _first_live_edge(self, sender: int) -> Tuple[int, int] | None:
        return _first_live_edge(
            self._indptr, self._indices, self.topology.live, sender
        )


def announce_round(
    engine: BatchEngine,
    topology: LiveTopology,
    joined: Sequence[int],
    words_per_message: int = 1,
) -> int:
    """The shared "joiners announce and halt" round of EN/LS.

    Every joiner broadcasts a 1-word ``left`` notice to its live
    neighbours (co-joiners included — the reference engine counts those
    as sent, then drops them at flush because the receiver has halted)
    and halts.  Prunes ``joined`` out of ``topology`` and returns the
    number of notices that survivors will receive, to be credited as
    delivered in the next phase's first round.
    """
    engine.begin_round()
    indptr, indices = engine.graph.csr()
    live = topology.live
    live_deg = topology.live_deg
    joined_set = set(joined)
    messages = 0
    senders = 0
    carried_over = 0
    offender: Tuple[int, int] | None = None
    for v in sorted(joined_set):
        if live_deg[v]:
            messages += live_deg[v]
            senders += 1
        for position in range(indptr[v], indptr[v + 1]):
            w = indices[position]
            if not live[w]:
                continue
            if offender is None:
                offender = (v, w)
            if w not in joined_set:
                carried_over += 1
    engine.account_sends(
        messages,
        words_per_message * messages,
        words_per_message if messages else 0,
        offender,
        senders=senders,
    )
    engine.halt(joined_set)
    causal = engine.causal
    if causal is not None:
        # The notices surviving to non-joined neighbours are delivered
        # at the next phase's first round; the reference engine logs
        # them there (ascending receiver, sender-sorted), after this
        # round's halt records — same sequence here.  Notices to
        # co-joiners never get logged: the reference drops them at
        # flush because the receiver has halted.
        announce_round_number = engine.round
        pairs = []
        for v in sorted(joined_set):
            for position in range(indptr[v], indptr[v + 1]):
                w = indices[position]
                if live[w] and w not in joined_set:
                    pairs.append((w, v))
        for w, v in sorted(pairs):
            causal.message(v, announce_round_number, w, announce_round_number + 1)
    topology.remove(joined_set)
    return carried_over
