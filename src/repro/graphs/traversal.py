"""Breadth-first traversal primitives with active-set filtering.

Paper context: §2 ("Construction") — the algorithm repeatedly operates on
the *current graph* :math:`G_t`, the subgraph of :math:`G` induced by the
vertices that have not yet been carved into a block.  Rather than
materialising an induced subgraph every phase, all traversal routines here
accept an optional ``active`` argument: vertices outside it are treated as
absent (never visited, never relayed through).  This matches the
distributed reality, where carved vertices have halted and no longer
forward messages.

``active`` may be an :class:`~repro.graphs.activeset.ActiveSet` (the fast
path — its byte mask feeds the kernel directly), or any ``Container[int]``
(``set``, ``frozenset``, list, …) for backwards compatibility, adapted via
:func:`~repro.graphs.activeset.as_active_mask`.

All functions are deterministic: BFS levels are expanded over sorted CSR
rows and emitted in ascending vertex order within each level, identically
on every backend (see :mod:`repro.graphs._kernel`).  Returned distance
dicts are therefore ordered by ``(distance, vertex)``.
"""

from __future__ import annotations

from collections import deque
from typing import Container, Iterable, Sequence

from ..errors import GraphError
from ._kernel import bfs_levels as _bfs_levels
from .activeset import ActiveSet, blocked_from_active
from .graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_distances_bounded",
    "bfs_levels",
    "multi_source_bfs",
    "connected_components",
    "component_of",
    "is_connected",
    "shortest_path",
]

def _distances_from_levels(levels: list[list[int]]) -> dict[int, int]:
    distances: dict[int, int] = {}
    for depth, level in enumerate(levels):
        for v in level:
            distances[v] = depth
    return distances


def bfs_levels(
    graph: Graph,
    sources: Iterable[int],
    active: Container[int] | ActiveSet | None = None,
    radius: int | None = None,
) -> list[list[int]]:
    """BFS levels from ``sources``: ``levels[d]`` = vertices at distance ``d``.

    The raw form of the kernel's output — cheaper than a distance dict
    when only level membership or the reached count is needed (cluster
    eccentricities, ball growing, broadcast simulation).  Sources must be
    active; each level is sorted ascending.
    """
    ordered = sorted(set(sources))
    blocked = blocked_from_active(graph.num_vertices, active)
    for s in ordered:
        graph._check_vertex(s)
        if blocked[s]:
            raise GraphError(f"source {s} is not in the active set")
    return _bfs_levels(graph, ordered, blocked, radius=radius)


def bfs_distances(
    graph: Graph,
    source: int,
    active: Container[int] | ActiveSet | None = None,
) -> dict[int, int]:
    """Distances from ``source`` to every reachable active vertex.

    Parameters
    ----------
    graph:
        The host graph.
    source:
        Start vertex; must be active if ``active`` is given.
    active:
        Optional vertex filter.  Paths may only use active vertices, which
        makes the result the distance function of the induced subgraph
        ``G[active]``.

    Returns
    -------
    dict[int, int]
        Mapping ``vertex -> hop distance`` containing ``source`` (distance
        0) and every active vertex reachable from it.
    """
    return bfs_distances_bounded(graph, source, radius=None, active=active)


def bfs_distances_bounded(
    graph: Graph,
    source: int,
    radius: int | None,
    active: Container[int] | ActiveSet | None = None,
) -> dict[int, int]:
    """Distances from ``source``, truncated at ``radius`` hops.

    This is the workhorse of the carving kernel: each phase broadcasts a
    vertex's radius to its ``⌊r_v⌋``-neighbourhood in :math:`G_t`, i.e. a
    bounded BFS over the active set.

    ``radius=None`` means unbounded; ``radius < 0`` returns an empty dict
    (the broadcast does not even reach its own origin — never the case in
    the algorithm since ``r_v >= 0``, but defined for completeness).
    """
    if radius is not None and radius < 0:
        return {}
    graph._check_vertex(source)
    blocked = blocked_from_active(graph.num_vertices, active)
    if blocked[source]:
        raise GraphError(f"source {source} is not in the active set")
    return _distances_from_levels(_bfs_levels(graph, [source], blocked, radius=radius))


def multi_source_bfs(
    graph: Graph,
    sources: Iterable[int],
    active: Container[int] | ActiveSet | None = None,
) -> dict[int, int]:
    """Distances to the nearest of several sources (all at distance 0).

    Used e.g. to compute cluster eccentricities from a set of centers.
    """
    ordered = sorted(set(sources))
    blocked = blocked_from_active(graph.num_vertices, active)
    for s in ordered:
        graph._check_vertex(s)
        if blocked[s]:
            raise GraphError(f"source {s} is not in the active set")
    return _distances_from_levels(_bfs_levels(graph, ordered, blocked))


def connected_components(
    graph: Graph,
    active: Container[int] | ActiveSet | None = None,
    universe: Sequence[int] | None = None,
) -> list[list[int]]:
    """Connected components of ``G[active]`` as sorted vertex lists.

    Parameters
    ----------
    graph:
        Host graph.
    active:
        Optional vertex filter; when given, only active vertices appear and
        only edges between active vertices connect them.
    universe:
        Optional iteration order / subset of vertices to consider.  Defaults
        to all vertices of the graph.  Vertices in ``universe`` that are not
        active are skipped.

    Returns
    -------
    list[list[int]]
        Components sorted by their smallest vertex; each component's
        vertices sorted ascending.

    Notes
    -----
    All starts share one blocked mask, so the total cost is one BFS sweep
    of ``G[active]`` regardless of how many components there are.
    """
    if universe is None:
        universe = graph.vertices()
    blocked = blocked_from_active(graph.num_vertices, active)
    components: list[list[int]] = []
    for start in universe:
        if not 0 <= start < graph.num_vertices:
            if active is not None:
                continue  # not active, skip (matches the Container probe)
            graph._check_vertex(start)
        if blocked[start]:
            continue
        levels = _bfs_levels(graph, [start], blocked)
        component = sorted(v for level in levels for v in level)
        components.append(component)
    components.sort(key=lambda comp: comp[0])
    return components


def component_of(
    graph: Graph,
    vertex: int,
    active: Container[int] | ActiveSet | None = None,
) -> list[int]:
    """Sorted vertices of the connected component containing ``vertex``."""
    return sorted(bfs_distances(graph, vertex, active=active))


def is_connected(
    graph: Graph, active: Container[int] | ActiveSet | None = None
) -> bool:
    """``True`` iff ``G[active]`` is connected (empty graphs count as connected)."""
    blocked = blocked_from_active(graph.num_vertices, active)
    try:
        start = blocked.index(0)
    except ValueError:
        return True
    universe_size = len(blocked) - sum(blocked)
    levels = _bfs_levels(graph, [start], blocked)
    return sum(len(level) for level in levels) == universe_size


def shortest_path(
    graph: Graph,
    source: int,
    target: int,
    active: Container[int] | ActiveSet | None = None,
) -> list[int] | None:
    """One shortest ``source -> target`` path inside ``G[active]``.

    Returns ``None`` when ``target`` is unreachable.  Ties are broken by
    preferring the smallest predecessor, so the returned path is
    deterministic.
    """
    graph._check_vertex(source)
    blocked = blocked_from_active(graph.num_vertices, active)
    if blocked[source]:
        raise GraphError(f"source {source} is not in the active set")
    if not 0 <= target < graph.num_vertices or (blocked[target] and target != source):
        return None
    if source == target:
        return [source]
    indptr, indices = graph.csr()
    parents: dict[int, int] = {source: -1}
    blocked[source] = 1
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for w in indices[indptr[u] : indptr[u + 1]]:
            if blocked[w]:
                continue
            blocked[w] = 1
            parents[w] = u
            if w == target:
                path = [w]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            frontier.append(w)
    return None
