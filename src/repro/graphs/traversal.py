"""Breadth-first traversal primitives with active-set filtering.

The paper's algorithm repeatedly operates on the *current graph*
:math:`G_t`, the subgraph of :math:`G` induced by the vertices that have not
yet been carved into a block.  Rather than materialising an induced subgraph
every phase, all traversal routines here accept an optional ``active`` set:
vertices outside it are treated as absent (never visited, never relayed
through).  This matches the distributed reality, where carved vertices have
halted and no longer forward messages.

All functions are deterministic: vertices are expanded in sorted adjacency
order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Container, Iterable, Mapping, Sequence

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_distances_bounded",
    "multi_source_bfs",
    "connected_components",
    "component_of",
    "is_connected",
    "shortest_path",
]


def _is_active(active: Container[int] | None, v: int) -> bool:
    return active is None or v in active


def bfs_distances(
    graph: Graph,
    source: int,
    active: Container[int] | None = None,
) -> dict[int, int]:
    """Distances from ``source`` to every reachable active vertex.

    Parameters
    ----------
    graph:
        The host graph.
    source:
        Start vertex; must be active if ``active`` is given.
    active:
        Optional vertex filter.  Paths may only use active vertices, which
        makes the result the distance function of the induced subgraph
        ``G[active]``.

    Returns
    -------
    dict[int, int]
        Mapping ``vertex -> hop distance`` containing ``source`` (distance
        0) and every active vertex reachable from it.
    """
    return bfs_distances_bounded(graph, source, radius=None, active=active)


def bfs_distances_bounded(
    graph: Graph,
    source: int,
    radius: int | None,
    active: Container[int] | None = None,
) -> dict[int, int]:
    """Distances from ``source``, truncated at ``radius`` hops.

    This is the workhorse of the carving kernel: each phase broadcasts a
    vertex's radius to its ``⌊r_v⌋``-neighbourhood in :math:`G_t`, i.e. a
    bounded BFS over the active set.

    ``radius=None`` means unbounded; ``radius < 0`` returns an empty dict
    (the broadcast does not even reach its own origin — never the case in
    the algorithm since ``r_v >= 0``, but defined for completeness).
    """
    if radius is not None and radius < 0:
        return {}
    if not _is_active(active, source):
        raise GraphError(f"source {source} is not in the active set")
    distances: dict[int, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = distances[u]
        if radius is not None and du >= radius:
            continue
        for w in graph.neighbors(u):
            if w not in distances and _is_active(active, w):
                distances[w] = du + 1
                frontier.append(w)
    return distances


def multi_source_bfs(
    graph: Graph,
    sources: Iterable[int],
    active: Container[int] | None = None,
) -> dict[int, int]:
    """Distances to the nearest of several sources (all at distance 0).

    Used e.g. to compute cluster eccentricities from a set of centers.
    """
    distances: dict[int, int] = {}
    frontier: deque[int] = deque()
    for s in sorted(set(sources)):
        if not _is_active(active, s):
            raise GraphError(f"source {s} is not in the active set")
        distances[s] = 0
        frontier.append(s)
    while frontier:
        u = frontier.popleft()
        du = distances[u]
        for w in graph.neighbors(u):
            if w not in distances and _is_active(active, w):
                distances[w] = du + 1
                frontier.append(w)
    return distances


def connected_components(
    graph: Graph,
    active: Container[int] | None = None,
    universe: Sequence[int] | None = None,
) -> list[list[int]]:
    """Connected components of ``G[active]`` as sorted vertex lists.

    Parameters
    ----------
    graph:
        Host graph.
    active:
        Optional vertex filter; when given, only active vertices appear and
        only edges between active vertices connect them.
    universe:
        Optional iteration order / subset of vertices to consider.  Defaults
        to all vertices of the graph.  Vertices in ``universe`` that are not
        active are skipped.

    Returns
    -------
    list[list[int]]
        Components sorted by their smallest vertex; each component's
        vertices sorted ascending.
    """
    if universe is None:
        universe = graph.vertices()
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in universe:
        if start in seen or not _is_active(active, start):
            continue
        component = sorted(bfs_distances(graph, start, active=active))
        seen.update(component)
        components.append(component)
    components.sort(key=lambda comp: comp[0])
    return components


def component_of(
    graph: Graph,
    vertex: int,
    active: Container[int] | None = None,
) -> list[int]:
    """Sorted vertices of the connected component containing ``vertex``."""
    return sorted(bfs_distances(graph, vertex, active=active))


def is_connected(graph: Graph, active: Container[int] | None = None) -> bool:
    """``True`` iff ``G[active]`` is connected (empty graphs count as connected)."""
    if active is None:
        universe = list(graph.vertices())
    else:
        universe = sorted(v for v in graph.vertices() if v in active)
    if not universe:
        return True
    reached = bfs_distances(graph, universe[0], active=active)
    return len(reached) == len(universe)


def shortest_path(
    graph: Graph,
    source: int,
    target: int,
    active: Container[int] | None = None,
) -> list[int] | None:
    """One shortest ``source -> target`` path inside ``G[active]``.

    Returns ``None`` when ``target`` is unreachable.  Ties are broken by
    preferring the smallest predecessor, so the returned path is
    deterministic.
    """
    if not _is_active(active, source):
        raise GraphError(f"source {source} is not in the active set")
    if not _is_active(active, target):
        return None
    if source == target:
        return [source]
    parents: dict[int, int] = {source: -1}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for w in graph.neighbors(u):
            if w in parents or not _is_active(active, w):
                continue
            parents[w] = u
            if w == target:
                path = [w]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            frontier.append(w)
    return None
