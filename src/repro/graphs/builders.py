"""Graph construction helpers and optional networkx interop.

Paper context: none (infrastructure) — the boundary where external graph
descriptions (compact spec strings, edge lists, networkx objects) become
the library's CSR :class:`~repro.graphs.graph.Graph`.

The library's own :class:`~repro.graphs.graph.Graph` is the primary type;
networkx is used only at the boundary (cross-checking our generators and
metrics in tests, importing external edge lists).  The import of networkx
is deferred so the core library works without it.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping, Sequence

from ..errors import GraphError, ParameterError
from ..rng import DEFAULT_SEED
from . import generators
from .graph import Edge, Graph, GraphBuilder

__all__ = [
    "from_edge_list",
    "from_adjacency",
    "from_networkx",
    "to_networkx",
    "parse_edge_list_text",
    "parse_graph_spec",
]

#: ``er:`` spec size at which the O(n²) sampler becomes a footgun and
#: :func:`parse_graph_spec` points the caller at ``gnp_fast:`` instead.
_ER_WARN_VERTICES = 50_000


def parse_graph_spec(spec: str, seed: int = DEFAULT_SEED) -> Graph:
    """Build a graph from a compact ``family:arg:arg`` spec string.

    Understood families: ``er:n:p``, ``gnp_fast:n:p`` (skip-sampled G(n,p)
    — same distribution as ``er``, different seeded instances, ``O(n+m)``
    build time), ``grid:rows:cols``, ``torus:rows:cols``, ``path:n``,
    ``cycle:n``, ``tree:branch:height``, ``hypercube:dim``, ``conn:n:p``,
    ``regular:n:d`` and ``ws:n:k:beta``.  Random families thread ``seed``
    through to the generator; deterministic families ignore it, which is
    what lets the experiment runtime treat every workload uniformly.
    """
    parts = spec.split(":")
    family, args = parts[0], parts[1:]
    try:
        if family == "er":
            n = int(args[0])
            if n >= _ER_WARN_VERTICES:
                # Deliberately a warning, not an error: the er: stream is
                # pinned by the golden-decomposition fixtures, so the
                # sampling itself must never change — but nobody should
                # wait O(n²) for a graph gnp_fast: draws in O(n + m).
                warnings.warn(
                    f"er:{n} draws O(n²) coin flips (minutes at this size); "
                    f"use gnp_fast:{n}:{args[1]} for the same G(n, p) "
                    "distribution in O(n + m) time (note: a different "
                    "seeded instance — the er: stream is pinned by the "
                    "golden fixtures)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return generators.erdos_renyi(n, float(args[1]), seed=seed)
        if family == "gnp_fast":
            return generators.gnp_fast(int(args[0]), float(args[1]), seed=seed)
        if family == "grid":
            return generators.grid_graph(int(args[0]), int(args[1]))
        if family == "torus":
            return generators.torus_graph(int(args[0]), int(args[1]))
        if family == "path":
            return generators.path_graph(int(args[0]))
        if family == "cycle":
            return generators.cycle_graph(int(args[0]))
        if family == "tree":
            return generators.balanced_tree(int(args[0]), int(args[1]))
        if family == "hypercube":
            return generators.hypercube_graph(int(args[0]))
        if family == "conn":
            return generators.random_connected(int(args[0]), float(args[1]), seed=seed)
        if family == "regular":
            return generators.random_regular(int(args[0]), int(args[1]), seed=seed)
        if family == "ws":
            return generators.watts_strogatz(
                int(args[0]), int(args[1]), float(args[2]), seed=seed
            )
    except (IndexError, ValueError) as exc:
        raise ParameterError(f"bad graph spec {spec!r}: {exc}") from exc
    raise ParameterError(
        f"unknown graph family {family!r} "
        "(try er/gnp_fast/grid/torus/path/cycle/tree/hypercube/conn/regular/ws)"
    )


def from_edge_list(num_vertices: int, edges: Iterable[Edge]) -> Graph:
    """Build a graph from an edge iterable, ignoring duplicate edges."""
    builder = GraphBuilder(num_vertices)
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build()


def from_adjacency(adjacency: Mapping[int, Iterable[int]] | Sequence[Iterable[int]]) -> Graph:
    """Build a graph from an adjacency mapping or sequence.

    The vertex set is ``range(n)`` where ``n`` is one plus the largest
    vertex mentioned (as a key/index or as a neighbour).  The adjacency may
    list each edge in one or both directions.
    """
    if isinstance(adjacency, Mapping):
        items = list(adjacency.items())
    else:
        items = list(enumerate(adjacency))
    max_vertex = -1
    for v, nbrs in items:
        max_vertex = max(max_vertex, v, *nbrs) if nbrs else max(max_vertex, v)
    builder = GraphBuilder(max_vertex + 1)
    for v, nbrs in items:
        for w in nbrs:
            builder.add_edge(v, w)
    return builder.build()


def parse_edge_list_text(text: str) -> Graph:
    """Parse a whitespace-separated edge-list document.

    Each non-empty, non-``#`` line holds two integer endpoints.  The vertex
    set is ``range(max endpoint + 1)``.
    """
    edges: list[Edge] = []
    max_vertex = -1
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"line {lineno}: expected two endpoints, got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: non-integer endpoint in {line!r}") from exc
        if u < 0 or v < 0:
            raise GraphError(f"line {lineno}: negative vertex in {line!r}")
        edges.append((u, v))
        max_vertex = max(max_vertex, u, v)
    return from_edge_list(max_vertex + 1, edges)


def from_networkx(nx_graph: object) -> tuple[Graph, dict[object, int]]:
    """Convert a networkx graph, relabelling nodes to ``0..n-1``.

    Returns the converted graph and the ``original node -> int`` mapping.
    Node order follows ``sorted`` when the nodes are sortable, insertion
    order otherwise.
    """
    nodes = list(nx_graph.nodes())  # type: ignore[attr-defined]
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    labels = {node: i for i, node in enumerate(nodes)}
    builder = GraphBuilder(len(nodes))
    for u, v in nx_graph.edges():  # type: ignore[attr-defined]
        if u == v:
            continue
        builder.add_edge(labels[u], labels[v])
    return builder.build(), labels


def to_networkx(graph: Graph):
    """Convert to a ``networkx.Graph`` (requires networkx to be installed)."""
    import networkx as nx

    result = nx.Graph()
    result.add_nodes_from(graph.vertices())
    result.add_edges_from(graph.edges())
    return result
