"""Active-set masks: the ``G_t`` membership structure of the carving loop.

Paper context: §2 ("Construction") — every phase of the Elkin–Neiman
process operates on the *current graph* :math:`G_t`, the subgraph induced
by the vertices not yet carved into a block.  The traversal kernel
(:mod:`repro.graphs.traversal`) filters by such a vertex subset on every
edge relaxation, which makes membership probing the single hottest
operation in the library.

:class:`ActiveSet` therefore stores membership as a flat ``bytearray``
mask (one byte per vertex, ``1`` = active): probes are O(1) byte reads,
the mask feeds the CSR traversal kernel with zero conversion, and a whole
block can be removed with one C-level pass.  The class keeps the familiar
set-like surface (``in``, ``len``, iteration in ascending vertex order,
``-=``) so the algorithm drivers read unchanged.

Plain ``set``/``frozenset``/any ``Container[int]`` actives remain accepted
everywhere via :func:`as_active_mask` — external callers written against
the pre-CSR API keep working; they only pay a one-off O(n) adaption per
traversal call instead of a per-edge Python probe.
"""

from __future__ import annotations

from typing import Container, Iterable, Iterator

from ..errors import GraphError

__all__ = ["ActiveSet", "as_active_mask", "blocked_from_active"]

#: ``bytes.translate`` table inverting a 0/1 mask: 0 -> 1, anything else -> 0.
_INVERT = bytes(1 if b == 0 else 0 for b in range(256))


class ActiveSet:
    """A vertex subset of ``range(n)`` stored as a flat byte mask.

    Parameters
    ----------
    num_vertices:
        Size ``n`` of the vertex universe; members are in ``range(n)``.
    vertices:
        Optional initial members.  Use :meth:`full` for "all vertices".

    Notes
    -----
    Iteration yields members in **ascending vertex order**, so code that
    builds per-vertex dicts by iterating an :class:`ActiveSet` is
    deterministic without an extra ``sorted()`` (unlike ``set``).
    """

    __slots__ = ("_n", "_mask", "_count")

    def __init__(self, num_vertices: int, vertices: Iterable[int] | None = None) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._mask = bytearray(num_vertices)
        self._count = 0
        if vertices is not None:
            for v in vertices:
                self.add(v)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, num_vertices: int) -> "ActiveSet":
        """All of ``range(num_vertices)`` active — the phase-0 graph."""
        out = cls(num_vertices)
        out._mask = bytearray(b"\x01") * num_vertices
        out._count = num_vertices
        return out

    @classmethod
    def from_iterable(cls, num_vertices: int, vertices: Iterable[int]) -> "ActiveSet":
        """Members drawn from ``vertices`` (duplicates are fine)."""
        return cls(num_vertices, vertices)

    def copy(self) -> "ActiveSet":
        """An independent copy (the mask is duplicated)."""
        out = ActiveSet(self._n)
        out._mask = bytearray(self._mask)
        out._count = self._count
        return out

    # ------------------------------------------------------------------
    # Set-like surface
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Size of the vertex universe (not the member count)."""
        return self._n

    @property
    def mask(self) -> bytearray:
        """The underlying byte mask (``mask[v] == 1`` iff ``v`` is active).

        Exposed for the traversal kernel; treat it as read-only — mutating
        it directly desynchronises the cached member count.
        """
        return self._mask

    def __contains__(self, v: object) -> bool:
        return (
            isinstance(v, int)
            and not isinstance(v, bool)
            and 0 <= v < self._n
            and self._mask[v] != 0
        )

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        return (v for v in range(self._n) if mask[v])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ActiveSet):
            return self._n == other._n and self._mask == other._mask
        if isinstance(other, (set, frozenset)):
            return self._count == len(other) and all(v in self for v in other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"ActiveSet(n={self._n}, active={self._count})"

    def first(self) -> int | None:
        """Smallest active vertex, or ``None`` when empty (O(n) scan)."""
        if self._count == 0:
            return None
        return self._mask.index(1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, v: int) -> None:
        """Activate ``v`` (idempotent)."""
        self._check(v)
        if not self._mask[v]:
            self._mask[v] = 1
            self._count += 1

    def discard(self, v: int) -> None:
        """Deactivate ``v`` if present."""
        self._check(v)
        if self._mask[v]:
            self._mask[v] = 0
            self._count -= 1

    def remove(self, v: int) -> None:
        """Deactivate ``v``; raise :class:`GraphError` if absent."""
        if v not in self:
            raise GraphError(f"vertex {v} not in active set")
        self.discard(v)

    def difference_update(self, vertices: Iterable[int]) -> None:
        """Deactivate every vertex of ``vertices`` (out-of-range ignored)."""
        mask = self._mask
        n = self._n
        removed = 0
        for v in vertices:
            if 0 <= v < n and mask[v]:
                mask[v] = 0
                removed += 1
        self._count -= removed

    def __isub__(self, vertices: Iterable[int]) -> "ActiveSet":
        self.difference_update(vertices)
        return self

    def _check(self, v: int) -> None:
        if not isinstance(v, int) or isinstance(v, bool):
            raise GraphError(f"vertex must be an int, got {v!r}")
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range [0, {self._n})")


def as_active_mask(
    num_vertices: int, active: "Container[int] | ActiveSet | None"
) -> bytearray | None:
    """Coerce any accepted ``active`` argument into a fresh 0/1 byte mask.

    The adapter behind the traversal API's backwards compatibility:

    * ``None`` → ``None`` (meaning "everything active");
    * :class:`ActiveSet` → a *copy* of its mask;
    * ``bytearray``/``bytes`` of length ``n`` → a copy;
    * any iterable of ints (``set``, ``frozenset``, list, dict, range…) →
      mask built from its members;
    * any other ``Container[int]`` → mask built by probing all ``n``
      vertices (the degenerate but supported case).
    """
    if active is None:
        return None
    if isinstance(active, ActiveSet):
        if active.num_vertices != num_vertices:
            raise GraphError(
                f"active set is over {active.num_vertices} vertices, "
                f"graph has {num_vertices}"
            )
        return bytearray(active.mask)
    if isinstance(active, (bytearray, bytes)):
        if len(active) != num_vertices:
            raise GraphError(
                f"mask length {len(active)} does not match {num_vertices} vertices"
            )
        return bytearray(active)
    mask = bytearray(num_vertices)
    try:
        members = iter(active)  # type: ignore[arg-type]
    except TypeError:
        for v in range(num_vertices):
            if v in active:
                mask[v] = 1
        return mask
    for v in members:
        if isinstance(v, int) and 0 <= v < num_vertices:
            mask[v] = 1
    return mask


def blocked_from_active(
    num_vertices: int, active: "Container[int] | ActiveSet | None"
) -> bytearray:
    """The traversal kernel's *blocked* mask: ``1`` = inactive or visited.

    Inverts :func:`as_active_mask` in one C-level ``translate`` pass; the
    kernel then needs a single byte probe per edge to answer "inactive or
    already seen?".  Always returns a fresh mutable mask (the kernel marks
    visits into it).
    """
    if active is None:
        return bytearray(num_vertices)
    if isinstance(active, ActiveSet):
        if active.num_vertices != num_vertices:
            raise GraphError(
                f"active set is over {active.num_vertices} vertices, "
                f"graph has {num_vertices}"
            )
        return active.mask.translate(_INVERT)
    mask = as_active_mask(num_vertices, active)
    assert mask is not None
    return mask.translate(_INVERT)
