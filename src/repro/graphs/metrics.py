"""Exact metric computations: eccentricity, diameter, radius.

Paper context: §1.1 — the *strong* diameter of a cluster is the diameter
of its induced subgraph, the *weak* diameter is measured in the host
graph.  These are the verification tools used to check every diameter
guarantee (Theorems 1–3, the ``2k−2`` bound, experiment E10's
disconnected-cluster counts).  All computations are exact (one BFS per
vertex); eccentricities run on the level kernel directly, so no distance
dicts are materialised on the ``n``-BFS diameter sweeps.
"""

from __future__ import annotations

import math
from typing import Collection, Container, Iterable

from ..errors import GraphError
from .activeset import ActiveSet
from .graph import Graph
from .traversal import bfs_distances, bfs_levels

__all__ = [
    "eccentricity",
    "diameter",
    "radius",
    "strong_diameter",
    "weak_diameter",
    "average_distance",
    "all_pairs_distances",
]



def _universe(graph: Graph, active: Container[int] | None) -> list[int]:
    """Sorted list of active vertices (all vertices when ``active`` is None)."""
    if active is None:
        return list(graph.vertices())
    if isinstance(active, ActiveSet):
        return list(active)
    return [v for v in graph.vertices() if v in active]


def eccentricity(
    graph: Graph,
    vertex: int,
    active: Container[int] | None = None,
    universe_size: int | None = None,
) -> float:
    """Eccentricity of ``vertex`` in ``G[active]``.

    Returns ``math.inf`` when some active vertex is unreachable (the
    induced subgraph is disconnected).  ``universe_size`` is the number of
    active vertices; it is required when ``active`` has no ``__len__``.
    """
    if universe_size is None:
        if active is None:
            universe_size = graph.num_vertices
        elif isinstance(active, Collection):
            universe_size = len(active)
        else:
            raise GraphError("universe_size required for sized-less active sets")
    levels = bfs_levels(graph, [vertex], active=active)
    if sum(len(level) for level in levels) < universe_size:
        return math.inf
    return float(len(levels) - 1)


def diameter(graph: Graph, active: Container[int] | None = None) -> float:
    """Exact diameter of ``G[active]``; ``math.inf`` if disconnected.

    The diameter of an empty or single-vertex graph is 0.
    """
    universe = _universe(graph, active)
    if len(universe) <= 1:
        return 0.0
    best = 0.0
    size = len(universe)
    for v in universe:
        ecc = eccentricity(graph, v, active=active, universe_size=size)
        if math.isinf(ecc):
            return math.inf
        best = max(best, ecc)
    return best


def radius(graph: Graph, active: Container[int] | None = None) -> float:
    """Exact radius (minimum eccentricity); ``math.inf`` if disconnected."""
    universe = _universe(graph, active)
    if len(universe) <= 1:
        return 0.0
    size = len(universe)
    eccs = [eccentricity(graph, v, active=active, universe_size=size) for v in universe]
    return min(eccs)


def strong_diameter(graph: Graph, cluster: Collection[int]) -> float:
    """Strong diameter of ``cluster``: diameter of the induced subgraph.

    ``math.inf`` when the induced subgraph is disconnected — the situation
    the paper's algorithm provably avoids and the Linial–Saks baseline does
    not (experiment E10).
    """
    members = ActiveSet.from_iterable(graph.num_vertices, cluster)
    return diameter(graph, active=members)


def weak_diameter(graph: Graph, cluster: Collection[int]) -> float:
    """Weak diameter of ``cluster``: max pairwise distance in the host graph.

    ``math.inf`` when two members lie in different components of ``G``.
    """
    members = sorted(set(cluster))
    if len(members) <= 1:
        return 0.0
    best = 0.0
    for v in members:
        distances = bfs_distances(graph, v)
        for u in members:
            if u == v:
                continue
            if u not in distances:
                return math.inf
            best = max(best, float(distances[u]))
    return best


def average_distance(graph: Graph, active: Container[int] | None = None) -> float:
    """Mean distance over connected ordered pairs of distinct vertices.

    Returns 0 when there are no such pairs.
    """
    universe = _universe(graph, active)
    total = 0
    pairs = 0
    for v in universe:
        distances = bfs_distances(graph, v, active=active)
        for u, d in distances.items():
            if u != v:
                total += d
                pairs += 1
    return total / pairs if pairs else 0.0


def all_pairs_distances(
    graph: Graph, active: Container[int] | None = None
) -> dict[int, dict[int, int]]:
    """All-pairs hop distances of ``G[active]`` (missing = unreachable)."""
    universe = _universe(graph, active)
    return {v: bfs_distances(graph, v, active=active) for v in universe}
