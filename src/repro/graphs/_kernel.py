"""The frontier-list BFS kernel over CSR adjacency buffers.

Paper context: every primitive of the reproduction — the §2 carving
broadcasts, the CONGEST simulation, the Linial–Saks and MPX baselines and
all diameter verification — reduces to breadth-first expansion over the
current graph :math:`G_t`.  This module is that single hot loop, written
once against the flat CSR representation of
:class:`~repro.graphs.graph.Graph`:

* traversal state is a *blocked* ``bytearray`` (``1`` = inactive-or-seen),
  so the per-edge filter is one byte probe instead of a Python ``set``
  membership call;
* expansion is level-synchronous ("frontier lists"), which both matches
  the round structure of the simulated distributed algorithms and lets
  wide frontiers be expanded in bulk;
* when numpy is importable (it is an **optional** accelerator — the
  kernel is fully functional without it) wide frontiers are expanded with
  vectorised gathers over zero-copy views of the CSR buffers.  Narrow
  frontiers always take the plain-Python path: per-level numpy dispatch
  overhead would dominate on high-diameter graphs.

Determinism: both paths emit every BFS level **sorted ascending**, so
results are bit-identical between backends, between runs, and between the
serial and multiprocessing experiment runners.  Set
``REPRO_KERNEL=py`` to force the pure-Python path (used by the
equivalence tests and the kernel benchmark).
"""

from __future__ import annotations

import os
from typing import Sequence

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on stdlib-only installs
    _np = None

__all__ = ["bfs_levels", "backend_name", "gather_frontier_rows", "numpy_enabled"]

#: Frontier width at which vectorised expansion starts to win over the
#: plain-Python loop (measured on CPython 3.11; the crossover is flat
#: between ~32 and ~128, see benchmarks/bench_kernel.py).
_NUMPY_FRONTIER_THRESHOLD = 64

#: ``REPRO_KERNEL=py`` forces the pure-Python path; ``auto`` (default)
#: uses numpy for wide frontiers when available.
_MODE = os.environ.get("REPRO_KERNEL", "auto").strip().lower()

USE_NUMPY = _np is not None and _MODE != "py"


def numpy_enabled() -> bool:
    """Whether the vectorised expansion path is active."""
    return USE_NUMPY and _np is not None


def backend_name() -> str:
    """Human-readable backend tag (``"numpy"`` or ``"python"``)."""
    return "numpy" if numpy_enabled() else "python"


def gather_frontier_rows(np_indptr, np_indices, frontier):
    """Concatenated CSR rows of ``frontier`` plus per-row counts.

    The vectorised row-gather idiom shared by the BFS kernel and the
    batch engine's scatter primitives: for a frontier of vertices,
    returns ``(neighbors, counts)`` where ``neighbors`` is the
    concatenation of each frontier vertex's CSR row (in frontier order)
    and ``counts[i]`` is the degree of ``frontier[i]``.  ``neighbors``
    is ``None`` when the frontier has no outgoing entries.
    """
    starts = np_indptr[frontier]
    counts = np_indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return None, counts
    ends = _np.cumsum(counts)
    gather = _np.repeat(starts - (ends - counts), counts)
    gather += _np.arange(total, dtype=gather.dtype)
    return np_indices[gather], counts


def bfs_levels(
    graph,
    sources: Sequence[int],
    blocked: bytearray,
    radius: int | None = None,
) -> list[list[int]]:
    """Level-synchronous BFS from ``sources`` over ``graph``'s CSR buffers.

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.graph.Graph` (anything exposing ``csr()``).
    sources:
        Starting vertices, **sorted ascending and not blocked**; they form
        level 0.  The caller is responsible for both invariants (the
        public wrappers in :mod:`~repro.graphs.traversal` enforce them).
    blocked:
        The 0/1 byte mask from
        :func:`~repro.graphs.activeset.blocked_from_active`; ``1`` means
        "do not enter" (inactive **or** already visited).  Mutated in
        place: every returned vertex is marked ``1``, which is what lets
        callers run many BFS passes over one shared mask
        (connected components, the carving scratch mask).
    radius:
        Maximum depth to expand to (``None`` = unbounded).

    Returns
    -------
    list[list[int]]
        ``levels[d]`` is the sorted list of vertices at distance exactly
        ``d`` from the nearest source.  ``levels[0] == list(sources)``.
    """
    indptr, indices = graph.csr()
    level: list[int] = list(sources)
    levels: list[list[int]] = [level]
    for v in level:
        blocked[v] = 1
    if USE_NUMPY:
        np_indptr, np_indices = graph._numpy_csr()
        np_blocked = _np.frombuffer(blocked, dtype=_np.uint8)
        shrink_threshold = max(len(blocked) >> 4, 1)
    depth = 0
    while level and (radius is None or depth < radius):
        depth += 1
        if USE_NUMPY and len(level) >= _NUMPY_FRONTIER_THRESHOLD:
            # Vectorised expansion: gather all frontier rows from the CSR
            # buffers, drop blocked targets, dedupe into a sorted level.
            frontier = _np.asarray(level, dtype=np_indptr.dtype)
            neighbors, _counts = gather_frontier_rows(np_indptr, np_indices, frontier)
            if neighbors is None:
                break
            neighbors = neighbors[np_blocked[neighbors] == 0]
            if neighbors.size > shrink_threshold:
                # Wide level: O(n) flag-array dedupe beats sorting.
                flags = _np.zeros(len(blocked), dtype=bool)
                flags[neighbors] = True
                unique = _np.flatnonzero(flags)
            else:
                unique = _np.unique(neighbors)
            np_blocked[unique] = 1
            level = unique.tolist()
        else:
            next_level: list[int] = []
            append = next_level.append
            for u in level:
                for w in indices[indptr[u] : indptr[u + 1]]:
                    if not blocked[w]:
                        blocked[w] = 1
                        append(w)
            next_level.sort()
            level = next_level
        if level:
            levels.append(level)
    return levels
