"""Induced subgraphs and quotient (super)graphs.

The paper's central object, the supergraph :math:`G(P)` obtained by
contracting every cluster of a partition :math:`P` to a single supernode,
is built by :func:`quotient_graph`.  Two supernodes are adjacent iff some
original edge runs between their clusters (§1, definition of
:math:`\\mathcal{E}`).
"""

from __future__ import annotations

from typing import Collection, Mapping, Sequence

from ..errors import GraphError
from .activeset import as_active_mask
from .graph import Graph, GraphBuilder

__all__ = ["induced_subgraph", "quotient_graph", "relabel"]


def induced_subgraph(
    graph: Graph, vertices: Collection[int]
) -> tuple[Graph, dict[int, int]]:
    """The subgraph induced by ``vertices``, relabelled to ``0..len-1``.

    Membership is tested against a byte mask while scanning the CSR rows
    of the selected vertices, so the cost is O(sum of their degrees).

    Returns
    -------
    (Graph, dict)
        The induced graph and the mapping ``original vertex -> new label``.
        Labels follow ascending vertex order, so results are deterministic.
    """
    ordered = sorted(set(vertices))
    for v in ordered:
        graph._check_vertex(v)
    to_new = {v: i for i, v in enumerate(ordered)}
    mask = as_active_mask(graph.num_vertices, ordered)
    assert mask is not None
    indptr, indices = graph.csr()
    builder = GraphBuilder(len(ordered))
    for v in ordered:
        for w in indices[indptr[v] : indptr[v + 1]]:
            if w > v and mask[w]:
                builder.add_edge(to_new[v], to_new[w])
    return builder.build(), to_new


def quotient_graph(
    graph: Graph, cluster_of: Mapping[int, int], num_clusters: int
) -> Graph:
    """Contract clusters into supernodes: the paper's supergraph ``G(P)``.

    Parameters
    ----------
    graph:
        The host graph.
    cluster_of:
        Total mapping ``vertex -> cluster index`` with cluster indices in
        ``range(num_clusters)``.  Every vertex of ``graph`` must be mapped
        (the decomposition is a partition of ``V``).
    num_clusters:
        Number of supernodes of the result.

    Returns
    -------
    Graph
        Graph on ``num_clusters`` vertices with an edge between two
        clusters iff some original edge crosses them.  Intra-cluster edges
        vanish (no self loops).
    """
    if len(cluster_of) != graph.num_vertices:
        raise GraphError(
            "cluster_of must map every vertex: "
            f"got {len(cluster_of)} of {graph.num_vertices}"
        )
    builder = GraphBuilder(num_clusters)
    for u, v in graph.edges():
        cu, cv = cluster_of[u], cluster_of[v]
        if not 0 <= cu < num_clusters or not 0 <= cv < num_clusters:
            raise GraphError(f"cluster index out of range on edge ({u}, {v})")
        if cu != cv:
            builder.add_edge(cu, cv)
    return builder.build()


def relabel(graph: Graph, permutation: Sequence[int]) -> Graph:
    """Return a copy of ``graph`` with vertex ``v`` renamed ``permutation[v]``.

    ``permutation`` must be a permutation of ``range(n)``.  Useful for
    testing label-invariance of the algorithms (the paper's algorithm uses
    no IDs for clustering decisions, so its output distribution must be
    invariant under relabelling).
    """
    n = graph.num_vertices
    if sorted(permutation) != list(range(n)):
        raise GraphError("permutation must be a permutation of range(n)")
    builder = GraphBuilder(n)
    for u, v in graph.edges():
        builder.add_edge(permutation[u], permutation[v])
    return builder.build()
