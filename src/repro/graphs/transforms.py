"""Graph transforms: line graphs and graph powers.

Paper context: §1.1 (applications) — maximal matching reduces to MIS on
the line graph, and neighborhood covers decompose the power graph
``G^{2W+1}``.

* :func:`line_graph` supports the classic reduction *maximal matching =
  MIS on the line graph* used by :mod:`repro.applications.matching`.
* :func:`power_graph` (``G^t``: edges between vertices at distance ≤ t)
  is a handy analysis tool — e.g. clusters of one colour class of a valid
  decomposition are independent in the supergraph, equivalently their
  contact pattern disappears in quotients of powers.
"""

from __future__ import annotations

from ..errors import ParameterError
from .graph import Edge, Graph, GraphBuilder
from .traversal import bfs_distances_bounded

__all__ = ["line_graph", "power_graph"]


def line_graph(graph: Graph) -> tuple[Graph, list[Edge]]:
    """The line graph ``L(G)`` and the edge list indexing its vertices.

    Vertex ``i`` of ``L(G)`` is ``edges[i]`` (normalised ``(u, v)``,
    ``u < v``, in the host graph's deterministic edge order); two line
    vertices are adjacent iff the corresponding edges share an endpoint.

    Returns
    -------
    (Graph, list[Edge])
        The line graph and the index-to-edge mapping.
    """
    edges = list(graph.edges())
    index_of = {edge: i for i, edge in enumerate(edges)}
    builder = GraphBuilder(len(edges))
    for v in graph.vertices():
        incident = [
            index_of[(v, w) if v < w else (w, v)] for w in graph.neighbors(v)
        ]
        for a in range(len(incident)):
            for b in range(a + 1, len(incident)):
                builder.add_edge(incident[a], incident[b])
    return builder.build(), edges


def power_graph(graph: Graph, t: int) -> Graph:
    """``G^t``: same vertices, edges between distinct vertices at distance ≤ t."""
    if t < 1:
        raise ParameterError(f"t must be >= 1, got {t}")
    builder = GraphBuilder(graph.num_vertices)
    for v in graph.vertices():
        for w, distance in bfs_distances_bounded(graph, v, t).items():
            if w > v and distance >= 1:
                builder.add_edge(v, w)
    return builder.build()
