"""Graph serialisation: edge-list files and Graphviz DOT export.

Paper context: none (infrastructure) — persistence and visualisation for
the graphs and decompositions the algorithms produce.

Round-trippable plain-text edge lists (the format
:func:`repro.graphs.builders.parse_edge_list_text` reads) plus a DOT
writer that can colour vertices by decomposition cluster — the quickest
way to *look* at what the algorithm produced.
"""

from __future__ import annotations

import pathlib
from typing import Mapping

from ..errors import GraphError
from .builders import parse_edge_list_text
from .graph import Graph

__all__ = ["write_edge_list", "read_edge_list", "to_dot"]

_DOT_PALETTE = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
)


def write_edge_list(graph: Graph, path: str | pathlib.Path) -> None:
    """Write ``graph`` as a commented edge-list file (isolated-safe).

    Isolated vertices are preserved through a ``# n = <count>`` header
    honoured by :func:`read_edge_list`.
    """
    lines = [f"# n = {graph.num_vertices}"]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    pathlib.Path(path).write_text("\n".join(lines) + "\n", encoding="utf8")


def read_edge_list(path: str | pathlib.Path) -> Graph:
    """Read a graph written by :func:`write_edge_list` (or any edge list)."""
    text = pathlib.Path(path).read_text(encoding="utf8")
    declared = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# n =") or stripped.startswith("# n="):
            try:
                declared = int(stripped.split("=", 1)[1])
            except ValueError as exc:
                raise GraphError(f"bad vertex-count header: {stripped!r}") from exc
            break
    graph = parse_edge_list_text(text)
    if declared is None or declared == graph.num_vertices:
        return graph
    if declared < graph.num_vertices:
        raise GraphError(
            f"header declares n = {declared} but edges mention vertex "
            f"{graph.num_vertices - 1}"
        )
    return Graph(declared, graph.edges())


def to_dot(
    graph: Graph,
    cluster_of: Mapping[int, int] | None = None,
    name: str = "G",
) -> str:
    """Render the graph in Graphviz DOT, optionally coloured by cluster.

    ``cluster_of`` (e.g. ``decomposition.cluster_index_map()``) assigns
    fill colours from a 10-colour palette, cycling for larger χ.
    """
    lines = [f"graph {name} {{", "  node [style=filled];"]
    for v in graph.vertices():
        if cluster_of is not None and v in cluster_of:
            color = _DOT_PALETTE[cluster_of[v] % len(_DOT_PALETTE)]
            lines.append(f'  {v} [fillcolor="{color}"];')
        else:
            lines.append(f"  {v};")
    for u, v in graph.edges():
        lines.append(f"  {u} -- {v};")
    lines.append("}")
    return "\n".join(lines)
