"""Graph substrate: the adjacency-list kernel, generators, traversal, metrics.

This package is self-contained (stdlib only) and provides everything the
decomposition algorithms need from a graph library:

* :class:`~repro.graphs.graph.Graph` / :class:`~repro.graphs.graph.GraphBuilder`
  — the immutable flat-CSR graph type;
* :class:`~repro.graphs.activeset.ActiveSet` — byte-mask vertex subsets
  (the paper's shrinking graph :math:`G_t`) feeding the traversal kernel;
* :mod:`~repro.graphs.generators` — deterministic and seeded random
  topology families used as workloads;
* :mod:`~repro.graphs.traversal` — BFS primitives with *active-set*
  filtering (the paper's shrinking graph :math:`G_t`);
* :mod:`~repro.graphs.metrics` — exact strong/weak diameter computations
  used to verify every guarantee;
* :mod:`~repro.graphs.subgraph` — induced subgraphs and the quotient
  supergraph :math:`G(P)`;
* :mod:`~repro.graphs.builders` — edge-list parsing and networkx interop.
"""

from .activeset import ActiveSet, as_active_mask
from .builders import (
    from_adjacency,
    from_edge_list,
    from_networkx,
    parse_edge_list_text,
    parse_graph_spec,
    to_networkx,
)
from .generators import (
    balanced_tree,
    barabasi_albert,
    barbell_graph,
    binary_tree,
    caterpillar_graph,
    cluster_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    gnp_fast,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_connected,
    random_regular,
    random_tree,
    star_graph,
    torus_graph,
    watts_strogatz,
)
from .graph import Edge, Graph, GraphBuilder
from .io import read_edge_list, to_dot, write_edge_list
from .metrics import (
    all_pairs_distances,
    average_distance,
    diameter,
    eccentricity,
    radius,
    strong_diameter,
    weak_diameter,
)
from .properties import (
    core_numbers,
    degeneracy,
    density,
    global_clustering_coefficient,
    local_clustering_coefficient,
    triangle_count,
)
from .subgraph import induced_subgraph, quotient_graph, relabel
from .transforms import line_graph, power_graph
from .traversal import (
    bfs_distances,
    bfs_distances_bounded,
    bfs_levels,
    component_of,
    connected_components,
    is_connected,
    multi_source_bfs,
    shortest_path,
)

__all__ = [
    "ActiveSet",
    "Edge",
    "Graph",
    "GraphBuilder",
    "as_active_mask",
    # builders
    "from_adjacency",
    "from_edge_list",
    "from_networkx",
    "parse_edge_list_text",
    "parse_graph_spec",
    "to_networkx",
    # generators
    "balanced_tree",
    "barabasi_albert",
    "barbell_graph",
    "binary_tree",
    "caterpillar_graph",
    "cluster_graph",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "erdos_renyi",
    "gnp_fast",
    "grid_graph",
    "hypercube_graph",
    "lollipop_graph",
    "path_graph",
    "random_connected",
    "random_regular",
    "random_tree",
    "star_graph",
    "torus_graph",
    "watts_strogatz",
    # io
    "read_edge_list",
    "to_dot",
    "write_edge_list",
    # metrics
    "all_pairs_distances",
    "average_distance",
    "diameter",
    "eccentricity",
    "radius",
    "strong_diameter",
    "weak_diameter",
    # properties
    "core_numbers",
    "degeneracy",
    "density",
    "global_clustering_coefficient",
    "local_clustering_coefficient",
    "triangle_count",
    # subgraph
    "induced_subgraph",
    "quotient_graph",
    "relabel",
    # transforms
    "line_graph",
    "power_graph",
    # traversal
    "bfs_distances",
    "bfs_distances_bounded",
    "bfs_levels",
    "component_of",
    "connected_components",
    "is_connected",
    "multi_source_bfs",
    "shortest_path",
]
