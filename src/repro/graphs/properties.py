"""Structural graph properties used to characterise benchmark workloads.

Paper context: none directly — these are *measurement* tools reported by
the experiment tables alongside decomposition quality (the paper's
workloads in §3 are characterised by density, degeneracy and clustering).
Exact implementations of the standard descriptors: degeneracy (cores),
triangle counts, clustering coefficients and density.  Triangle counting
intersects sorted CSR rows directly, so it stays usable on the larger
kernel-benchmark workloads.
"""

from __future__ import annotations

from .graph import Graph

__all__ = [
    "degeneracy",
    "core_numbers",
    "triangle_count",
    "global_clustering_coefficient",
    "local_clustering_coefficient",
    "density",
]


def core_numbers(graph: Graph) -> dict[int, int]:
    """Core number of every vertex (standard peeling algorithm).

    The k-core is the maximal subgraph of minimum degree ≥ k; a vertex's
    core number is the largest k whose core contains it.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    # Bucket queue over degrees.
    max_degree = max(degrees.values(), default=0)
    buckets: list[set[int]] = [set() for _ in range(max_degree + 1)]
    for v, degree in degrees.items():
        buckets[degree].add(v)
    core: dict[int, int] = {}
    current = 0
    removed: set[int] = set()
    for _ in range(graph.num_vertices):
        while current <= max_degree and not buckets[current]:
            current += 1
        # Peeling can only lower a bucket index, so re-scan from 0 when
        # the current bucket was refilled below `current`.
        low = min(
            (d for d in range(current) if buckets[d]), default=current
        )
        current = low
        v = min(buckets[current])
        buckets[current].discard(v)
        core[v] = current
        removed.add(v)
        for w in graph.neighbors(v):
            if w in removed:
                continue
            d = degrees[w]
            if d > current:
                buckets[d].discard(w)
                degrees[w] = d - 1
                buckets[d - 1].add(w)
    return core


def degeneracy(graph: Graph) -> int:
    """The graph's degeneracy: the maximum core number (0 for empty graphs)."""
    cores = core_numbers(graph)
    return max(cores.values(), default=0)


def triangle_count(graph: Graph) -> int:
    """Number of triangles, by rank-ordered neighbour intersection.

    Each triangle ``u < v < w`` is counted once at its smallest vertex:
    the higher-neighbour sets of ``u`` and ``v`` are intersected at
    C speed, reading the sorted CSR rows directly.
    """
    indptr, indices = graph.csr()
    higher: list[set[int]] = []
    for u in graph.vertices():
        row = indices[indptr[u] : indptr[u + 1]]
        higher.append({w for w in row if w > u})
    total = 0
    for u in graph.vertices():
        h_u = higher[u]
        for v in h_u:
            total += len(h_u & higher[v])
    return total


def local_clustering_coefficient(graph: Graph, vertex: int) -> float:
    """Fraction of the vertex's neighbour pairs that are themselves adjacent.

    0 for degree < 2 (no pairs).
    """
    neighbors = graph.neighbors(vertex)
    d = len(neighbors)
    if d < 2:
        return 0.0
    links = sum(
        1
        for i in range(d)
        for j in range(i + 1, d)
        if graph.has_edge(neighbors[i], neighbors[j])
    )
    return 2.0 * links / (d * (d - 1))


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: ``3 · triangles / open-or-closed wedges`` (0 if no wedges)."""
    wedges = sum(
        graph.degree(v) * (graph.degree(v) - 1) // 2 for v in graph.vertices()
    )
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def density(graph: Graph) -> float:
    """Edge density ``m / C(n, 2)`` (0 for n < 2)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)
