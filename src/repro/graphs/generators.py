"""Graph topology generators.

Paper context: §3 (experiments) — the workload families the empirical
sections run on; the theory makes no topology assumptions, so breadth of
families is the point.

Deterministic families (paths, cycles, grids, trees, hypercubes, ...) and
seeded random families (Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
random regular) used as workloads in the benchmark harness.  Every random
generator takes an integer ``seed`` and is fully reproducible.

All generators return :class:`repro.graphs.graph.Graph` instances.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Sequence

from ..errors import GraphError, ParameterError
from ..rng import DEFAULT_SEED, stream
from .graph import Graph, GraphBuilder

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "balanced_tree",
    "binary_tree",
    "hypercube_graph",
    "caterpillar_graph",
    "lollipop_graph",
    "barbell_graph",
    "erdos_renyi",
    "gnp_fast",
    "random_tree",
    "barabasi_albert",
    "watts_strogatz",
    "random_regular",
    "cluster_graph",
    "random_connected",
]


# ----------------------------------------------------------------------
# Deterministic families
# ----------------------------------------------------------------------
def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices, no edges."""
    return Graph(n)


def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``; diameter ``n - 1``."""
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices; diameter ``⌊n/2⌋``."""
    if n < 3:
        raise ParameterError(f"cycle needs n >= 3, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((0, n - 1))
    return Graph(n, edges)


def complete_graph(n: int) -> Graph:
    """Clique on ``n`` vertices."""
    return Graph(n, itertools.combinations(range(n), 2))


def star_graph(n: int) -> Graph:
    """Star: center 0 joined to ``n - 1`` leaves."""
    if n < 1:
        raise ParameterError(f"star needs n >= 1, got {n}")
    return Graph(n, ((0, i) for i in range(1, n)))


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` 2-D mesh; vertex ``(r, c)`` is labelled ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise ParameterError(f"grid needs rows, cols >= 1, got {rows}x{cols}")
    builder = GraphBuilder(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                builder.add_edge(v, v + 1)
            if r + 1 < rows:
                builder.add_edge(v, v + cols)
    return builder.build()


def torus_graph(rows: int, cols: int) -> Graph:
    """2-D torus (grid with wraparound); needs ``rows, cols >= 3``."""
    if rows < 3 or cols < 3:
        raise ParameterError(f"torus needs rows, cols >= 3, got {rows}x{cols}")
    builder = GraphBuilder(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            builder.add_edge(v, r * cols + (c + 1) % cols)
            builder.add_edge(v, ((r + 1) % rows) * cols + c)
    return builder.build()


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height (root = 0)."""
    if branching < 1 or height < 0:
        raise ParameterError(
            f"balanced_tree needs branching >= 1, height >= 0, got {branching}, {height}"
        )
    edges: list[tuple[int, int]] = []
    level = [0]
    next_label = 1
    for _ in range(height):
        next_level = []
        for parent in level:
            for _ in range(branching):
                edges.append((parent, next_label))
                next_level.append(next_label)
                next_label += 1
        level = next_level
    return Graph(next_label, edges)


def binary_tree(n: int) -> Graph:
    """Heap-shaped binary tree on ``n`` vertices (vertex ``i`` -> parent ``(i-1)//2``)."""
    if n < 1:
        raise ParameterError(f"binary_tree needs n >= 1, got {n}")
    return Graph(n, (((i - 1) // 2, i) for i in range(1, n)))


def hypercube_graph(dimension: int) -> Graph:
    """``dimension``-dimensional Boolean hypercube on ``2**dimension`` vertices."""
    if dimension < 0:
        raise ParameterError(f"hypercube needs dimension >= 0, got {dimension}")
    n = 1 << dimension
    builder = GraphBuilder(n)
    for v in range(n):
        for bit in range(dimension):
            w = v ^ (1 << bit)
            if w > v:
                builder.add_edge(v, w)
    return builder.build()


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """Path of length ``spine`` with ``legs_per_vertex`` pendant leaves each."""
    if spine < 1 or legs_per_vertex < 0:
        raise ParameterError(
            f"caterpillar needs spine >= 1, legs >= 0, got {spine}, {legs_per_vertex}"
        )
    n = spine * (1 + legs_per_vertex)
    builder = GraphBuilder(n)
    for i in range(spine - 1):
        builder.add_edge(i, i + 1)
    leaf = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            builder.add_edge(i, leaf)
            leaf += 1
    return builder.build()


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """Clique of ``clique_size`` with a path of ``path_length`` attached."""
    if clique_size < 1 or path_length < 0:
        raise ParameterError(
            f"lollipop needs clique >= 1, path >= 0, got {clique_size}, {path_length}"
        )
    n = clique_size + path_length
    builder = GraphBuilder(n)
    for u, v in itertools.combinations(range(clique_size), 2):
        builder.add_edge(u, v)
    prev = clique_size - 1
    for i in range(clique_size, n):
        builder.add_edge(prev, i)
        prev = i
    return builder.build()


def barbell_graph(clique_size: int, bridge_length: int) -> Graph:
    """Two cliques joined by a path with ``bridge_length`` interior vertices."""
    if clique_size < 1 or bridge_length < 0:
        raise ParameterError(
            f"barbell needs clique >= 1, bridge >= 0, got {clique_size}, {bridge_length}"
        )
    n = 2 * clique_size + bridge_length
    builder = GraphBuilder(n)
    for u, v in itertools.combinations(range(clique_size), 2):
        builder.add_edge(u, v)
    offset = clique_size + bridge_length
    for u, v in itertools.combinations(range(offset, offset + clique_size), 2):
        builder.add_edge(u, v)
    chain = [clique_size - 1, *range(clique_size, offset), offset]
    for a, b in zip(chain, chain[1:]):
        builder.add_edge(a, b)
    return builder.build()


# ----------------------------------------------------------------------
# Random families
# ----------------------------------------------------------------------
def erdos_renyi(n: int, p: float, seed: int = DEFAULT_SEED) -> Graph:
    """G(n, p): each of the ``n·(n-1)/2`` edges present independently w.p. ``p``.

    One RNG draw per vertex pair — ``O(n²)`` time by construction, which
    is deliberate: the per-pair stream is part of the library's seeded
    determinism contract (changing the sampling would change every seeded
    graph and the golden-decomposition fixtures).  For large sparse
    instances use :func:`gnp_fast`, a distinct family with the same
    marginal distribution and ``O(n + m)`` expected time.
    """
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    rng = stream(seed, "erdos_renyi", n, p)
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                builder.add_edge(u, v)
    return builder.build()


def gnp_fast(n: int, p: float, seed: int = DEFAULT_SEED) -> Graph:
    """G(n, p) by geometric skip-sampling in ``O(n + m)`` expected time.

    The Batagelj–Brandes algorithm: instead of flipping a coin per vertex
    pair, jump directly to the next present edge by drawing the skip
    length from the geometric distribution ``Geom(p)`` (via inversion,
    ``⌊log(1-U)/log(1-p)⌋``).  The resulting graph is distributed exactly
    as :func:`erdos_renyi`'s, but a *fixed seed draws a different
    instance* — this is deliberately a **new** spec family
    (``gnp_fast:n:p``), so every existing seeded ``er:`` graph and the
    golden-decomposition fixtures are untouched.
    """
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    if n < 0:
        raise ParameterError(f"gnp_fast needs n >= 0, got {n}")
    if p == 0.0 or n < 2:
        return Graph(n)
    if p == 1.0:
        return complete_graph(n)
    rng = stream(seed, "gnp_fast", n, p)
    log_q = math.log(1.0 - p)
    edges: list[tuple[int, int]] = []
    # Walk the lower-triangular pairs (w, u) with w < u, jumping `skip`
    # pairs ahead per present edge.
    u, w = 1, -1
    while u < n:
        skip = int(math.log(1.0 - rng.random()) / log_q)
        w += 1 + skip
        while w >= u and u < n:
            w -= u
            u += 1
        if u < n:
            edges.append((w, u))
    return Graph(n, edges)


def random_tree(n: int, seed: int = DEFAULT_SEED) -> Graph:
    """Uniform random recursive tree: vertex ``i`` attaches to a uniform ``j < i``."""
    if n < 1:
        raise ParameterError(f"random_tree needs n >= 1, got {n}")
    rng = stream(seed, "random_tree", n)
    builder = GraphBuilder(n)
    for i in range(1, n):
        builder.add_edge(rng.randrange(i), i)
    return builder.build()


def barabasi_albert(n: int, attach: int, seed: int = DEFAULT_SEED) -> Graph:
    """Preferential-attachment graph: each new vertex links to ``attach`` old ones.

    Starts from a star on ``attach + 1`` vertices; targets are sampled
    proportionally to degree using the repeated-endpoints urn trick.
    """
    if attach < 1:
        raise ParameterError(f"attach must be >= 1, got {attach}")
    if n < attach + 1:
        raise ParameterError(f"need n >= attach + 1, got n={n}, attach={attach}")
    rng = stream(seed, "barabasi_albert", n, attach)
    builder = GraphBuilder(n)
    urn: list[int] = []
    for v in range(1, attach + 1):
        builder.add_edge(0, v)
        urn.extend((0, v))
    for v in range(attach + 1, n):
        targets: set[int] = set()
        while len(targets) < attach:
            targets.add(rng.choice(urn))
        for t in sorted(targets):
            builder.add_edge(v, t)
            urn.extend((v, t))
    return builder.build()


def watts_strogatz(n: int, k: int, p: float, seed: int = DEFAULT_SEED) -> Graph:
    """Watts–Strogatz small world: ring lattice with rewiring probability ``p``.

    Each vertex starts connected to its ``k`` nearest neighbours (``k``
    even); each clockwise edge is rewired to a uniform non-duplicate target
    with probability ``p``.
    """
    if k < 2 or k % 2 != 0:
        raise ParameterError(f"k must be even and >= 2, got {k}")
    if n <= k:
        raise ParameterError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    rng = stream(seed, "watts_strogatz", n, k, p)
    builder = GraphBuilder(n)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            w = (v + j) % n
            if rng.random() < p:
                choices = [
                    u for u in range(n) if u != v and not builder.has_edge(v, u)
                ]
                if choices:
                    w = rng.choice(choices)
            if not builder.has_edge(v, w):
                builder.add_edge(v, w)
    return builder.build()


def random_regular(n: int, degree: int, seed: int = DEFAULT_SEED) -> Graph:
    """Random ``degree``-regular graph via pairing with edge-swap repair.

    The configuration model pairs stubs uniformly; pairs that would create
    a self loop or a multi-edge are repaired by swapping against random
    existing edges (the standard practical fix — plain rejection has
    acceptance probability ``~e^{-(d²-1)/4}`` and stalls already at
    ``degree`` 6).  Requires ``n·degree`` even and ``degree < n``.
    """
    if degree < 0 or degree >= n:
        raise ParameterError(f"need 0 <= degree < n, got degree={degree}, n={n}")
    if (n * degree) % 2 != 0:
        raise ParameterError(f"n * degree must be even, got {n} * {degree}")
    rng = stream(seed, "random_regular", n, degree)
    if degree == 0:
        return Graph(n)

    for _ in range(100):  # full restarts; virtually never needed
        edge_set: set[Edge] = set()
        edge_list: list[Edge] = []

        def legal(a: int, b: int) -> bool:
            return a != b and ((a, b) if a < b else (b, a)) not in edge_set

        def add(a: int, b: int) -> None:
            key = (a, b) if a < b else (b, a)
            edge_set.add(key)
            edge_list.append(key)

        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        leftover: list[int] = []
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if legal(u, v):
                add(u, v)
            else:
                leftover.extend((u, v))
        guard = 100 * n * degree + 1000
        while leftover and guard > 0:
            guard -= 1
            v = leftover.pop()
            u = leftover.pop()
            if legal(u, v):
                add(u, v)
                continue
            # Swap against a random existing edge (x, y): replace it with
            # (u, x) and (v, y) — degrees are preserved.
            x, y = edge_list[rng.randrange(len(edge_list))]
            if legal(u, x) and legal(v, y):
                pass  # orientation as drawn
            elif legal(u, y) and legal(v, x):
                x, y = y, x
            else:
                leftover.extend((u, v))  # retry with another random edge
                continue
            edge_set.remove((x, y) if x < y else (y, x))
            edge_list.remove((x, y) if x < y else (y, x))
            add(u, x)
            add(v, y)
        if not leftover:
            return Graph(n, sorted(edge_set))
    raise GraphError(
        f"failed to sample a simple {degree}-regular graph on {n} vertices"
    )


def cluster_graph(
    num_clusters: int,
    cluster_size: int,
    p_in: float,
    p_out: float,
    seed: int = DEFAULT_SEED,
) -> Graph:
    """Planted-partition graph: dense blocks, sparse cross edges.

    A natural workload for decomposition algorithms — the planted blocks
    are what a good low-diameter clustering should roughly recover.
    """
    if num_clusters < 1 or cluster_size < 1:
        raise ParameterError("num_clusters and cluster_size must be >= 1")
    if not (0.0 <= p_in <= 1.0 and 0.0 <= p_out <= 1.0):
        raise ParameterError("p_in and p_out must be in [0, 1]")
    n = num_clusters * cluster_size
    rng = stream(seed, "cluster_graph", num_clusters, cluster_size, p_in, p_out)
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(u + 1, n):
            same = u // cluster_size == v // cluster_size
            if rng.random() < (p_in if same else p_out):
                builder.add_edge(u, v)
    return builder.build()


def random_connected(n: int, extra_edge_prob: float, seed: int = DEFAULT_SEED) -> Graph:
    """Connected random graph: a random recursive tree plus G(n, p) edges.

    Guaranteed connected for every seed, which keeps diameter-based
    assertions meaningful in tests and benchmarks.
    """
    if n < 1:
        raise ParameterError(f"random_connected needs n >= 1, got {n}")
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise ParameterError(f"extra_edge_prob must be in [0, 1], got {extra_edge_prob}")
    rng = stream(seed, "random_connected", n, extra_edge_prob)
    builder = GraphBuilder(n)
    for i in range(1, n):
        builder.add_edge(rng.randrange(i), i)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < extra_edge_prob and not builder.has_edge(u, v):
                builder.add_edge(u, v)
    return builder.build()
