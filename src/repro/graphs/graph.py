"""Flat CSR (compressed sparse row) graph kernel.

Paper context: §1.1 — the decomposed graph ``G`` is simple, undirected and
unweighted; everything the algorithms do to it is breadth-first expansion
over a shrinking vertex subset.  :class:`Graph` is the single graph type
used throughout the library, designed for exactly that access pattern:

* adjacency is stored as two flat ``array('l')`` buffers built once at
  construction — ``indptr`` (n+1 row offsets) and ``indices`` (the 2m
  neighbour entries, each row sorted ascending).  The traversal kernel in
  :mod:`repro.graphs._kernel` iterates these buffers directly (and, when
  numpy is present, maps them zero-copy into vectorised gathers);
* the structure is immutable after construction, so simulated nodes can
  share it safely and algorithm results can hold references to it;
* vertex subsets ("the current graph :math:`G_t`") are represented as
  *active sets* (:mod:`repro.graphs.activeset`) passed to the traversal
  routines in :mod:`repro.graphs.traversal` instead of materialised
  subgraphs, which is how the paper's phase structure (carve a block,
  continue on the rest) is implemented without copying the graph once per
  phase.

``neighbors(v)`` still returns a sorted tuple for API compatibility, but
it now materialises a slice of the CSR buffer per call — hot loops should
use :meth:`Graph.csr` (or the traversal primitives, which already do).

Use :class:`GraphBuilder` (or the helpers in :mod:`repro.graphs.builders`)
to construct instances.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Iterator

from ..errors import GraphError

__all__ = ["Graph", "GraphBuilder", "Edge"]

Edge = tuple[int, int]
"""An undirected edge, always normalised so that ``u < v``."""


class Graph:
    """Immutable simple undirected graph on vertices ``0..n-1``, stored CSR.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are ``range(n)``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates (in either orientation)
        are rejected, as are self loops and out-of-range endpoints.

    Notes
    -----
    Construction sorts each CSR row, so iteration order over neighbours
    is deterministic — a requirement for reproducible simulations.
    """

    __slots__ = ("_n", "_indptr", "_indices", "_num_edges", "_np_csr", "_hash")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        seen: set[Edge] = set()
        directed: list[Edge] = []
        for u, v in edges:
            self._check_vertex(u)
            self._check_vertex(v)
            if u == v:
                raise GraphError(f"self loop at vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise GraphError(f"duplicate edge {key}")
            seen.add(key)
            directed.append((u, v))
            directed.append((v, u))
        # One global sort yields every CSR row contiguous and pre-sorted.
        directed.sort()
        indptr = array("l", bytes(array("l").itemsize * (num_vertices + 1)))
        indices = array("l", bytes(array("l").itemsize * len(directed)))
        for position, (u, v) in enumerate(directed):
            indptr[u + 1] += 1
            indices[position] = v
        for u in range(num_vertices):
            indptr[u + 1] += indptr[u]
        self._indptr = indptr
        self._indices = indices
        self._num_edges = len(directed) // 2
        self._np_csr: tuple | None = None
        self._hash: int | None = None

    @classmethod
    def _from_csr(cls, num_vertices: int, indptr, indices, num_edges: int) -> "Graph":
        """Wrap pre-built CSR buffers without copying or validating.

        Internal constructor for :mod:`repro.serving.shm`, which maps the
        buffers out of a shared-memory segment as read-only memoryviews.
        The buffers must satisfy the construction invariants (sorted rows,
        ``len(indptr) == n + 1``, ``len(indices) == 2m``) — the caller
        vouches for that, typically because they were packed from an
        already-constructed :class:`Graph`.
        """
        graph = cls.__new__(cls)
        graph._n = num_vertices
        graph._indptr = indptr
        graph._indices = indices
        graph._num_edges = num_edges
        graph._np_csr = None
        graph._hash = None
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> range:
        """The vertex set as ``range(n)``."""
        return range(self._n)

    def csr(self) -> tuple[array, array]:
        """The raw CSR buffers ``(indptr, indices)``.

        ``indices[indptr[v]:indptr[v+1]]`` is the sorted neighbour row of
        ``v``.  The buffers are the graph's actual storage — callers must
        treat them as read-only.
        """
        return self._indptr, self._indices

    def _numpy_csr(self):
        """Zero-copy numpy views of the CSR buffers (kernel internal).

        Lazily built on first use; returns ``None`` when numpy is
        unavailable so the caller can fall back to the Python path.
        """
        if self._np_csr is None:
            try:
                import numpy as np
            except ImportError:  # pragma: no cover - stdlib-only installs
                return None
            self._np_csr = (
                np.frombuffer(self._indptr, dtype=np.dtype("l")),
                np.frombuffer(self._indices, dtype=np.dtype("l")),
            )
        return self._np_csr

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of neighbours of ``v`` (materialised per call)."""
        self._check_vertex(v)
        return tuple(self._indices[self._indptr[v] : self._indptr[v + 1]])

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return self._indptr[v + 1] - self._indptr[v]

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        indptr = self._indptr
        return max(
            (indptr[v + 1] - indptr[v] for v in range(self._n)),
            default=0,
        )

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as normalised ``(u, v)`` pairs with ``u < v``."""
        indptr, indices = self._indptr, self._indices
        for u in range(self._n):
            for position in range(indptr[u], indptr[u + 1]):
                v = indices[position]
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` iff ``{u, v}`` is an edge.

        Binary search over the sorted CSR row of the lower-degree
        endpoint: O(log deg).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        indptr, indices = self._indptr, self._indices
        if indptr[u + 1] - indptr[u] > indptr[v + 1] - indptr[v]:
            u, v = v, u
        position = bisect_left(indices, v, indptr[u], indptr[u + 1])
        return position < indptr[u + 1] and indices[position] == v

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._indptr == other._indptr
            and self._indices == other._indices
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._n, self._indptr.tobytes(), self._indices.tobytes())
            )
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._num_edges})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not isinstance(v, int) or isinstance(v, bool):
            raise GraphError(f"vertex must be an int, got {v!r}")
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range [0, {self._n})")


class GraphBuilder:
    """Mutable accumulator used to assemble a :class:`Graph`.

    Unlike the :class:`Graph` constructor, the builder silently ignores
    duplicate edges and rejects self loops with an error, making it
    convenient for random generators that may propose the same edge twice.

    Examples
    --------
    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2)
    >>> g = b.build()
    >>> g.num_edges
    2
    """

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._edges: set[Edge] = set()

    @property
    def num_vertices(self) -> int:
        """Number of vertices the built graph will have."""
        return self._n

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``; duplicates are ignored."""
        if not 0 <= u < self._n or not 0 <= v < self._n:
            raise GraphError(f"edge ({u}, {v}) out of range [0, {self._n})")
        if u == v:
            raise GraphError(f"self loop at vertex {u} is not allowed")
        self._edges.add((u, v) if u < v else (v, u))

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` iff the edge has already been added."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    @property
    def num_edges(self) -> int:
        """Number of distinct edges added so far."""
        return len(self._edges)

    def build(self) -> Graph:
        """Freeze the accumulated edges into an immutable :class:`Graph`."""
        return Graph(self._n, sorted(self._edges))
