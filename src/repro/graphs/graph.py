"""Adjacency-list graph kernel.

:class:`Graph` is the single graph type used throughout the library: a
simple, undirected, unweighted graph whose vertices are the integers
``0..n-1``.  It is designed for the access patterns of distributed graph
algorithms:

* ``neighbors(v)`` is an O(1) tuple lookup (the hot path of every BFS),
* the structure is immutable after construction, so simulated nodes can
  share it safely and algorithm results can hold references to it,
* vertex subsets ("the current graph :math:`G_t`") are represented as
  *active sets* passed to the traversal routines in
  :mod:`repro.graphs.traversal` instead of materialised subgraphs, which is
  how the paper's phase structure (carve a block, continue on the rest)
  is implemented without copying the graph once per phase.

Use :class:`GraphBuilder` (or the helpers in :mod:`repro.graphs.builders`)
to construct instances.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import GraphError

__all__ = ["Graph", "GraphBuilder", "Edge"]

Edge = tuple[int, int]
"""An undirected edge, always normalised so that ``u < v``."""


class Graph:
    """Immutable simple undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are ``range(n)``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates (in either orientation)
        are rejected, as are self loops and out-of-range endpoints.

    Notes
    -----
    Construction sorts each adjacency list, so iteration order over
    neighbours is deterministic — a requirement for reproducible
    simulations.
    """

    __slots__ = ("_n", "_adjacency", "_num_edges")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
        seen: set[Edge] = set()
        count = 0
        for u, v in edges:
            self._check_vertex(u)
            self._check_vertex(v)
            if u == v:
                raise GraphError(f"self loop at vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise GraphError(f"duplicate edge {key}")
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
            count += 1
        self._adjacency: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(nbrs)) for nbrs in adjacency
        )
        self._num_edges = count

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> range:
        """The vertex set as ``range(n)``."""
        return range(self._n)

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of neighbours of ``v``."""
        self._check_vertex(v)
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return len(self._adjacency[v])

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as normalised ``(u, v)`` pairs with ``u < v``."""
        for u in range(self._n):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` iff ``{u, v}`` is an edge.

        Binary search over the sorted adjacency list of the lower-degree
        endpoint: O(log deg).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        if len(self._adjacency[u]) > len(self._adjacency[v]):
            u, v = v, u
        nbrs = self._adjacency[u]
        lo, hi = 0, len(nbrs)
        while lo < hi:
            mid = (lo + hi) // 2
            if nbrs[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(nbrs) and nbrs[lo] == v

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash((self._n, self._adjacency))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._num_edges})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not isinstance(v, int) or isinstance(v, bool):
            raise GraphError(f"vertex must be an int, got {v!r}")
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range [0, {self._n})")


class GraphBuilder:
    """Mutable accumulator used to assemble a :class:`Graph`.

    Unlike the :class:`Graph` constructor, the builder silently ignores
    duplicate edges and rejects self loops with an error, making it
    convenient for random generators that may propose the same edge twice.

    Examples
    --------
    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2)
    >>> g = b.build()
    >>> g.num_edges
    2
    """

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._edges: set[Edge] = set()

    @property
    def num_vertices(self) -> int:
        """Number of vertices the built graph will have."""
        return self._n

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``; duplicates are ignored."""
        if not 0 <= u < self._n or not 0 <= v < self._n:
            raise GraphError(f"edge ({u}, {v}) out of range [0, {self._n})")
        if u == v:
            raise GraphError(f"self loop at vertex {u} is not allowed")
        self._edges.add((u, v) if u < v else (v, u))

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` iff the edge has already been added."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    @property
    def num_edges(self) -> int:
        """Number of distinct edges added so far."""
        return len(self._edges)

    def build(self) -> Graph:
        """Freeze the accumulated edges into an immutable :class:`Graph`."""
        return Graph(self._n, sorted(self._edges))
