"""Worker-process side of the daemon: attach once, answer forever.

Each worker of the serving pool runs :func:`worker_init` exactly once
(as the :class:`~concurrent.futures.ProcessPoolExecutor` initializer),
attaching the daemon's shared-memory segment and rebuilding the
view-backed oracle into a module global.  After that, every
:func:`worker_answer` call is a plain batched query against memory the
parent already owns — no tables cross the process boundary, only the
pair lists and the answers.

Workers deliberately never ``close()`` their attachment: the mapping
lives exactly as long as the worker process, and the parent — the
segment's creator — is the one that unlinks it at shutdown.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ReproError
from .shm import ShmOracleTables

__all__ = ["worker_init", "worker_answer"]

#: The attached tables of this worker process (set by :func:`worker_init`).
_TABLES: ShmOracleTables | None = None


def worker_init(segment_name: str) -> None:
    """Attach the daemon's segment (runs once per worker process)."""
    global _TABLES
    _TABLES = ShmOracleTables.attach(segment_name)


def worker_answer(op: str, pairs: Sequence[Tuple[int, int]]) -> List:
    """Answer one micro-batch in this worker (``distance`` or ``route``)."""
    if _TABLES is None:
        raise ReproError("worker_init was never run in this process")
    oracle = _TABLES.oracle
    if op == "distance":
        return oracle.distances(pairs)
    if op == "route":
        return oracle.routes(pairs)
    raise ReproError(f"unknown worker op {op!r}")
