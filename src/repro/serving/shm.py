"""Shared-memory oracle tables: one segment, N zero-copy readers.

The daemon's worker processes all answer queries from the *same* built
oracle.  Pickling the tables to each worker would copy hundreds of
megabytes per process at the ``n ≈ 10⁵`` scale; instead the parent packs
every flat column — the graph's CSR buffers plus, per scale, the
``centers`` / ``ecc`` / ``indptr`` / ``member_cluster`` /
``member_dist`` / ``member_parent`` columns — back-to-back into one
:class:`multiprocessing.shared_memory.SharedMemory` segment, and each
worker re-materialises a :class:`~repro.oracle.tables.DistanceOracle`
whose columns are **read-only memoryviews into the segment** (cast to
the same ``'l'`` item type the :class:`array.array` originals use).
Both query backends work unchanged on the views: the pure-Python path
indexes them directly and the numpy path maps them with
``np.frombuffer`` — zero copies either way.

Segment layout (all offsets 8-aligned)::

    [0:8)    little-endian int64: header length H
    [8:8+H)  JSON header: schema tag, oracle parameters, per-scale
             metadata, and the (name, length) list of every column
    [...]    the columns, in header order, itemsize 8

Lifecycle contract (tested by the leak guard in ``tests/serving``):
the **creator** must ``close()`` *and* ``unlink()``; **attachers** must
``close()``.  Worker processes are the one sanctioned exception — their
mapping lives exactly as long as the process (see
:mod:`repro.serving.workers`).  If the creating process dies without
unlinking, the inherited stdlib ``resource_tracker`` unlinks the
segment at shutdown, so crashed daemons do not leak ``/dev/shm``.
"""

from __future__ import annotations

import gc
import json
import struct
import weakref
from array import array
from multiprocessing import shared_memory
from typing import List, Tuple

from ..errors import ParameterError, ReproError
from ..graphs.graph import Graph
from ..oracle.tables import DistanceOracle, ScaleTables

__all__ = ["ShmOracleTables", "SHM_SCHEMA", "live_tables"]

#: Schema tag stamped into (and checked against) every segment header.
SHM_SCHEMA = "en16.shm-tables.v1"

_ITEMSIZE = array("l").itemsize

#: Every live instance, for the tests' leak-guard fixture.
_REGISTRY: "weakref.WeakSet[ShmOracleTables]" = weakref.WeakSet()


def live_tables() -> List["ShmOracleTables"]:
    """Instances created in this process that still hold the segment."""
    return [tables for tables in _REGISTRY if not tables.closed]


def _align(offset: int) -> int:
    return (offset + 7) & ~7


def _oracle_columns(oracle: DistanceOracle) -> List[Tuple[str, array]]:
    """Every flat column of the oracle, in the canonical segment order."""
    indptr, indices = oracle.graph.csr()
    columns: List[Tuple[str, array]] = [
        ("graph.indptr", indptr),
        ("graph.indices", indices),
    ]
    for i, scale in enumerate(oracle.scales):
        for name in (
            "centers", "ecc", "indptr",
            "member_cluster", "member_dist", "member_parent",
        ):
            columns.append((f"scale{i}.{name}", getattr(scale, name)))
    return columns


class ShmOracleTables:
    """One shared-memory segment holding a packed oracle.

    Use :meth:`create` in the owning process and :meth:`attach` in each
    reader; both return an instance whose :attr:`oracle` serves queries.
    The creator keeps answering from the original (the packing is a
    write-through copy); attachers get the zero-copy view-backed oracle.
    """

    def __init__(self, shm, oracle: DistanceOracle, owner: bool, header: dict) -> None:
        self._shm = shm
        self._oracle: DistanceOracle | None = oracle
        self._owner = owner
        self._header = header
        self._closed = False
        self._unlinked = False
        _REGISTRY.add(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, oracle: DistanceOracle, name: str | None = None) -> "ShmOracleTables":
        """Pack ``oracle`` into a new segment (auto-named unless given)."""
        columns = _oracle_columns(oracle)
        for label, column in columns:
            if column.itemsize != _ITEMSIZE:  # pragma: no cover - platform guard
                raise ParameterError(
                    f"column {label} has itemsize {column.itemsize}, "
                    f"expected {_ITEMSIZE}"
                )
        header = {
            "schema": SHM_SCHEMA,
            "itemsize": _ITEMSIZE,
            "n": oracle.graph.num_vertices,
            "m": oracle.graph.num_edges,
            "k": oracle.k,
            "c": oracle.c,
            "seed": oracle.seed,
            "overlap_budget": oracle.overlap_budget,
            "skipped_radii": list(oracle.skipped_radii),
            "scales": [
                {
                    "radius": scale.radius,
                    "min_distance": scale.min_distance,
                    "is_components": scale.is_components,
                }
                for scale in oracle.scales
            ],
            "columns": [
                {"name": label, "length": len(column)} for label, column in columns
            ],
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf8")
        offset = _align(8 + len(header_bytes))
        total = offset + sum(len(column) * _ITEMSIZE for _, column in columns)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1), name=name)
        buf = shm.buf
        buf[0:8] = struct.pack("<q", len(header_bytes))
        buf[8 : 8 + len(header_bytes)] = header_bytes
        for _, column in columns:
            nbytes = len(column) * _ITEMSIZE
            buf[offset : offset + nbytes] = column.tobytes()
            offset += nbytes
        return cls(shm, oracle, owner=True, header=header)

    @classmethod
    def attach(cls, name: str, readonly: bool = True) -> "ShmOracleTables":
        """Map an existing segment and rebuild the view-backed oracle."""
        # Note on the stdlib resource tracker (Python < 3.13 registers
        # attachers too): the daemon's spawn-context workers inherit the
        # parent's tracker, whose name cache is a *set* — so attach-side
        # registration is a no-op while the creator's entry exists, and
        # the creator's unlink() balances the books exactly once.  Do
        # NOT unregister here; that would evict the creator's entry and
        # turn the eventual unlink into tracker KeyError noise.
        shm = shared_memory.SharedMemory(name=name)
        try:
            (header_len,) = struct.unpack("<q", bytes(shm.buf[0:8]))
            header = json.loads(bytes(shm.buf[8 : 8 + header_len]).decode("utf8"))
            if header.get("schema") != SHM_SCHEMA:
                raise ParameterError(
                    f"segment {name!r} carries schema "
                    f"{header.get('schema')!r}, expected {SHM_SCHEMA!r}"
                )
            if header.get("itemsize") != _ITEMSIZE:
                raise ParameterError(
                    f"segment {name!r} was packed with itemsize "
                    f"{header.get('itemsize')}, this platform uses {_ITEMSIZE}"
                )
            oracle = cls._rebuild(shm, header, readonly=readonly)
        except Exception:
            shm.close()
            raise
        return cls(shm, oracle, owner=False, header=header)

    @staticmethod
    def _rebuild(shm, header: dict, readonly: bool) -> DistanceOracle:
        offset = _align(8 + len(json.dumps(header, sort_keys=True).encode("utf8")))
        views: dict[str, memoryview] = {}
        for spec in header["columns"]:
            nbytes = spec["length"] * _ITEMSIZE
            view = shm.buf[offset : offset + nbytes]
            if readonly:
                view = view.toreadonly()
            views[spec["name"]] = view.cast("l")
            offset += nbytes
        graph = Graph._from_csr(
            header["n"],
            views["graph.indptr"],
            views["graph.indices"],
            header["m"],
        )
        scales = [
            ScaleTables(
                radius=meta["radius"],
                min_distance=meta["min_distance"],
                is_components=meta["is_components"],
                centers=views[f"scale{i}.centers"],
                ecc=views[f"scale{i}.ecc"],
                indptr=views[f"scale{i}.indptr"],
                member_cluster=views[f"scale{i}.member_cluster"],
                member_dist=views[f"scale{i}.member_dist"],
                member_parent=views[f"scale{i}.member_parent"],
            )
            for i, meta in enumerate(header["scales"])
        ]
        return DistanceOracle(
            graph=graph,
            scales=scales,
            k=header["k"],
            c=header["c"],
            seed=header["seed"],
            overlap_budget=header["overlap_budget"],
            skipped_radii=list(header["skipped_radii"]),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def oracle(self) -> DistanceOracle:
        """The servable oracle (views for attachers, original for the owner)."""
        if self._oracle is None:
            raise ReproError("shared-memory tables are closed")
        return self._oracle

    @property
    def name(self) -> str:
        """The segment name readers pass to :meth:`attach`."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Mapped segment size in bytes."""
        return self._shm.size

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def leaked(self) -> bool:
        """Still holding the mapping — or owning an un-unlinked segment."""
        return not self._closed or (self._owner and not self._unlinked)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (idempotent).

        The view-backed oracle dies with the mapping: callers must drop
        their references to :attr:`oracle` (and any numpy arrays derived
        from it) first, or this raises ``BufferError`` naming the leak.
        """
        if self._closed:
            return
        oracle = self._oracle
        self._oracle = None
        if oracle is not None and not self._owner:
            # Numpy views cached on the tables pin the buffers; drop them
            # so the only remaining holders are the caller's own refs.
            # (Indexed loop on purpose: a `for scale in ...` binding would
            # itself pin a view-holding ScaleTables past the close below.)
            oracle.graph._np_csr = None
            for index in range(len(oracle.scales)):
                oracle.scales[index]._np = None
        oracle = None
        gc.collect()
        try:
            self._shm.close()
        except BufferError as exc:
            raise BufferError(
                f"cannot close shared-memory tables {self.name!r}: a "
                "view-backed oracle (or a numpy array derived from it) is "
                "still alive — drop those references first"
            ) from exc
        self._closed = True

    def unlink(self) -> None:
        """Remove the segment from the system (owner only, idempotent)."""
        if self._unlinked:
            return
        if not self._owner:
            raise ReproError(
                f"only the creator may unlink segment {self.name!r}"
            )
        self._shm.unlink()
        self._unlinked = True

    def __enter__(self) -> "ShmOracleTables":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._owner:
            self.unlink()
