"""Oracle-as-a-service: the `repro serve` daemon and its load tooling.

The serving layer turns the batch-built distance/routing oracle
(:mod:`repro.oracle`) into a long-lived network service — the ROADMAP's
"heavy traffic from millions of users" shape — without leaving the
standard library:

* :mod:`~repro.serving.protocol` — newline-delimited JSON over TCP;
* :mod:`~repro.serving.batcher` — micro-batching (size/deadline flush)
  into the existing batched query engine;
* :mod:`~repro.serving.cache` — seeded, size-bounded LRU answer cache;
* :mod:`~repro.serving.shm` — one shared-memory segment exposing the
  CSR tables zero-copy to every worker process;
* :mod:`~repro.serving.daemon` — the asyncio server tying it together;
* :mod:`~repro.serving.client` / :mod:`~repro.serving.loadgen` — the
  blocking client and the open/closed-loop load generators.

``docs/serving.md`` is the subsystem handbook (wire protocol, flush
rules, shared-memory lifecycle, determinism caveats, worked example).
"""

from .batcher import MicroBatcher
from .cache import MISS, AnswerCache
from .client import ServeClient
from .daemon import (
    OracleServer,
    ServerConfig,
    ServerThread,
    default_workers,
    run_server,
)
from .loadgen import LoadReport, run_closed_loop, run_open_loop, sample_pairs
from .protocol import OPS, ProtocolError, decode_line, encode_message, parse_pairs
from .shm import SHM_SCHEMA, ShmOracleTables, live_tables

__all__ = [
    "AnswerCache",
    "LoadReport",
    "MISS",
    "MicroBatcher",
    "OPS",
    "OracleServer",
    "ProtocolError",
    "SHM_SCHEMA",
    "ServeClient",
    "ServerConfig",
    "ServerThread",
    "ShmOracleTables",
    "decode_line",
    "default_workers",
    "encode_message",
    "live_tables",
    "parse_pairs",
    "run_closed_loop",
    "run_open_loop",
    "run_server",
    "sample_pairs",
]
